"""Figure 8 — high failure rates (0..10%), m=10, p=5, n=10..100.

Paper's conclusion: periods increase dramatically with the number of
tasks, and H2 is the heuristic that copes best with heavy failure rates.
"""

from __future__ import annotations

import numpy as np

from .conftest import run_figure_benchmark


def test_fig08_high_failure_rates(benchmark, results_dir):
    result = run_figure_benchmark(benchmark, results_dir, "fig8", seed=8)
    means = {name: float(np.mean(series.means())) for name, series in result.series.items()}
    # The failure-blind heuristics H1/H4f suffer the most under 10% failures.
    informed_best = min(means["H2"], means["H3"], means["H4"], means["H4w"])
    assert means["H1"] > informed_best
    # H2 stays within a small factor of the best informed heuristic (the
    # paper reports it as the winner at the full 30-repetition scale).
    assert means["H2"] <= 1.35 * informed_best
    # Dramatic growth with n: the largest task count costs several times the
    # smallest one for every informed heuristic.
    for name in ("H2", "H4w"):
        series_means = result.series[name].means()
        assert series_means[-1] > 2.0 * series_means[0]
