"""Figure 6 — specialized mappings, m=10, p=2, n=10..100 (H2, H3, H4, H4w).

Paper's conclusion: on the small platform H4 sits slightly below the
others; all four informed heuristics remain close.
"""

from __future__ import annotations

import numpy as np

from .conftest import run_figure_benchmark


def test_fig06_specialized_m10_p2(benchmark, results_dir):
    result = run_figure_benchmark(benchmark, results_dir, "fig6", seed=6)
    assert set(result.series) == {"H2", "H3", "H4", "H4w"}
    means = {name: float(np.mean(series.means())) for name, series in result.series.items()}
    best, worst = min(means.values()), max(means.values())
    # The informed heuristics stay within a factor ~2 of each other.
    assert worst <= 2.0 * best
    # Period grows with the number of tasks for every curve.
    for series in result.series.values():
        assert series.means()[-1] > series.means()[0]
