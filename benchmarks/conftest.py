"""Shared helpers for the benchmark harness.

Every figure of the paper's evaluation has one benchmark module.  Each
benchmark:

* runs a scaled-down version of the figure's scenario (the paper's 30
  repetitions per point would take far too long under pytest-benchmark),
* records the wall-clock time of the whole sweep as the benchmark value,
* prints the regenerated series (the same rows the paper plots) so that
  ``pytest benchmarks/ --benchmark-only -s`` doubles as the figure
  generator, and
* writes the CSV into ``benchmarks/results/`` for EXPERIMENTS.md.

Scaling can be tuned with environment variables without editing code:

``REPRO_BENCH_REPETITIONS``
    Repetitions per sweep point (default 2).
``REPRO_BENCH_MAX_POINTS``
    Number of sweep points kept from the paper's x axis (default 3).
``REPRO_BENCH_FULL``
    Set to ``1`` to run every figure at the paper's full scale (slow).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import figure_report, run_figure
from repro.experiments.runner import ExperimentResult

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_collection_modifyitems(items):
    """Mark everything under benchmarks/ as ``bench``.

    The default addopts (``-m "not slow and not bench"``) then keep the
    tier-1 run free of benchmark workloads; run them explicitly with
    ``python -m pytest -m bench [--benchmark-only]``.
    """
    here = Path(__file__).parent
    for item in items:
        try:
            in_benchmarks = Path(str(item.fspath)).is_relative_to(here)
        except ValueError:  # pragma: no cover - non-path items
            in_benchmarks = False
        if in_benchmarks:
            item.add_marker(pytest.mark.bench)


def _scale() -> dict:
    if os.environ.get("REPRO_BENCH_FULL") == "1":
        return {"repetitions": None, "max_points": None}
    return {
        "repetitions": int(os.environ.get("REPRO_BENCH_REPETITIONS", "2")),
        "max_points": int(os.environ.get("REPRO_BENCH_MAX_POINTS", "3")),
    }


@pytest.fixture(scope="session")
def bench_scale() -> dict:
    """The (repetitions, max_points) scaling applied to every figure."""
    return _scale()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def run_figure_benchmark(
    benchmark,
    results_dir: Path,
    figure_id: str,
    *,
    seed: int = 0,
    milp_time_limit: float = 20.0,
    repetitions: int | None = None,
    max_points: int | None = None,
) -> ExperimentResult:
    """Run one figure under the benchmark timer and persist its series."""
    scale = _scale()
    if repetitions is None:
        repetitions = scale["repetitions"]
    if max_points is None:
        max_points = scale["max_points"]

    result = benchmark.pedantic(
        run_figure,
        kwargs=dict(
            figure_id=figure_id,
            seed=seed,
            repetitions=repetitions,
            max_points=max_points,
            milp_time_limit=milp_time_limit,
        ),
        rounds=1,
        iterations=1,
    )
    report = figure_report(result)
    print()
    print(report)
    (results_dir / f"{figure_id}.csv").write_text(result.to_csv())
    (results_dir / f"{figure_id}.txt").write_text(report)
    return result
