"""Benchmark harness package.

Making ``benchmarks`` a real package lets its modules use relative
imports (``from .conftest import ...``) under pytest's rootdir
collection, which otherwise fails with "attempted relative import with
no known parent package".
"""
