"""Figure 11 — Figure 10's data normalised by the MIP optimum.

Paper's conclusion: aggregate factors of roughly H4w = 1.33, H3 = 1.58,
H2 = 1.73 over the MIP (H1 and H4f much higher).
"""

from __future__ import annotations

from repro.experiments.runner import MIP_LABEL

from .conftest import run_figure_benchmark


def test_fig11_normalised_factors(benchmark, results_dir):
    result = run_figure_benchmark(benchmark, results_dir, "fig11", seed=11)
    # The reported series are the normalised ones (the MIP curve is the unit).
    normalized = result.reported_series()
    assert MIP_LABEL not in normalized
    for series in normalized.values():
        for x in series.x_values:
            point = series.point(x)
            if point.count:
                assert point.mean >= 1.0 - 1e-9

    report = result.normalization_report(MIP_LABEL)
    # Coarse band check for the informed heuristics (paper: 1.33–1.73 at full
    # scale) and ordering against the uninformed ones.
    for name in ("H2", "H3", "H4", "H4w"):
        assert 1.0 <= report.factor(name) < 2.2
    assert report.factor("H1") > report.factor("H4w")
    assert report.factor("H4f") > report.factor("H4")
