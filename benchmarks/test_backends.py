"""Benchmarks of the pluggable kernel backends (PR 7).

The numba backend replaces the numpy kernels' ``np.add.at`` scatters and
the ``(R, m, m)`` probe tensor with fused JIT loops; on the refinement
workload (the hottest loop of the reproduction) it must be at least
**1.5x** faster than the numpy backend at the hard m=50, R=50 shape.
Both backends are bit-for-bit identical, so the gate is purely about
speed.

Everything here skips cleanly when numba is not installed — the default
environment stays numpy-only (``pip install -e .[numba]`` opts in), and
``compare_to_baseline.py`` treats the numba bench as optional.

Run with ``python -m pytest -m bench benchmarks/test_backends.py -s``.
"""

from __future__ import annotations

import time

import pytest

from repro.backend import numba_status, use_backend
from repro.experiments import CellBlock, HeuristicProvider
from repro.generators import ScenarioConfig
from repro.heuristics.local_search import refine_specialized_batch
from repro.simulation.rng import RandomStreamFactory

R = 50

requires_numba = pytest.mark.skipif(
    not numba_status()[0], reason="numba backend not installed (.[numba] extra)"
)


@pytest.fixture(scope="module")
def block() -> CellBlock:
    """The fig5-shaped m=50, R=50 sweep point the refine gate runs on."""
    scenario = ScenarioConfig(
        name="bench-backends",
        num_machines=50,
        num_types=5,
        sweep="tasks",
        sweep_values=(100,),
        repetitions=R,
        heuristics=("H4w",),
    )
    return CellBlock.sample(scenario, 100, RandomStreamFactory(17))


def _time(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@requires_numba
def test_numba_refine_speedup(block):
    """Acceptance: numba >= 1.5x numpy on the batched H4ls descent."""
    with use_backend("numpy"):
        seeds = HeuristicProvider("H4w", batch=True).solve_block(block)

        def numpy_refine():
            return refine_specialized_batch(block.instances, seeds)

        numpy_refined, numpy_moves = numpy_refine()
        numpy_time = _time(numpy_refine)
    with use_backend("numba"):
        def numba_refine():
            return refine_specialized_batch(block.instances, seeds)

        numba_refine()  # JIT warm-up outside the timed region
        numba_refined, numba_moves = numba_refine()
        numba_time = _time(numba_refine)
    assert (numba_refined == numpy_refined).all()  # bit-for-bit
    assert (numba_moves == numpy_moves).all()
    speedup = numpy_time / numba_time
    print(
        f"\nH4ls refine at R={R}, m=50: numpy {numpy_time * 1e3:.0f} ms, "
        f"numba {numba_time * 1e3:.0f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= 1.5


@requires_numba
def test_bench_batch_refine_numba(benchmark, block):
    """The refine gate benchmark on the numba backend (baseline-optional)."""
    with use_backend("numba"):
        seeds = HeuristicProvider("H4w", batch=True).solve_block(block)
        refine_specialized_batch(block.instances, seeds)  # JIT warm-up
        refined, moves = benchmark(
            refine_specialized_batch, block.instances, seeds
        )
    assert refined.shape == (R, block.stack.num_tasks)
    assert int(moves.sum()) > 0
