"""Micro-benchmarks of the individual solvers and of the evaluation kernel.

These benchmarks time the building blocks (rather than whole figures) so
that performance regressions in the hot paths — period evaluation, the
greedy heuristics, the bisection heuristics, the Hungarian solver and the
MIP — show up individually in ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import evaluate
from repro.exact.hungarian import min_cost_assignment
from repro.exact.milp import solve_specialized_milp
from repro.heuristics import get_heuristic
from tests.helpers import make_random_instance


@pytest.fixture(scope="module")
def medium_instance():
    """Paper-scale instance for heuristic timing: n=100, p=5, m=50."""
    return make_random_instance(100, 5, 50, seed=7)


def test_bench_evaluate_mapping(benchmark, medium_instance):
    mapping = get_heuristic("H4w").solve(medium_instance).mapping
    result = benchmark(evaluate, medium_instance, mapping)
    assert result.period > 0


def test_bench_heuristic_h4w(benchmark, medium_instance):
    heuristic = get_heuristic("H4w")
    result = benchmark(heuristic.solve, medium_instance)
    assert result.period > 0


def test_bench_heuristic_h4(benchmark, medium_instance):
    heuristic = get_heuristic("H4")
    result = benchmark(heuristic.solve, medium_instance)
    assert result.period > 0


def test_bench_heuristic_h2_binary_search(benchmark, medium_instance):
    heuristic = get_heuristic("H2")
    result = benchmark(heuristic.solve, medium_instance)
    assert result.period > 0


def test_bench_heuristic_h3_binary_search(benchmark, medium_instance):
    heuristic = get_heuristic("H3")
    result = benchmark(heuristic.solve, medium_instance)
    assert result.period > 0


def test_bench_heuristic_h1_random(benchmark, medium_instance):
    heuristic = get_heuristic("H1")
    rng = np.random.default_rng(0)
    result = benchmark(heuristic.solve, medium_instance, rng)
    assert result.period > 0


def test_bench_hungarian_100x100(benchmark):
    rng = np.random.default_rng(3)
    cost = rng.uniform(0.0, 1.0, size=(100, 100))
    columns = benchmark(min_cost_assignment, cost)
    assert len(set(columns.tolist())) == 100


def test_bench_milp_small_instance(benchmark):
    instance = make_random_instance(8, 2, 4, seed=9)
    result = benchmark.pedantic(
        solve_specialized_milp, args=(instance,), kwargs={"time_limit": 30.0}, rounds=1, iterations=1
    )
    assert result.is_optimal
