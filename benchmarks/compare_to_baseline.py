#!/usr/bin/env python
"""Benchmark regression gate: compare a run against the committed baseline.

``benchmarks/baseline.json`` records, for a handful of *key* benchmarks,
the median wall-clock **normalized by a calibration benchmark** measured
in the same run.  Raw medians are useless across machines (a laptop and
a CI runner differ by integer factors), but the ratio of two benchmarks
of the same run cancels machine speed — so the gate compares normalized
medians and fails when any key benchmark regresses by more than the
baseline's tolerance (30%).

Usage
-----
Gate a run (exit 1 on regression)::

    python -m pytest -m bench --benchmark-json=bench-results.json
    python benchmarks/compare_to_baseline.py bench-results.json

Refresh the baseline after an intentional performance change::

    python benchmarks/compare_to_baseline.py bench-results.json --update

The module is also importable (``benchmarks.compare_to_baseline``) so the
comparison logic itself is unit-tested in tier 1.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Benchmark whose median defines "how fast is this machine" for a run.
#: A scalar Python-loop benchmark tracks interpreter + numpy dispatch
#: speed, the resource every key benchmark below also spends.
CALIBRATION = "benchmarks/test_batch_evaluation.py::test_bench_scalar_evaluation_loop"

#: The benchmarks the gate protects (the PR 1-5 speedup claims).
KEY_BENCHMARKS = (
    "benchmarks/test_batch_evaluation.py::test_bench_evaluate_batch",
    "benchmarks/test_batch_evaluation.py::test_bench_incremental_moves",
    "benchmarks/test_engine_block_scheduler.py::test_bench_block_scoring",
    "benchmarks/test_engine_block_scheduler.py::test_bench_block_pipeline",
    "benchmarks/test_engine_block_scheduler.py::test_bench_batch_solve_greedy",
    "benchmarks/test_engine_block_scheduler.py::test_bench_batch_solve_binary_search",
    "benchmarks/test_engine_block_scheduler.py::test_bench_batch_refine",
    "benchmarks/test_service_batching.py::test_bench_service_microbatch",
    "benchmarks/test_service_batching.py::test_bench_service_sustained_mixed",
)

#: Default failure threshold: a key benchmark may be at most this much
#: slower (relative) than its baseline before the gate trips.
DEFAULT_MAX_REGRESSION = 0.30

DEFAULT_BASELINE_PATH = Path(__file__).resolve().parent / "baseline.json"


def load_medians(results: dict) -> dict[str, float]:
    """``{fullname: median seconds}`` from a pytest-benchmark JSON dump."""
    return {
        bench["fullname"]: float(bench["stats"]["median"])
        for bench in results.get("benchmarks", [])
    }


def normalize(medians: dict[str, float], calibration: str) -> dict[str, float]:
    """Divide every median by the calibration benchmark's median."""
    reference = medians[calibration]
    return {name: median / reference for name, median in medians.items()}


def compare(results: dict, baseline: dict) -> list[str]:
    """Failure messages for every key benchmark outside tolerance (empty = pass)."""
    medians = load_medians(results)
    calibration = baseline["calibration"]
    tolerance = float(baseline.get("max_regression", DEFAULT_MAX_REGRESSION))
    if calibration not in medians:
        return [f"calibration benchmark missing from results: {calibration}"]
    current = normalize(medians, calibration)
    failures = []
    for name, entry in baseline["benchmarks"].items():
        if name not in current:
            failures.append(f"key benchmark missing from results: {name}")
            continue
        reference = float(entry["normalized"])
        limit = reference * (1.0 + tolerance)
        if current[name] > limit:
            failures.append(
                f"{name}: normalized median {current[name]:.4f} is "
                f"{current[name] / reference - 1.0:+.0%} vs baseline "
                f"{reference:.4f} (allowed {tolerance:+.0%})"
            )
    return failures


def make_baseline(
    results: dict,
    *,
    calibration: str = CALIBRATION,
    keys: tuple[str, ...] = KEY_BENCHMARKS,
    max_regression: float = DEFAULT_MAX_REGRESSION,
) -> dict:
    """Build a baseline document from one benchmark run."""
    medians = load_medians(results)
    missing = [name for name in (calibration, *keys) if name not in medians]
    if missing:
        raise KeyError(f"benchmarks missing from results: {missing}")
    normalized = normalize(medians, calibration)
    return {
        "calibration": calibration,
        "max_regression": max_regression,
        "benchmarks": {
            name: {
                "median_seconds": medians[name],
                "normalized": normalized[name],
            }
            for name in keys
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", type=Path, help="pytest-benchmark JSON output")
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE_PATH,
        help="baseline document (default: benchmarks/baseline.json)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline from this run instead of gating",
    )
    args = parser.parse_args(argv)

    results = json.loads(args.results.read_text())
    if args.update:
        baseline = make_baseline(results)
        args.baseline.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    baseline = json.loads(args.baseline.read_text())
    failures = compare(results, baseline)
    if failures:
        print("benchmark regression gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        f"benchmark regression gate passed "
        f"({len(baseline['benchmarks'])} key benchmarks within "
        f"{baseline.get('max_regression', DEFAULT_MAX_REGRESSION):.0%})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
