#!/usr/bin/env python
"""Benchmark regression gate: compare a run against the committed baseline.

``benchmarks/baseline.json`` records, for a handful of *key* benchmarks,
the median wall-clock **normalized by a calibration benchmark** measured
in the same run.  Raw medians are useless across machines (a laptop and
a CI runner differ by integer factors), but the ratio of two benchmarks
of the same run cancels machine speed — so the gate compares normalized
medians and fails when any key benchmark regresses by more than the
baseline's tolerance (30%).

Usage
-----
Gate a run (exit 1 on regression)::

    python -m pytest -m bench --benchmark-json=bench-results.json
    python benchmarks/compare_to_baseline.py bench-results.json

Refresh the baseline after an intentional performance change::

    python benchmarks/compare_to_baseline.py bench-results.json --update

A per-benchmark delta table is printed on every gate run (pass or fail);
``--json`` emits the same comparison as a machine-readable document for
dashboards/CI annotations.  Benchmarks listed in ``OPTIONAL_BENCHMARKS``
(the numba-backend bench) gate only when present in both the baseline
and the run, so numpy-only environments are never failed for lacking
the optional JIT dependency.

The module is also importable (``benchmarks.compare_to_baseline``) so the
comparison logic itself is unit-tested in tier 1.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Benchmark whose median defines "how fast is this machine" for a run.
#: A scalar Python-loop benchmark tracks interpreter + numpy dispatch
#: speed, the resource every key benchmark below also spends.
CALIBRATION = "benchmarks/test_batch_evaluation.py::test_bench_scalar_evaluation_loop"

#: The benchmarks the gate protects (the PR 1-5 speedup claims).
KEY_BENCHMARKS = (
    "benchmarks/test_batch_evaluation.py::test_bench_evaluate_batch",
    "benchmarks/test_batch_evaluation.py::test_bench_incremental_moves",
    "benchmarks/test_engine_block_scheduler.py::test_bench_block_scoring",
    "benchmarks/test_engine_block_scheduler.py::test_bench_block_pipeline",
    "benchmarks/test_engine_block_scheduler.py::test_bench_batch_solve_greedy",
    "benchmarks/test_engine_block_scheduler.py::test_bench_batch_solve_binary_search",
    "benchmarks/test_engine_block_scheduler.py::test_bench_batch_refine",
    "benchmarks/test_service_batching.py::test_bench_service_microbatch",
    "benchmarks/test_service_batching.py::test_bench_service_sustained_mixed",
    "benchmarks/test_engine_block_scheduler.py::test_bench_block_pipeline_cross_point",
    "benchmarks/test_live_replan.py::test_bench_live_replan",
    "benchmarks/test_dag_scheduler.py::test_bench_dag_pipeline",
)

#: Benchmarks gated only when their dependency is installed: missing from
#: a run (or from the baseline) is "skipped", never a failure.
OPTIONAL_BENCHMARKS = (
    "benchmarks/test_backends.py::test_bench_batch_refine_numba",
)

#: Default failure threshold: a key benchmark may be at most this much
#: slower (relative) than its baseline before the gate trips.
DEFAULT_MAX_REGRESSION = 0.30

DEFAULT_BASELINE_PATH = Path(__file__).resolve().parent / "baseline.json"


def load_medians(results: dict) -> dict[str, float]:
    """``{fullname: median seconds}`` from a pytest-benchmark JSON dump."""
    return {
        bench["fullname"]: float(bench["stats"]["median"])
        for bench in results.get("benchmarks", [])
    }


def normalize(medians: dict[str, float], calibration: str) -> dict[str, float]:
    """Divide every median by the calibration benchmark's median."""
    reference = medians[calibration]
    return {name: median / reference for name, median in medians.items()}


def evaluate(results: dict, baseline: dict) -> tuple[list[dict], list[str]]:
    """Per-benchmark delta rows plus the gate's failure messages.

    Each row: ``{name, baseline, current, delta, status}`` with status
    one of ``ok`` / ``regression`` / ``missing`` / ``skipped``
    (optional benchmark absent from this run).  ``failures`` is empty
    exactly when the gate passes.
    """
    medians = load_medians(results)
    calibration = baseline["calibration"]
    tolerance = float(baseline.get("max_regression", DEFAULT_MAX_REGRESSION))
    if calibration not in medians:
        return [], [f"calibration benchmark missing from results: {calibration}"]
    current = normalize(medians, calibration)
    rows: list[dict] = []
    failures: list[str] = []
    for name, entry in baseline["benchmarks"].items():
        reference = float(entry["normalized"])
        optional = bool(entry.get("optional")) or name in OPTIONAL_BENCHMARKS
        if name not in current:
            if optional:
                rows.append(
                    {"name": name, "baseline": reference, "current": None,
                     "delta": None, "status": "skipped"}
                )
            else:
                rows.append(
                    {"name": name, "baseline": reference, "current": None,
                     "delta": None, "status": "missing"}
                )
                failures.append(f"key benchmark missing from results: {name}")
            continue
        value = current[name]
        delta = value / reference - 1.0
        status = "ok"
        if value > reference * (1.0 + tolerance):
            status = "regression"
            failures.append(
                f"{name}: normalized median {value:.4f} is "
                f"{delta:+.0%} vs baseline "
                f"{reference:.4f} (allowed {tolerance:+.0%})"
            )
        rows.append(
            {"name": name, "baseline": reference, "current": value,
             "delta": delta, "status": status}
        )
    return rows, failures


def compare(results: dict, baseline: dict) -> list[str]:
    """Failure messages for every key benchmark outside tolerance (empty = pass)."""
    return evaluate(results, baseline)[1]


def format_delta_table(rows: list[dict]) -> str:
    """Fixed-width rendition of :func:`evaluate`'s rows."""
    short = [row["name"].split("::")[-1] for row in rows]
    width = max((len(name) for name in short), default=4)
    lines = [
        f"{'benchmark'.ljust(width)}  {'baseline':>9}  {'current':>9}  "
        f"{'delta':>7}  status"
    ]
    for row, name in zip(rows, short):
        current = "-" if row["current"] is None else f"{row['current']:9.4f}"
        delta = "-" if row["delta"] is None else f"{row['delta']:+7.1%}"
        lines.append(
            f"{name.ljust(width)}  {row['baseline']:9.4f}  {current:>9}  "
            f"{delta:>7}  {row['status']}"
        )
    return "\n".join(lines)


def make_baseline(
    results: dict,
    *,
    calibration: str = CALIBRATION,
    keys: tuple[str, ...] = KEY_BENCHMARKS,
    optional: tuple[str, ...] = OPTIONAL_BENCHMARKS,
    max_regression: float = DEFAULT_MAX_REGRESSION,
) -> dict:
    """Build a baseline document from one benchmark run.

    Every ``keys`` benchmark must be in the run; ``optional`` ones are
    recorded (and tagged) only when present, so a numpy-only machine can
    refresh the baseline without dropping the numba gate from machines
    that do run it.
    """
    medians = load_medians(results)
    missing = [name for name in (calibration, *keys) if name not in medians]
    if missing:
        raise KeyError(f"benchmarks missing from results: {missing}")
    normalized = normalize(medians, calibration)
    benchmarks = {
        name: {
            "median_seconds": medians[name],
            "normalized": normalized[name],
        }
        for name in keys
    }
    for name in optional:
        if name in medians:
            benchmarks[name] = {
                "median_seconds": medians[name],
                "normalized": normalized[name],
                "optional": True,
            }
    return {
        "calibration": calibration,
        "max_regression": max_regression,
        "benchmarks": benchmarks,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", type=Path, help="pytest-benchmark JSON output")
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE_PATH,
        help="baseline document (default: benchmarks/baseline.json)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline from this run instead of gating",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the comparison as JSON (exit code still signals the gate)",
    )
    args = parser.parse_args(argv)

    results = json.loads(args.results.read_text())
    if args.update:
        baseline = make_baseline(results)
        args.baseline.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    baseline = json.loads(args.baseline.read_text())
    rows, failures = evaluate(results, baseline)
    tolerance = float(baseline.get("max_regression", DEFAULT_MAX_REGRESSION))
    if args.json:
        print(
            json.dumps(
                {
                    "status": "fail" if failures else "pass",
                    "calibration": baseline["calibration"],
                    "max_regression": tolerance,
                    "benchmarks": rows,
                    "failures": failures,
                },
                indent=2,
            )
        )
        return 1 if failures else 0
    if rows:
        print(format_delta_table(rows))
    if failures:
        print("benchmark regression gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        f"benchmark regression gate passed "
        f"({len(rows)} key benchmarks within {tolerance:.0%})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
