"""Figure 7 — large platform, m=100, p=5, n=100..200 (H2, H3, H4w).

Paper's conclusion: with a large platform the machine-speed criterion
dominates and H4w comes out best.
"""

from __future__ import annotations

import numpy as np

from .conftest import run_figure_benchmark


def test_fig07_specialized_m100_p5(benchmark, results_dir):
    result = run_figure_benchmark(benchmark, results_dir, "fig7", seed=7)
    assert set(result.series) == {"H2", "H3", "H4w"}
    means = {name: float(np.mean(series.means())) for name, series in result.series.items()}
    # The paper reports H4w as the winner on the large platform.  Our H2
    # follows the stronger textual description of Algorithm 2 (it tries the
    # machines in priority order instead of only the single best-ranked one),
    # so H2 and H4w end up statistically tied here — we only assert that H4w
    # stays within ~1/3 of the best curve and clearly ahead of nothing worse.
    assert means["H4w"] <= 1.35 * min(means.values())
    assert means["H4w"] <= 1.05 * max(means.values())
