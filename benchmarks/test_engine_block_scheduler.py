"""Benchmarks of the block-scheduled experiment engine.

Two acceptance numbers guard the engine refactors:

* **scoring** (PR 2): one vectorized :class:`~repro.batch.InstanceStack`
  pass over a curve's ``R`` mappings must be at least **3x faster** than
  ``R`` scalar :func:`repro.core.evaluate` calls at ``R >= 50``;
* **solving** (PR 3): the lock-step ``solve_batch`` kernels must make
  the H-family block solve — all five batch-capable paper heuristics
  end-to-end — at least **3x faster** than the per-instance solve loop
  at ``R = 50``, bit for bit;
* **refining** (PR 4): the batched ``H4ls`` descent with active-row
  subsetting must beat the per-instance refinement loop by at least
  **1.5x** on the hard m=50 shape (it measured ~1.3x before converged
  rows were dropped from the stack, ~2.2x after).

A further (informational) timing compares the whole engines.

Run with ``python -m pytest -m bench benchmarks/test_engine_block_scheduler.py -s``.
"""

from __future__ import annotations

import time

import pytest

from repro.core import Mapping, evaluate
from repro.experiments import CellBlock, HeuristicProvider, run_scenario
from repro.generators import ScenarioConfig
from repro.simulation.rng import RandomStreamFactory

#: The batch-capable paper heuristics (H1 is randomized and stays serial).
BATCHABLE_HEURISTICS = ("H2", "H3", "H4", "H4w", "H4f")

#: The acceptance repetition count ("repetitions >= 50").
R = 50


@pytest.fixture(scope="module")
def scenario() -> ScenarioConfig:
    """A Figure 5-shaped sweep point at R=50 repetitions."""
    return ScenarioConfig(
        name="bench-engine",
        num_machines=50,
        num_types=5,
        sweep="tasks",
        sweep_values=(100,),
        repetitions=R,
        heuristics=("H4w",),
    )


@pytest.fixture(scope="module")
def block(scenario) -> CellBlock:
    return CellBlock.sample(scenario, 100, RandomStreamFactory(17))


def _time(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_block_scoring_speedup_at_r50(scenario, block):
    """Acceptance: the stack scoring pass >= 3x over R scalar evaluations."""
    provider = HeuristicProvider("H4w")
    assignments = provider.solve_block(block)

    def scalar_scoring():
        return [
            evaluate(instance, Mapping(assignments[i], instance.num_machines)).period
            for i, instance in enumerate(block.instances)
        ]

    def block_scoring():
        return block.stack.periods(assignments)

    scalar_periods = scalar_scoring()
    block_periods = block_scoring()
    for i in (0, R // 2, R - 1):
        assert block_periods[i] == scalar_periods[i]  # bit-for-bit

    scalar_time = _time(scalar_scoring)
    block_time = _time(block_scoring)
    speedup = scalar_time / block_time
    print(
        f"\nscoring {R} mappings: scalar {scalar_time * 1e3:.1f} ms, "
        f"stack pass {block_time * 1e3:.2f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= 3.0


def test_batch_solve_speedup_at_r50(block):
    """Acceptance: the lock-step H-family block solve >= 3x at R=50.

    Solves the whole five-heuristic curve set both ways (bit-for-bit
    identical) and compares total wall-clock — the "end-to-end" ratio the
    engine sees per sweep point, dominated by the binary-search family.
    """
    per_curve = {}
    total_batch = total_loop = 0.0
    for name in BATCHABLE_HEURISTICS:
        batch_provider = HeuristicProvider(name, batch=True)
        loop_provider = HeuristicProvider(name, batch=False)
        assert (
            batch_provider.solve_block(block) == loop_provider.solve_block(block)
        ).all(), name  # bit-for-bit
        batch_time = _time(lambda: batch_provider.solve_block(block))
        loop_time = _time(lambda: loop_provider.solve_block(block))
        per_curve[name] = (loop_time, batch_time)
        total_batch += batch_time
        total_loop += loop_time
    print(f"\nbatch solve at R={R} (loop -> batch):")
    for name, (loop_time, batch_time) in per_curve.items():
        print(
            f"  {name:4s} {loop_time * 1e3:7.1f} ms -> {batch_time * 1e3:7.1f} ms "
            f"({loop_time / batch_time:.1f}x)"
        )
    speedup = total_loop / total_batch
    print(
        f"  all  {total_loop * 1e3:7.1f} ms -> {total_batch * 1e3:7.1f} ms "
        f"({speedup:.1f}x)"
    )
    assert speedup >= 3.0


def test_batch_refine_speedup_at_r50(block):
    """Acceptance: the batched H4ls descent >= 1.5x at R=50 on m=50.

    The m=50 fig5 shape is the refinement's hardest case (deep descents,
    rows converging at very different depths); active-row subsetting must
    keep late rounds from paying full-stack probes.  Both paths are
    bit-for-bit identical, move counts included.
    """
    from repro.heuristics.local_search import (
        refine_specialized,
        refine_specialized_batch,
    )

    seeds = HeuristicProvider("H4w", batch=True).solve_block(block)

    def loop_refine():
        return [
            refine_specialized(instance, seeds[i])
            for i, instance in enumerate(block.instances)
        ]

    def batch_refine():
        return refine_specialized_batch(block.instances, seeds)

    loop_result = loop_refine()
    refined, moves = batch_refine()
    for i in (0, R // 2, R - 1):
        mapping, count = loop_result[i]
        assert (refined[i] == mapping.as_array).all()  # bit-for-bit
        assert count == moves[i]

    loop_time = _time(loop_refine)
    batch_time = _time(batch_refine)
    speedup = loop_time / batch_time
    print(
        f"\nH4ls refine at R={R}, m=50: loop {loop_time * 1e3:.0f} ms, "
        f"batch {batch_time * 1e3:.0f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= 1.5


def test_end_to_end_engines_report(scenario):
    """Informational: whole-run block vs cells timing (sampling is shared
    work and bounds the ratio; the solve itself is batched at this R)."""
    cells_time = _time(
        lambda: run_scenario(scenario, seed=17, engine="cells"), repeats=2
    )
    block_time = _time(
        lambda: run_scenario(scenario, seed=17, engine="block"), repeats=2
    )
    print(
        f"\nend-to-end R={R} sweep point: cells {cells_time * 1e3:.0f} ms, "
        f"block {block_time * 1e3:.0f} ms ({cells_time / block_time:.2f}x)"
    )
    # The block engine must never be slower than the per-cell path by more
    # than measurement noise (best-of-2 timings still jitter on a loaded
    # machine — this is a guard rail, not the speedup assertion above).
    assert block_time <= cells_time * 1.25


def test_bench_block_scoring(benchmark, block):
    provider = HeuristicProvider("H4w")
    assignments = provider.solve_block(block)
    periods = benchmark(block.stack.periods, assignments)
    assert periods.shape == (R,)


def test_bench_block_pipeline(benchmark, scenario):
    """Sampling + solving + scoring one whole block."""

    def pipeline():
        fresh = CellBlock.sample(scenario, 100, RandomStreamFactory(17))
        return HeuristicProvider("H4w").evaluate_block(fresh)

    result = benchmark(pipeline)
    assert result.periods.shape == (R,)


def test_bench_batch_solve_greedy(benchmark, block):
    """Lock-step H4w solve of one R=50 block (greedy family kernel)."""
    provider = HeuristicProvider("H4w", batch=True)
    assignments = benchmark(provider.solve_block, block)
    assert assignments.shape == (R, block.stack.num_tasks)


def test_bench_batch_solve_binary_search(benchmark, block):
    """Lock-step H2 solve of one R=50 block (binary-search family kernel)."""
    provider = HeuristicProvider("H2", batch=True)
    assignments = benchmark(provider.solve_block, block)
    assert assignments.shape == (R, block.stack.num_tasks)


def test_bench_batch_refine(benchmark, block):
    """Lock-step H4ls descent of one R=50 block (active-row subsetting)."""
    from repro.heuristics.local_search import refine_specialized_batch

    seeds = HeuristicProvider("H4w", batch=True).solve_block(block)
    refined, moves = benchmark(refine_specialized_batch, block.instances, seeds)
    assert refined.shape == (R, block.stack.num_tasks)
    assert int(moves.sum()) > 0


# -- cross-point stacking (PR 7) ---------------------------------------------------

#: A types sweep shares the task chain across sweep points, so all eight
#: blocks stack into one kernel pass (480 rows at n=50, m=40).
CROSS_POINT_SCENARIO = ScenarioConfig(
    name="bench-cross-point",
    num_machines=40,
    num_types=None,
    num_tasks=50,
    sweep="types",
    sweep_values=tuple(range(4, 36, 4)),
    repetitions=6,
    heuristics=("H2",),
)


@pytest.fixture(scope="module")
def cross_point_blocks() -> list[CellBlock]:
    streams = RandomStreamFactory(17)
    return [
        CellBlock.sample(CROSS_POINT_SCENARIO, value, streams)
        for value in CROSS_POINT_SCENARIO.sweep_values
    ]


def test_cross_point_stacking_speedup(cross_point_blocks):
    """Acceptance: stacking aligned sweep points >= 1.3x over per-block.

    A types sweep keeps (n, m) fixed, so every point of the figure shares
    the block structure; ``evaluate_blocks`` solves all points x R rows in
    one solve_stack entry instead of one per point.  Results stay
    bit-for-bit identical (measured ~2.5-4x for the binary-search family).
    """
    provider = HeuristicProvider("H2")

    def per_block():
        return [provider.evaluate_block(block) for block in cross_point_blocks]

    def stacked():
        return provider.evaluate_blocks(cross_point_blocks)

    for loop_result, stacked_result in zip(per_block(), stacked()):
        assert (loop_result.periods == stacked_result.periods).all()  # bit-for-bit

    loop_time = _time(per_block)
    stacked_time = _time(stacked)
    speedup = loop_time / stacked_time
    rows = sum(block.repetitions for block in cross_point_blocks)
    print(
        f"\ncross-point H2, {len(cross_point_blocks)} points x R="
        f"{CROSS_POINT_SCENARIO.repetitions} ({rows} rows): per-block "
        f"{loop_time * 1e3:.0f} ms, stacked {stacked_time * 1e3:.0f} ms, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= 1.3


def test_bench_block_pipeline_cross_point(benchmark, cross_point_blocks):
    """One stacked solve+score pass over a whole aligned types sweep."""
    provider = HeuristicProvider("H2")
    results = benchmark(provider.evaluate_blocks, cross_point_blocks)
    assert len(results) == len(cross_point_blocks)
    assert all(
        result.periods.shape == (CROSS_POINT_SCENARIO.repetitions,)
        for result in results
    )
