"""Benchmarks of the block-scheduled experiment engine.

The acceptance number for the engine refactor: scoring a heuristic
curve's ``R`` mappings through the block path — one vectorized
:class:`~repro.batch.InstanceStack` pass — must be at least **3x faster**
than the per-cell path's ``R`` scalar :func:`repro.core.evaluate` calls
at ``R >= 50`` repetitions.  A second (informational) timing compares
the end-to-end engines, where the per-instance heuristic solves are
shared work and bound the overall ratio.

Run with ``python -m pytest -m bench benchmarks/test_engine_block_scheduler.py -s``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import Mapping, evaluate
from repro.experiments import CellBlock, HeuristicProvider, run_scenario
from repro.generators import ScenarioConfig
from repro.simulation.rng import RandomStreamFactory

#: The acceptance repetition count ("repetitions >= 50").
R = 50


@pytest.fixture(scope="module")
def scenario() -> ScenarioConfig:
    """A Figure 5-shaped sweep point at R=50 repetitions."""
    return ScenarioConfig(
        name="bench-engine",
        num_machines=50,
        num_types=5,
        sweep="tasks",
        sweep_values=(100,),
        repetitions=R,
        heuristics=("H4w",),
    )


@pytest.fixture(scope="module")
def block(scenario) -> CellBlock:
    return CellBlock.sample(scenario, 100, RandomStreamFactory(17))


def _time(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_block_scoring_speedup_at_r50(scenario, block):
    """Acceptance: the stack scoring pass >= 3x over R scalar evaluations."""
    provider = HeuristicProvider("H4w")
    assignments = provider.solve_block(block)

    def scalar_scoring():
        return [
            evaluate(instance, Mapping(assignments[i], instance.num_machines)).period
            for i, instance in enumerate(block.instances)
        ]

    def block_scoring():
        return block.stack.periods(assignments)

    scalar_periods = scalar_scoring()
    block_periods = block_scoring()
    for i in (0, R // 2, R - 1):
        assert block_periods[i] == scalar_periods[i]  # bit-for-bit

    scalar_time = _time(scalar_scoring)
    block_time = _time(block_scoring)
    speedup = scalar_time / block_time
    print(
        f"\nscoring {R} mappings: scalar {scalar_time * 1e3:.1f} ms, "
        f"stack pass {block_time * 1e3:.2f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= 3.0


def test_end_to_end_engines_report(scenario):
    """Informational: whole-run block vs cells timing (solves are shared)."""
    cells_time = _time(
        lambda: run_scenario(scenario, seed=17, engine="cells"), repeats=1
    )
    block_time = _time(
        lambda: run_scenario(scenario, seed=17, engine="block"), repeats=1
    )
    print(
        f"\nend-to-end R={R} sweep point: cells {cells_time * 1e3:.0f} ms, "
        f"block {block_time * 1e3:.0f} ms ({cells_time / block_time:.2f}x)"
    )
    # The block engine must never be slower than the per-cell path by more
    # than measurement noise.
    assert block_time <= cells_time * 1.10


def test_bench_block_scoring(benchmark, block):
    provider = HeuristicProvider("H4w")
    assignments = provider.solve_block(block)
    periods = benchmark(block.stack.periods, assignments)
    assert periods.shape == (R,)


def test_bench_block_pipeline(benchmark, scenario):
    """Sampling + solving + scoring one whole block."""

    def pipeline():
        fresh = CellBlock.sample(scenario, 100, RandomStreamFactory(17))
        return HeuristicProvider("H4w").evaluate_block(fresh)

    result = benchmark(pipeline)
    assert result.periods.shape == (R,)
