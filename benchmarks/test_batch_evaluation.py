"""Micro-benchmarks of the vectorized batch evaluation engine.

The headline number: scoring an R=500 batch of mappings (one repetition
sweep's worth of work) with :func:`repro.batch.evaluate_batch` versus
500 scalar :func:`repro.core.evaluate` calls.  The batch path must be at
least 10x faster — it is the foundation the experiment runner and the
search heuristics build on.

Run with ``python -m pytest -m bench benchmarks/test_batch_evaluation.py -s``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.batch import MappingEvaluator, evaluate_batch
from repro.core import Mapping, evaluate
from tests.helpers import make_random_instance

R = 500


@pytest.fixture(scope="module")
def paper_scale_instance():
    """n=100 tasks, p=5 types, m=50 machines — the Figure 5/7 regime."""
    return make_random_instance(100, 5, 50, seed=11)


@pytest.fixture(scope="module")
def mapping_batch(paper_scale_instance):
    rng = np.random.default_rng(42)
    inst = paper_scale_instance
    return rng.integers(0, inst.num_machines, size=(R, inst.num_tasks))


def _time(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_batch_speedup_at_r500(paper_scale_instance, mapping_batch):
    """The acceptance benchmark: >= 10x over the scalar loop at R=500."""
    inst = paper_scale_instance

    def scalar_loop():
        return [
            evaluate(inst, Mapping(row, inst.num_machines)) for row in mapping_batch
        ]

    def batch_call():
        return evaluate_batch(inst, mapping_batch)

    # Warm both paths, then validate they agree before timing.
    scalar_results = scalar_loop()
    batch_result = batch_call()
    for r in (0, R // 2, R - 1):
        assert batch_result.periods[r] == scalar_results[r].period

    scalar_time = _time(scalar_loop, repeats=1)
    batch_time = _time(batch_call)
    speedup = scalar_time / batch_time
    print(
        f"\nscalar {R} evaluations: {scalar_time * 1e3:.1f} ms, "
        f"batch: {batch_time * 1e3:.2f} ms, speedup: {speedup:.1f}x"
    )
    assert speedup >= 10.0


def test_bench_evaluate_batch(benchmark, paper_scale_instance, mapping_batch):
    result = benchmark(evaluate_batch, paper_scale_instance, mapping_batch)
    assert result.periods.shape == (R,)


def test_bench_scalar_evaluation_loop(benchmark, paper_scale_instance, mapping_batch):
    inst = paper_scale_instance
    small = mapping_batch[:50]

    def loop():
        return [evaluate(inst, Mapping(row, inst.num_machines)) for row in small]

    assert len(benchmark(loop)) == 50


def test_bench_incremental_moves(benchmark, paper_scale_instance, mapping_batch):
    inst = paper_scale_instance
    rng = np.random.default_rng(3)
    moves = list(
        zip(
            rng.integers(0, inst.num_tasks, size=200),
            rng.integers(0, inst.num_machines, size=200),
        )
    )

    def replay():
        ev = MappingEvaluator(inst, mapping_batch[0])
        for task, machine in moves:
            ev.move(int(task), int(machine))
        return ev.period

    incremental = benchmark(replay)
    ev = MappingEvaluator(inst, mapping_batch[0])
    for task, machine in moves:
        ev.move(int(task), int(machine))
    assert incremental == pytest.approx(
        evaluate(inst, ev.mapping).period, rel=1e-9
    )
