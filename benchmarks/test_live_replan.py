"""Benchmark: warm-start live replanning vs a from-scratch cold solve.

Acceptance criterion of the live-replanning PR: at **m = 50 machines**
(n = 30 tasks, p = 5 types, H4ls), a warm replan — the persistent
:class:`~repro.batch.MappingEvaluator` descent the
:class:`~repro.live.replanner.Replanner` runs on a platform event —
must answer in **<= 1/2** the latency of the cold solve the service
would otherwise run (a from-scratch H4ls solve of the same platform
state).  Bit-for-bit equality of a warm run against the ``warm=False``
cold re-solve reference is asserted first: the speed comparison only
counts because both paths return identical mappings.

The measured cycle fails and recovers a machine the initial solution
leaves *unassigned*, with the plan cache cleared before every event, so
each apply goes through the warm tier's full work — move-mask
construction, best-move probing, evaluator resync — never the O(1)
cache tier.  The initial H4ls mapping is a single-move local optimum of
the full platform, so the cycle is a steady state: every replan returns
the initial mapping and the spare machine never gets a task.

``test_bench_live_replan`` pins the warm replan's wall-clock in the CI
regression gate (``benchmarks/baseline.json``).
"""

from __future__ import annotations

import time

from repro.heuristics import get_heuristic
from repro.heuristics.base import solve_one
from repro.live import LiveConfig, Replanner, build_replanner, compare_reports, run_timeline

#: The acceptance scale: m = 50 machines.
CONFIG = LiveConfig(
    tasks=30,
    types=5,
    machines=50,
    heuristic="H4ls",
    seed=0,
    duration=40.0,
    mtbf=25.0,
    mttr=8.0,
    arrival_rate=0.1,
)

#: fail/recover pairs per measured round (2 warm replans each).
PAIRS_PER_ROUND = 10


def _spare_machine(replanner: Replanner) -> int:
    """A machine the initial mapping leaves unassigned."""
    assigned = set(replanner.initial.mapping)
    return next(
        u for u in range(replanner.instance.num_machines) if u not in assigned
    )


def _warm_round(replanner: Replanner, spare: int) -> None:
    """Fail + recover the spare machine, forcing the warm tier each time.

    Clearing the plan cache before every event keeps the replans off the
    O(1) cache tier — each one runs the real warm-start work.
    """
    for _ in range(PAIRS_PER_ROUND):
        replanner._plans.clear()
        replanner.apply(replanner.clock, "fail", spare)
        replanner._plans.clear()
        replanner.apply(replanner.clock, "recover", spare)


def _time(fn, repeats=3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_live_replan_speedup_at_m50():
    """Acceptance: warm replan >= 2x faster than a cold solve at m=50."""
    # Bit-for-bit first: a warm timeline run must equal the cold
    # re-solve reference at this exact scale.
    compare_reports(run_timeline(CONFIG, warm=False), run_timeline(CONFIG, warm=True))

    replanner = build_replanner(CONFIG)
    spare = _spare_machine(replanner)
    initial = replanner.initial.mapping
    _warm_round(replanner, spare)  # warm-up + steady-state check
    assert replanner.mapping is not None
    assert tuple(int(u) for u in replanner.mapping) == initial
    cold_before = replanner.counters.cold

    warm_seconds = _time(lambda: _warm_round(replanner, spare)) / (
        2 * PAIRS_PER_ROUND
    )
    assert replanner.counters.cold == cold_before  # warm tier only

    heuristic = get_heuristic(CONFIG.heuristic)
    instance = replanner.instance
    cold_seconds = _time(lambda: solve_one(heuristic, instance))

    speedup = cold_seconds / warm_seconds
    print(
        f"\nm={CONFIG.machines}: warm replan {warm_seconds * 1e3:.2f} ms, "
        f"cold solve {cold_seconds * 1e3:.2f} ms ({speedup:.1f}x)"
    )
    assert speedup >= 2.0


def test_bench_live_replan(benchmark):
    """Key benchmark: warm fail/recover replan round at m=50."""
    replanner = build_replanner(CONFIG)
    spare = _spare_machine(replanner)
    _warm_round(replanner, spare)  # warm up the persistent evaluator
    benchmark(lambda: _warm_round(replanner, spare))


def test_bench_live_cold_solve(benchmark):
    """Companion: the from-scratch cold solve at the same scale."""
    replanner = build_replanner(CONFIG)
    heuristic = get_heuristic(CONFIG.heuristic)
    instance = replanner.instance
    benchmark(lambda: solve_one(heuristic, instance))
