"""Figure 5 — specialized mappings, m=50, p=5, n=50..150, all six heuristics.

Paper's conclusion: H1 and H4f are not competitive; the informed
heuristics (H2, H3, H4, H4w) stay close together and much lower.
"""

from __future__ import annotations

import numpy as np

from .conftest import run_figure_benchmark


def test_fig05_specialized_m50_p5(benchmark, results_dir):
    result = run_figure_benchmark(benchmark, results_dir, "fig5", seed=5)
    means = {name: float(np.mean(series.means())) for name, series in result.series.items()}
    informed_best = min(means["H2"], means["H3"], means["H4"], means["H4w"])
    # Shape assertions (who wins), not absolute milliseconds.
    assert means["H1"] > informed_best
    assert means["H4f"] > informed_best
    assert means["H4w"] <= 1.5 * informed_best
