"""Figure 10 — small instances (m=5, p=2, n=2..16), heuristics vs the MIP.

Paper's conclusion: H4w is the best heuristic with H2/H4 close behind;
the exact MIP sits below every heuristic.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import MIP_LABEL

from .conftest import run_figure_benchmark


def test_fig10_heuristics_vs_mip(benchmark, results_dir):
    result = run_figure_benchmark(benchmark, results_dir, "fig10", seed=10)
    assert MIP_LABEL in result.series
    mip = result.series[MIP_LABEL]
    # The exact optimum never exceeds any heuristic on the same instance.
    for name in ("H2", "H3", "H4", "H4w"):
        series = result.series[name]
        for x in series.x_values:
            for heuristic_value, optimum in zip(series.samples[x], mip.samples[x]):
                if np.isfinite(optimum):
                    assert heuristic_value >= optimum - 1e-6
    # H4w is among the best heuristics overall.
    report = result.normalization_report(MIP_LABEL)
    assert report.factor("H4w") <= report.factor("H1")
    assert report.factor("H4w") <= report.factor("H4f")
