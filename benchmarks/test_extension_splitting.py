"""Extension benchmark: how much throughput does workload splitting recover?

Not a paper figure — this quantifies the paper's future-work suggestion
(dividing a task's instances across machines) on paper-style instances:
for each random instance we compare the H4w mapping, its split
re-optimisation, the exact unsplit optimum, and the fractional lower
bound.
"""

from __future__ import annotations

import numpy as np

from repro.exact import solve_specialized_branch_and_bound
from repro.extensions import split_specialized_mapping, splitting_lower_bound
from repro.heuristics import get_heuristic
from tests.helpers import make_random_instance


def test_extension_workload_splitting(benchmark):
    instances = [make_random_instance(14, 3, 6, seed=seed, f_low=0.01, f_high=0.05) for seed in range(6)]

    def run() -> dict:
        h4w_periods, split_periods, exact_periods, bounds = [], [], [], []
        for inst in instances:
            h4w = get_heuristic("H4w").solve(inst)
            split = split_specialized_mapping(inst, h4w.mapping)
            exact = solve_specialized_branch_and_bound(inst)
            h4w_periods.append(h4w.period)
            split_periods.append(split.period)
            exact_periods.append(exact.period)
            bounds.append(splitting_lower_bound(inst))
        return {
            "h4w": float(np.mean(h4w_periods)),
            "h4w_split": float(np.mean(split_periods)),
            "exact_unsplit": float(np.mean(exact_periods)),
            "fractional_bound": float(np.mean(bounds)),
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nworkload splitting: {stats}")
    # Splitting never hurts, and nothing beats the fractional bound.
    assert stats["h4w_split"] <= stats["h4w"] + 1e-6
    assert stats["fractional_bound"] <= stats["exact_unsplit"] + 1e-6
    assert stats["fractional_bound"] <= stats["h4w_split"] + 1e-6
