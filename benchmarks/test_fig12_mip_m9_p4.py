"""Figure 12 — m=9, p=4, n=5..20; the MIP stops scaling around 15 tasks.

Paper's conclusion: H4w remains the best heuristic; the exact MIP tracks
below the heuristics on the instances it can solve and fails to return
solutions beyond ~15 tasks (we reproduce this with a per-instance time
limit, counting the unsolved instances).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import MIP_LABEL

from .conftest import run_figure_benchmark


def test_fig12_mip_scaling_limit(benchmark, results_dir):
    result = run_figure_benchmark(
        benchmark, results_dir, "fig12", seed=12, milp_time_limit=10.0
    )
    assert MIP_LABEL in result.series
    assert set(result.series) >= {"H2", "H3", "H4", "H4w"}
    mip = result.series[MIP_LABEL]
    # Wherever the MIP did prove optimality, it is never above a heuristic.
    for name in ("H2", "H4w"):
        series = result.series[name]
        for x in series.x_values:
            for heuristic_value, optimum in zip(series.samples[x], mip.samples[x]):
                if np.isfinite(optimum):
                    assert heuristic_value >= optimum - 1e-6
    # The MIP solved at least the smallest instances within the time limit.
    first_point = mip.point(mip.x_values[0])
    assert first_point.count > 0
