"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not paper figures; they quantify the impact of three design
decisions:

* **Traversal direction** — the paper assigns tasks sinks-first so that the
  expected product counts are exact during assignment; the ablation
  compares H4 against its forward-traversal variant.
* **Bisection granularity** — H2 bisects integer millisecond values (as in
  the paper); the ablation compares against a relative-tolerance bisection.
* **Analytic vs simulated period** — the stochastic simulator must agree
  with expression (1); the ablation measures the deviation across mappings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import evaluate
from repro.heuristics import get_heuristic
from repro.heuristics.binary_search import RankBinarySearchHeuristic
from repro.simulation import simulate_mapping
from tests.helpers import make_random_instance


def _instances(count: int, *, num_tasks: int = 40, num_types: int = 5, num_machines: int = 10):
    return [make_random_instance(num_tasks, num_types, num_machines, seed=seed) for seed in range(count)]


def test_ablation_traversal_direction(benchmark):
    """Backward (paper) vs forward greedy traversal for the H4 criterion."""
    instances = _instances(10)

    def run() -> tuple[float, float]:
        backward = [get_heuristic("H4").solve(inst).period for inst in instances]
        forward = [get_heuristic("H4-forward").solve(inst).period for inst in instances]
        return float(np.mean(backward)), float(np.mean(forward))

    backward_mean, forward_mean = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nablation traversal: backward={backward_mean:.1f} ms, forward={forward_mean:.1f} ms")
    # The paper's backward traversal should not lose to the forward variant.
    assert backward_mean <= forward_mean * 1.05


def test_ablation_bisection_granularity(benchmark):
    """Integer-millisecond bisection (paper) vs relative-tolerance bisection."""
    instances = _instances(8, num_tasks=30)

    def run() -> dict:
        integer = [RankBinarySearchHeuristic(integer_search=True).solve(inst) for inst in instances]
        relative = [
            RankBinarySearchHeuristic(integer_search=False, rel_tol=1e-4).solve(inst)
            for inst in instances
        ]
        return {
            "integer_period": float(np.mean([r.period for r in integer])),
            "relative_period": float(np.mean([r.period for r in relative])),
            "integer_iterations": float(np.mean([r.iterations for r in integer])),
            "relative_iterations": float(np.mean([r.iterations for r in relative])),
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nablation bisection: {stats}")
    # Both bisections land on essentially the same mapping quality.
    assert stats["integer_period"] == pytest.approx(stats["relative_period"], rel=0.02)


def test_ablation_simulation_validates_analytic_period(benchmark):
    """The stochastic simulator agrees with the analytic period model."""
    instances = _instances(4, num_tasks=12, num_types=3, num_machines=6)

    def run() -> float:
        deviations = []
        for index, inst in enumerate(instances):
            mapping = get_heuristic("H4w").solve(inst).mapping
            analytic = evaluate(inst, mapping).period
            metrics = simulate_mapping(
                inst, mapping, 300, rng=np.random.default_rng(index), max_events=2_000_000
            )
            deviations.append(abs(metrics.empirical_period - analytic) / analytic)
        return float(np.mean(deviations))

    mean_deviation = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nablation simulation: mean |simulated - analytic| / analytic = {mean_deviation:.3%}")
    assert mean_deviation < 0.10
