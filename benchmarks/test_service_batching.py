"""Benchmark: micro-batched service throughput vs the per-request path.

Acceptance criterion of the solve-service PR: at 32 concurrent
*compatible* requests (same heuristic, task count and platform size —
one batching signature), the micro-batched service must clear **>= 2x**
the per-request path.  Both paths run through the same
:class:`~repro.service.batcher.MicroBatcher` under the same batching
window, so the measured ratio isolates the lock-step ``solve_batch`` +
stacked scoring pass against 32 individual solves — scheduling,
normalisation and instance sampling costs are identical on both sides,
and the responses are asserted bit-for-bit equal first.

``test_bench_service_microbatch`` additionally pins the batched path's
wall-clock in the CI regression gate (``benchmarks/baseline.json``).
"""

from __future__ import annotations

import asyncio
import time

from repro.service import MicroBatcher, direct_response, normalize_request

#: Concurrent compatible requests, per the acceptance criterion.
CONCURRENCY = 32


def _requests():
    """32 compatible requests: one signature, 32 distinct seeds."""
    return [
        normalize_request(
            {
                "heuristic": "H2",
                "application": {"tasks": 100, "types": 5},
                "platform": {"machines": 50},
                "options": {"seed": seed},
            }
        )
        for seed in range(CONCURRENCY)
    ]


def _serve_all(requests, *, batch: bool) -> list[dict]:
    """All requests through one service batcher, batched or per-request.

    No cache — every round must actually solve (the benchmark measures
    solving, not dict lookups).  The window is wide enough that all 32
    requests always land in one group on both paths; ``batch`` is then
    the only difference.
    """

    async def scenario():
        batcher = MicroBatcher(
            window=0.05, max_batch=CONCURRENCY, batch=batch, cache=None
        )
        return await asyncio.gather(
            *(batcher.submit(request) for request in requests)
        )

    return asyncio.run(scenario())


def _time(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_service_batching_speedup_at_32_concurrent():
    """Acceptance: batched service throughput >= 2x per-request at 32."""
    requests = _requests()
    batched = _serve_all(requests, batch=True)
    fallback = _serve_all(requests, batch=False)
    reference = [direct_response(request) for request in requests]
    for response, other, direct in zip(batched, fallback, reference):
        # Bit-for-bit across all three paths before comparing clocks.
        assert response["assignment"] == other["assignment"] == direct["assignment"]
        assert response["period"] == other["period"] == direct["period"]

    batched_time = _time(lambda: _serve_all(requests, batch=True))
    fallback_time = _time(lambda: _serve_all(requests, batch=False))
    speedup = fallback_time / batched_time
    print(
        f"\n{CONCURRENCY} concurrent compatible requests: per-request "
        f"{fallback_time * 1e3:.0f} ms, micro-batched {batched_time * 1e3:.0f} ms "
        f"({speedup:.1f}x)"
    )
    assert speedup >= 2.0


def test_bench_service_microbatch(benchmark):
    """Key benchmark: one 32-deep micro-batched service round."""
    requests = _requests()
    benchmark(lambda: _serve_all(requests, batch=True))


def test_bench_service_per_request(benchmark):
    """Companion: the same 32 requests on the per-request path."""
    requests = _requests()
    benchmark(lambda: _serve_all(requests, batch=False))
