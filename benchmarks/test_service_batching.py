"""Benchmark: micro-batched service throughput vs the per-request path.

Acceptance criterion of the solve-service PR: at 32 concurrent
*compatible* requests (same heuristic, task count and platform size —
one batching signature), the micro-batched service must clear **>= 2x**
the per-request path.  Both paths run through the same
:class:`~repro.service.batcher.MicroBatcher` under the same batching
window, so the measured ratio isolates the lock-step ``solve_batch`` +
stacked scoring pass against 32 individual solves — scheduling,
normalisation and instance sampling costs are identical on both sides,
and the responses are asserted bit-for-bit equal first.

``test_bench_service_microbatch`` additionally pins the batched path's
wall-clock in the CI regression gate (``benchmarks/baseline.json``), and
``test_bench_service_sustained_mixed`` pins a **sustained-throughput**
round: 256 concurrent *mixed* requests (four signatures, four
heuristics, batch-kernel and fallback paths together) through one
batcher — the traffic shape the production-hardening PR optimizes for.
"""

from __future__ import annotations

import asyncio
import time

from repro.service import MicroBatcher, direct_response, normalize_request

#: Concurrent compatible requests, per the acceptance criterion.
CONCURRENCY = 32

#: Concurrent mixed requests of the sustained-throughput benchmark.
MIXED_CONCURRENCY = 256

#: The mixed round's signatures: (heuristic, tasks, types, machines).
#: Four heuristics across four platform shapes — H4w/H2/H3 take the
#: lock-step batch kernels at this depth, H4f exercises whatever path
#: its registration supports, so the round spans the service's code
#: paths instead of one hot loop.
MIXED_SPECS = (
    ("H4w", 40, 3, 8),
    ("H2", 25, 2, 6),
    ("H3", 30, 3, 10),
    ("H4f", 20, 2, 5),
)


def _requests():
    """32 compatible requests: one signature, 32 distinct seeds."""
    return [
        normalize_request(
            {
                "heuristic": "H2",
                "application": {"tasks": 100, "types": 5},
                "platform": {"machines": 50},
                "options": {"seed": seed},
            }
        )
        for seed in range(CONCURRENCY)
    ]


def _serve_all(requests, *, batch: bool) -> list[dict]:
    """All requests through one service batcher, batched or per-request.

    No cache — every round must actually solve (the benchmark measures
    solving, not dict lookups).  The window is wide enough that all 32
    requests always land in one group on both paths; ``batch`` is then
    the only difference.
    """

    async def scenario():
        batcher = MicroBatcher(
            window=0.05, max_batch=CONCURRENCY, batch=batch, cache=None
        )
        return await asyncio.gather(
            *(batcher.submit(request) for request in requests)
        )

    return asyncio.run(scenario())


def _time(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_service_batching_speedup_at_32_concurrent():
    """Acceptance: batched service throughput >= 2x per-request at 32."""
    requests = _requests()
    batched = _serve_all(requests, batch=True)
    fallback = _serve_all(requests, batch=False)
    reference = [direct_response(request) for request in requests]
    for response, other, direct in zip(batched, fallback, reference):
        # Bit-for-bit across all three paths before comparing clocks.
        assert response["assignment"] == other["assignment"] == direct["assignment"]
        assert response["period"] == other["period"] == direct["period"]

    batched_time = _time(lambda: _serve_all(requests, batch=True))
    fallback_time = _time(lambda: _serve_all(requests, batch=False))
    speedup = fallback_time / batched_time
    print(
        f"\n{CONCURRENCY} concurrent compatible requests: per-request "
        f"{fallback_time * 1e3:.0f} ms, micro-batched {batched_time * 1e3:.0f} ms "
        f"({speedup:.1f}x)"
    )
    assert speedup >= 2.0


def test_bench_service_microbatch(benchmark):
    """Key benchmark: one 32-deep micro-batched service round."""
    requests = _requests()
    benchmark(lambda: _serve_all(requests, batch=True))


def test_bench_service_per_request(benchmark):
    """Companion: the same 32 requests on the per-request path."""
    requests = _requests()
    benchmark(lambda: _serve_all(requests, batch=False))


def _mixed_requests():
    """256 mixed requests round-robined over the four signatures."""
    requests = []
    for index in range(MIXED_CONCURRENCY):
        heuristic, tasks, types, machines = MIXED_SPECS[index % len(MIXED_SPECS)]
        requests.append(
            normalize_request(
                {
                    "heuristic": heuristic,
                    "application": {"tasks": tasks, "types": types},
                    "platform": {"machines": machines},
                    "options": {"seed": index},
                }
            )
        )
    return requests


def _serve_mixed(requests) -> list[dict]:
    """One sustained round: every mixed request through one batcher.

    Production knobs: the batch/fallback crossover decides per group
    (``batch=None``) and no cache — a sustained-load benchmark must
    measure solving under concurrency, not lookups.  64 requests per
    signature means each group flushes on the ``max_batch`` size
    trigger, not the window.
    """

    async def scenario():
        batcher = MicroBatcher(window=0.05, batch=None, cache=None)
        return await asyncio.gather(
            *(batcher.submit(request) for request in requests)
        )

    return asyncio.run(scenario())


def test_service_sustained_mixed_equivalence():
    """256 mixed concurrent responses are bit-for-bit the direct solves."""
    requests = _mixed_requests()
    responses = _serve_mixed(requests)
    for request, response in zip(requests, responses):
        reference = direct_response(request)
        assert response["assignment"] == reference["assignment"]
        assert response["period"] == reference["period"]
        assert response["throughput"] == reference["throughput"]
        assert response["key"] == reference["key"]


def test_bench_service_sustained_mixed(benchmark):
    """Key benchmark: one 256-deep mixed concurrent service round."""
    requests = _mixed_requests()
    benchmark(lambda: _serve_mixed(requests))


class _BypassSpan:
    """A span stand-in with literally zero per-call work."""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def set(self, **attrs):
        pass


def test_tracing_disabled_overhead_within_noise(monkeypatch):
    """Gate: instrumented hot path with tracing *off* stays within 5%.

    The telemetry PR's acceptance criterion: the span call sites that
    now live on the batcher hot path must be free when no trace store is
    configured.  The shipped path still calls ``span()`` (which returns
    a shared no-op after two cheap checks); the baseline below patches
    the batcher's ``span``/``tracing_active`` symbols to zero-work
    stubs, so the measured ratio isolates exactly the disabled-tracing
    overhead on the sustained-mixed round.
    """
    from repro.obs import trace
    from repro.service import batcher as batcher_module

    trace.disable()  # belt and braces: the gate measures the OFF path
    requests = _mixed_requests()
    _serve_mixed(requests)  # one warm-up round before either clock runs

    instrumented = _time(lambda: _serve_mixed(requests), repeats=5)

    bypass = _BypassSpan()
    monkeypatch.setattr(batcher_module, "span", lambda name, **attrs: bypass)
    monkeypatch.setattr(batcher_module, "tracing_active", lambda: False)
    baseline = _time(lambda: _serve_mixed(requests), repeats=5)

    overhead = instrumented / baseline - 1.0
    print(
        f"\nsustained mixed round: instrumented {instrumented * 1e3:.0f} ms, "
        f"span-bypassed {baseline * 1e3:.0f} ms "
        f"({overhead * 100:+.1f}% disabled-tracing overhead)"
    )
    assert instrumented <= baseline * 1.05
