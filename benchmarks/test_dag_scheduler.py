"""Benchmarks for the campaign DAG: stealing speedup and cache overhead.

Two claims are protected here:

* **Cost-balanced scheduling + work stealing beats naive round-robin**
  on a mixed MIP+heuristic plan.  The dispatch layer is benchmarked in
  isolation with sleeps proportional to the cost model's estimates (so
  the comparison measures *scheduling*, not solver noise) and the
  speedup is asserted — this runs in the blocking ``-m bench`` CI job.
  Sleep-based timings are machine-independent, so this test must NOT
  join the normalized baseline gate.

* **The DAG's cache overhead stays negligible**: re-running a fully
  cached campaign does zero solves, and ``test_bench_dag_pipeline``
  (pytest-benchmark, real compute) pins the cost of that cached re-run
  — key hashing, artifact loads, aggregate/render folds — in the
  normalized regression gate (``benchmarks/baseline.json``).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

from repro.campaign import CampaignManifest, expand_units, plan
from repro.dag import build_pipeline, run_pipeline, steal_dispatch, unit_cost
from repro.experiments import ResultStore

#: Executor slots for the dispatch comparison (one per simulated host).
SLOTS = 3
#: Total simulated solve seconds across the whole plan (split over SLOTS).
SIMULATED_TOTAL_SECONDS = 2.4


def _mixed_manifest() -> CampaignManifest:
    """A mixed MIP+heuristic plan: fig10 carries the exact MIP curve."""
    return CampaignManifest(
        figures=("fig10",), seeds=(0, 1), repetitions=2, max_points=2, no_milp=False
    )


def _dispatch_seconds(queues: list[list[float]], *, steal: bool) -> tuple[float, int]:
    """Wall-clock of draining sleep-priced queues through ``SLOTS`` workers."""
    with ThreadPoolExecutor(max_workers=SLOTS) as pool:
        start = time.perf_counter()
        report = steal_dispatch(
            pool,
            time.sleep,
            queues,
            [list(queue) for queue in queues],
            slots=SLOTS,
            steal=steal,
        )
        elapsed = time.perf_counter() - start
    total = sum(len(queue) for queue in queues)
    assert report.executed == total
    return elapsed, report.stolen


def test_cost_balance_and_stealing_beat_naive_round_robin():
    """The DAG scheduler's makespan vs count-based round-robin, no stealing.

    Each work unit sleeps for a duration proportional to its cost-model
    estimate (MIP blocks ~100x heuristic blocks), so queue shape is the
    only variable.  The naive baseline assigns blocks round-robin and
    never steals — its makespan is the unluckiest queue; the DAG way
    (LPT over cost estimates + tail stealing) must beat it.
    """
    manifest = _mixed_manifest()
    units = expand_units(manifest)
    scale = SIMULATED_TOTAL_SECONDS / sum(unit_cost(manifest, u) for u in units)

    def sleep_queues(shards):
        return [
            [unit_cost(manifest, unit) * scale for unit in shard.units]
            for shard in shards
        ]

    naive_queues = sleep_queues(
        plan(manifest, shards=SLOTS, by="block", balance="round_robin")
    )
    balanced_queues = sleep_queues(
        plan(manifest, shards=SLOTS, by="block", balance="cost")
    )
    naive_seconds, _ = _dispatch_seconds(naive_queues, steal=False)
    balanced_seconds, stolen = _dispatch_seconds(balanced_queues, steal=True)

    speedup = naive_seconds / balanced_seconds
    ideal = SIMULATED_TOTAL_SECONDS / SLOTS
    print(
        f"\nnaive round-robin {naive_seconds:.2f} s, cost-LPT + stealing "
        f"{balanced_seconds:.2f} s ({stolen} stolen), speedup {speedup:.2f}x "
        f"(ideal makespan {ideal:.2f} s)"
    )
    assert speedup >= 1.2
    # Stealing + LPT must land near the perfect-balance makespan.
    assert balanced_seconds <= ideal * 1.35


def test_stealing_rescues_a_straggler_queue():
    """An all-in-one-queue worst case: stealing must spread it out."""
    sleeps = [0.02] * 30
    alone, _ = _dispatch_seconds([list(sleeps), [], []], steal=False)
    spread, stolen = _dispatch_seconds([list(sleeps), [], []], steal=True)
    print(
        f"\nstraggler queue serial {alone:.2f} s, stolen across {SLOTS} slots "
        f"{spread:.2f} s ({stolen} stolen), speedup {alone / spread:.2f}x"
    )
    assert stolen > 0
    assert alone / spread >= 1.8  # three slots, modest thread overhead


def test_bench_dag_pipeline(benchmark, tmp_path):
    """Cached re-run of a campaign DAG: pure subsystem overhead.

    The first run computes and caches every stage; the benchmarked
    function replays the identical campaign, which must do *zero*
    solves — the measured time is content-key hashing, artifact-log
    lookups and the aggregate/render folds.  This is the DAG's overhead
    floor, gated against ``baseline.json``.
    """
    manifest = CampaignManifest(
        figures=("fig5",), seeds=(0, 1), repetitions=2, max_points=3
    )
    store = ResultStore(tmp_path / "store")
    first = run_pipeline(build_pipeline(manifest), store)
    assert first.report.computed["solve"] > 0

    def cached_rerun():
        run = run_pipeline(build_pipeline(manifest), store)
        assert run.report.computed["solve"] == 0
        assert run.report.hit_rate() == 1.0
        return run

    run = benchmark(cached_rerun)
    assert run.renders == first.renders
    store.close()
