"""Figure 9 — one-to-one comparison, m=100, n=100, f[i,u]=f[i], p=20..100.

Paper's conclusion: H4w is the closest heuristic to the optimal
one-to-one mapping (factor ~1.28 versus ~1.75 for H3 and ~1.84 for H2),
and all heuristics converge towards the optimum as p approaches m.
"""

from __future__ import annotations

from repro.experiments.runner import OTO_LABEL

from .conftest import run_figure_benchmark


def test_fig09_one_to_one_vs_optimal(benchmark, results_dir):
    result = run_figure_benchmark(benchmark, results_dir, "fig9", seed=9)
    assert OTO_LABEL in result.series
    report = result.normalization_report(OTO_LABEL)
    factors = {name: report.factor(name) for name in ("H2", "H3", "H4w")}
    # Every heuristic sits above the optimum.  Our OtO baseline is a true
    # bottleneck-assignment optimum, which is stronger than the reference the
    # paper appears to plot, so the allowed band is wider than the paper's
    # 1.28-1.84 aggregate factors (see EXPERIMENTS.md).
    for factor in factors.values():
        assert 1.0 <= factor < 4.0
    # At the low end of the type sweep the heuristics are close to OtO (the
    # regime where the paper calls H4w "very close to the optimal").
    low_p = min(result.series[OTO_LABEL].x_values)
    oto_mean = result.series[OTO_LABEL].point(low_p).mean
    best = min(result.series[name].point(low_p).mean for name in ("H2", "H3", "H4w"))
    assert best <= 2.0 * oto_mean
