#!/usr/bin/env python
"""Calibrate the per-heuristic batch-solve crossover depths.

For every registered heuristic with a lock-step batch kernel, times the
per-instance loop against ``solve_batch`` over a ladder of block depths
``R`` and finds the smallest depth where the batch path wins (and keeps
winning at every deeper rung — a single noisy win does not move the
threshold).  Both paths produce bit-for-bit identical mappings, so the
crossover is purely a performance knob: below it, array-op overhead
makes lock-step slower than the plain loop.

Usage::

    PYTHONPATH=src python scripts/tune_thresholds.py           # print table
    PYTHONPATH=src python scripts/tune_thresholds.py --write   # + update
        src/repro/heuristics/thresholds.json

The JSON file ships with the package and is read by
:func:`repro.heuristics.base.batch_solve_min_repetitions`; heuristics
missing from it (third-party registrations, new kernels) fall back to
the conservative default
:data:`repro.heuristics.base.BATCH_SOLVE_MIN_REPETITIONS`.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.backend import get_backend  # noqa: E402
from repro.generators.scenarios import ScenarioConfig, sample_instance  # noqa: E402
from repro.heuristics import (  # noqa: E402
    available_heuristics,
    get_heuristic,
    supports_batch,
)
from repro.heuristics.base import BATCH_SOLVE_MIN_REPETITIONS, solve_stack  # noqa: E402
from repro.simulation.rng import RandomStreamFactory  # noqa: E402

#: Depth ladder probed for the crossover, shallow to deep.
DEPTHS = (2, 3, 4, 6, 8, 12, 16, 24, 32)

#: Representative sweep point — mid-range paper dimensions; the crossover
#: shifts little with size because both paths scale the same way in n, m.
CALIBRATION_TASKS = 20
CALIBRATION_TYPES = 5
CALIBRATION_MACHINES = 10

THRESHOLDS_PATH = REPO_ROOT / "src" / "repro" / "heuristics" / "thresholds.json"


def _sample_instances(depth: int):
    scenario = ScenarioConfig(
        name="tune-thresholds",
        num_machines=CALIBRATION_MACHINES,
        num_types=CALIBRATION_TYPES,
        sweep="tasks",
        sweep_values=(CALIBRATION_TASKS,),
        repetitions=depth,
        heuristics=("H4w",),
    )
    streams = RandomStreamFactory(1234)
    return [
        sample_instance(scenario, CALIBRATION_TASKS, repetition, streams)
        for repetition in range(depth)
    ]


def _time_path(heuristic, instances, *, batch: bool, repeats: int) -> float:
    streams = RandomStreamFactory(99)

    def stream(repetition: int):
        return streams.stream("tune", repetition)

    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        solve_stack(heuristic, instances, stream, batch=batch)
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def calibrate(repeats: int) -> dict[str, int]:
    """Measured crossover depth per batch-capable heuristic."""
    instances_by_depth = {depth: _sample_instances(depth) for depth in DEPTHS}
    thresholds: dict[str, int] = {}
    for name in available_heuristics():
        heuristic = get_heuristic(name)
        if not supports_batch(heuristic):
            continue
        wins = {}
        print(f"{name}:")
        for depth in DEPTHS:
            instances = instances_by_depth[depth]
            loop = _time_path(heuristic, instances, batch=False, repeats=repeats)
            batch = _time_path(heuristic, instances, batch=True, repeats=repeats)
            wins[depth] = batch <= loop
            print(
                f"  R={depth:>3}  loop {loop * 1e3:8.3f} ms"
                f"  batch {batch * 1e3:8.3f} ms"
                f"  {'batch' if wins[depth] else 'loop'}"
            )
        # Smallest depth from which the batch path never loses again.
        chosen = None
        for i, depth in enumerate(DEPTHS):
            if all(wins[d] for d in DEPTHS[i:]):
                chosen = depth
                break
        if chosen is None:
            # Batch never clearly wins on this machine; keep the
            # conservative package default rather than disabling it.
            chosen = BATCH_SOLVE_MIN_REPETITIONS
        thresholds[name] = max(2, chosen)
        print(f"  -> threshold {thresholds[name]}")
    return thresholds


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats",
        type=int,
        default=9,
        help="timing repeats per (heuristic, depth, path); the median is used",
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help=f"write the calibrated table to {THRESHOLDS_PATH}",
    )
    args = parser.parse_args(argv)

    backend = get_backend()
    print(f"kernel backend: {backend.name}")
    thresholds = calibrate(args.repeats)
    payload = {
        "comment": (
            "Per-heuristic batch-solve crossover depths, calibrated by "
            "scripts/tune_thresholds.py; regenerate with --write after "
            "kernel changes."
        ),
        "backend": backend.name,
        "thresholds": thresholds,
    }
    print(json.dumps(payload, indent=2))
    if args.write:
        THRESHOLDS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {THRESHOLDS_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
