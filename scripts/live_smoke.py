#!/usr/bin/env python
"""CI smoke check of the live replanning subsystem, end to end.

Two phases over one seeded scenario (H4ls, n=12, p=3, m=6, a 60-unit
timeline with exponential failures/repairs and Poisson request probes):

**Phase 1 — in process**: runs the timeline through the warm replanner
and the ``warm=False`` cold re-solve reference and asserts:

* the two runs agree **bit for bit** on every event (mapping, period,
  tier, feasibility, availability);
* the timeline actually exercised the tier cascade (warm, cold and
  cache replans all > 0) and the request probes were observed;
* availability is integrated over the whole horizon (final clock ==
  duration).

**Phase 2 — over HTTP**: starts a real ``microrepro serve`` subprocess,
replays the same timeline through ``microrepro live --url ... --verify
--json`` (one session, one POST per event), and asserts:

* the CLI's verification passed (remote records == local warm run ==
  cold re-solve, availability equal *exactly*);
* the reported availability equals phase 1's bit for bit;
* ``/v1/stats`` accounts the session (created, closed, events, replan
  tiers, availability);
* the legacy unversioned routes still answer, flagged with a
  ``Deprecation: true`` header, and error responses carry the
  ``{"error": {"code", "message"}}`` envelope.

Exit code 0 on success; any assertion or timeout kills the server and
exits non-zero.  Runs from a source checkout::

    python scripts/live_smoke.py
"""

from __future__ import annotations

import json
import os
import queue
import re
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.exceptions import ExperimentError  # noqa: E402 - path bootstrap
from repro.live import (  # noqa: E402 - path bootstrap above
    LiveConfig,
    compare_reports,
    run_timeline,
)
from repro.service import ServiceClient  # noqa: E402 - path bootstrap

STARTUP_TIMEOUT = 30.0

#: The scenario both phases replay (small enough to finish in seconds,
#: long enough that every replan tier fires).
CONFIG = LiveConfig(
    tasks=12,
    types=3,
    machines=6,
    heuristic="H4ls",
    seed=0,
    duration=60.0,
    mtbf=25.0,
    mttr=8.0,
    arrival_rate=0.2,
)


def report(checks: list[tuple[bool, str]]) -> bool:
    ok = True
    for passed, label in checks:
        print(("PASS" if passed else "FAIL"), label)
        ok = ok and passed
    return ok


def start_server(*extra_args: str) -> tuple[subprocess.Popen, str]:
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *extra_args],
        cwd=REPO_ROOT,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    lines: queue.Queue[str] = queue.Queue()
    threading.Thread(
        target=lambda: [lines.put(line) for line in process.stdout],
        daemon=True,
    ).start()
    deadline = time.time() + STARTUP_TIMEOUT
    seen: list[str] = []
    while time.time() < deadline:
        if process.poll() is not None and lines.empty():
            raise RuntimeError(
                f"server exited early (rc={process.returncode}): {seen[-3:]!r}"
            )
        try:
            line = lines.get(timeout=0.2)
        except queue.Empty:
            continue
        seen.append(line)
        match = re.search(r"listening on (http://\S+)", line)
        if match:
            return process, match.group(1)
    raise RuntimeError(
        f"server did not announce a URL in {STARTUP_TIMEOUT}s: {seen[-3:]!r}"
    )


def stop_server(process: subprocess.Popen) -> None:
    process.terminate()
    try:
        process.wait(timeout=10)
    except subprocess.TimeoutExpired:
        process.kill()


def phase_in_process() -> tuple[bool, float]:
    """Phase 1: warm run vs cold re-solve reference, in process."""
    print("== phase 1: in-process warm vs cold re-solve ==")
    warm = run_timeline(CONFIG, warm=True)
    cold = run_timeline(CONFIG, warm=False)
    try:
        compare_reports(cold, warm)
    except ExperimentError as exc:
        print(f"FAIL warm/cold divergence: {exc}")
        return False, warm.availability
    print(
        f"{len(warm.records)} events bit-for-bit identical across warm and "
        f"cold runs (availability {warm.availability:.4f})"
    )
    counters = warm.counters
    last = warm.records[-1]
    ok = report(
        [
            (counters["warm"] > 0, "warm-tier replans exercised"),
            (counters["cold"] > 0, "cold-tier replans exercised"),
            (counters["cache"] > 0, "plan-cache replays exercised"),
            (
                counters["served"] + counters["missed"] > 0,
                "request probes observed",
            ),
            (
                last["time"] == CONFIG.duration,
                "availability integrated to the horizon",
            ),
            (0.0 <= warm.availability <= 1.0, "availability is a fraction"),
        ]
    )
    return ok, warm.availability


def phase_over_http(expected_availability: float) -> bool:
    """Phase 2: the same timeline through a real server's session API."""
    print("== phase 2: session API over HTTP ==")
    process, url = start_server("--session-ttl", "60")
    try:
        cli = subprocess.run(
            [
                sys.executable, "-m", "repro", "live",
                "--url", url,
                "--tasks", str(CONFIG.tasks),
                "--types", str(CONFIG.types),
                "--machines", str(CONFIG.machines),
                "--heuristic", CONFIG.heuristic,
                "--seed", str(CONFIG.seed),
                "--duration", str(CONFIG.duration),
                "--mtbf", str(CONFIG.mtbf),
                "--mttr", str(CONFIG.mttr),
                "--arrival-rate", str(CONFIG.arrival_rate),
                "--verify", "--json",
            ],
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
            capture_output=True,
            text=True,
            timeout=120,
        )
        if cli.returncode != 0:
            print(f"FAIL: microrepro live exited {cli.returncode}: {cli.stderr}")
            return False
        remote = json.loads(cli.stdout)

        with ServiceClient(url) as client:
            stats = client.stats()["sessions"]
            # Legacy alias: same answer, Deprecation header set.
            with urllib.request.urlopen(url + "/healthz", timeout=30) as response:
                deprecation = response.headers.get("Deprecation")
            # Error envelope on a 404.
            try:
                client.get("/v1/session/never-created")
                envelope_ok = False
            except ExperimentError as exc:
                envelope_ok = "never-created" in str(exc)

        print("remote availability:", remote["availability"])
        print("session stats:", stats)
        return report(
            [
                (remote["verified"] is True, "CLI verified remote == warm == cold"),
                (remote["mode"] == "remote", "timeline ran through the session API"),
                (
                    remote["availability"] == expected_availability,
                    "availability identical to the in-process run",
                ),
                (stats["created"] >= 1 and stats["closed"] >= 1, "session accounted"),
                (
                    stats["events"] == remote["events"],
                    "every event accounted in /v1/stats",
                ),
                (
                    stats["replans"]["warm"] > 0 and stats["replans"]["cold"] > 0,
                    "replan tiers surfaced in /v1/stats",
                ),
                (deprecation == "true", "legacy alias flagged with Deprecation"),
                (envelope_ok, "errors carry the structured envelope"),
            ]
        )
    finally:
        stop_server(process)


def main() -> int:
    ok, availability = phase_in_process()
    ok = phase_over_http(availability) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
