#!/usr/bin/env python
"""CI smoke check of the solve service, end to end over real HTTP.

Two phases, each against a fresh ``microrepro serve`` subprocess on a
free port:

**Phase 1 — mixed traffic through the worker pool** (``--workers 2``):
fires a mix of concurrent solve requests — several signatures, several
heuristics, deliberate duplicates — through the stdlib client, and
asserts:

* every response is **bit-for-bit identical** to the direct (unbatched,
  uncached) reference solve of the same request;
* the duplicates produced cache hits (``/stats`` cache counter > 0);
* the service actually grouped compatible requests (at least one
  multi-request flush);
* ``/stats`` accounting adds up (solved == requests fired, errors == 0)
  and reports latency percentiles (p50/p95/p99 > 0).

**Phase 2 — overload** (``--max-pending 2`` and a long window): fires a
burst of distinct concurrent requests, and asserts:

* at least one request was load-shed with HTTP 429 carrying a
  ``Retry-After`` hint (surfaced client-side as
  :class:`~repro.exceptions.ServiceOverloadedError`);
* every shed request, retried, eventually got the bit-for-bit correct
  response;
* shedding is accounted as ``shed``, never as ``errors``.

**Phase 3 — telemetry** (``--trace <tmpdir>``): one traced round trip
through a 2-process worker pool, and asserts:

* a caller-supplied ``X-Request-Id`` is echoed back verbatim, and a
  request without one gets a server-generated id;
* ``GET /v1/metrics`` returns valid Prometheus text (``# TYPE`` lines,
  well-formed samples) covering the service/batcher/cache/session
  series, and ``/v1/stats`` carries the same registry snapshot;
* the span log is non-empty and links the HTTP request to its batcher
  group and to the pool worker's solve under one trace id — across the
  process boundary.

Exit code 0 on success; any assertion or timeout kills the server and
exits non-zero.  Runs from a source checkout::

    python scripts/service_smoke.py
"""

from __future__ import annotations

import json
import os
import queue
import re
import subprocess
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.exceptions import ServiceOverloadedError  # noqa: E402 - path bootstrap
from repro.service import (  # noqa: E402 - path bootstrap above
    ServiceClient,
    direct_response,
    normalize_request,
    service_stats,
    solve_remote,
)

STARTUP_TIMEOUT = 30.0
#: How long a shed request keeps retrying before the smoke gives up.
RETRY_TIMEOUT = 60.0


def request_mix() -> list[dict]:
    """~20 requests: 3 signatures, mixed heuristics, with duplicates."""
    mix = []
    # 8 compatible H4w requests (one signature, distinct seeds).
    for seed in range(8):
        mix.append(
            {
                "heuristic": "H4w",
                "application": {"tasks": 20, "types": 3},
                "platform": {"machines": 6},
                "options": {"seed": seed},
            }
        )
    # 5 compatible H2 requests on a different platform.
    for seed in range(5):
        mix.append(
            {
                "heuristic": "H2",
                "application": {"tasks": 15, "types": 2},
                "platform": {"machines": 4},
                "options": {"seed": seed},
            }
        )
    # 3 randomized-heuristic requests (per-instance fallback path).
    for seed in range(3):
        mix.append(
            {
                "heuristic": "H1",
                "application": {"tasks": 10, "types": 2},
                "platform": {"machines": 5},
                "options": {"seed": seed},
            }
        )
    return mix


def burst_requests() -> list[dict]:
    """12 distinct same-signature requests for the overload phase."""
    return [
        {
            "heuristic": "H4w",
            "application": {"tasks": 25, "types": 3},
            "platform": {"machines": 6},
            "options": {"seed": seed},
        }
        for seed in range(12)
    ]


def start_server(*extra_args: str) -> tuple[subprocess.Popen, str]:
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *extra_args],
        cwd=REPO_ROOT,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    # readline() on the pipe blocks, which would let a wedged server
    # hang the job past STARTUP_TIMEOUT — read on a daemon thread and
    # poll its queue with a real deadline instead.
    lines: queue.Queue[str] = queue.Queue()
    threading.Thread(
        target=lambda: [lines.put(line) for line in process.stdout],
        daemon=True,
    ).start()
    deadline = time.time() + STARTUP_TIMEOUT
    seen: list[str] = []
    while time.time() < deadline:
        if process.poll() is not None and lines.empty():
            raise RuntimeError(
                f"server exited early (rc={process.returncode}): {seen[-3:]!r}"
            )
        try:
            line = lines.get(timeout=0.2)
        except queue.Empty:
            continue
        seen.append(line)
        match = re.search(r"listening on (http://\S+)", line)
        if match:
            return process, match.group(1)
    raise RuntimeError(
        f"server did not announce a URL in {STARTUP_TIMEOUT}s: {seen[-3:]!r}"
    )


def stop_server(process: subprocess.Popen) -> None:
    process.terminate()
    try:
        process.wait(timeout=10)
    except subprocess.TimeoutExpired:
        process.kill()


def check_equivalence(requests: list[dict], responses: list[dict]) -> int:
    """Count response fields diverging from the direct reference solves."""
    failures = 0
    for payload, response in zip(requests, responses):
        reference = direct_response(normalize_request(payload))
        for field in ("assignment", "period", "throughput", "key"):
            if response[field] != reference[field]:
                failures += 1
                print(
                    f"MISMATCH {payload}: {field} service={response[field]!r} "
                    f"direct={reference[field]!r}"
                )
    return failures


def report(checks: list[tuple[bool, str]]) -> bool:
    ok = True
    for passed, label in checks:
        print(("PASS" if passed else "FAIL"), label)
        ok = ok and passed
    return ok


def phase_mixed_traffic() -> bool:
    """Phase 1: the request mix through a 2-process worker pool."""
    print("== phase 1: mixed traffic, --workers 2 ==")
    # A generous batching window: the grouping assertion below must hold
    # even when a loaded CI runner staggers the concurrent wave's
    # arrivals by tens of milliseconds.
    process, url = start_server("--window-ms", "100", "--workers", "2")
    try:
        unique = request_mix()
        # Wave 1: fire every unique request concurrently so the batching
        # window actually has company to group.
        with ThreadPoolExecutor(max_workers=len(unique)) as pool:
            responses = list(
                pool.map(lambda payload: solve_remote(url, payload), unique)
            )
        # Wave 2: re-fire a few duplicates after the first wave settled —
        # these must be answered from the solve cache.
        duplicates = [dict(unique[0]), dict(unique[3]), dict(unique[8]), dict(unique[13])]
        duplicate_responses = [solve_remote(url, payload) for payload in duplicates]
        requests = unique + duplicates
        responses = responses + duplicate_responses

        not_cached = [
            payload
            for payload, response in zip(duplicates, duplicate_responses)
            if not response.get("cached")
        ]
        if not_cached:
            print(f"FAIL: duplicate request(s) missed the cache: {not_cached}")
            return False

        failures = check_equivalence(requests, responses)
        if failures:
            print(f"FAIL: {failures} response field(s) diverged from direct solves")
            return False
        print(f"{len(responses)} service responses bit-for-bit match direct solves")

        stats = service_stats(url)
        print("stats:", stats)
        service, batcher, cache = stats["service"], stats["batcher"], stats["cache"]
        return report(
            [
                (service["errors"] == 0, "no request errors"),
                (service["solved"] == len(requests), "every request accounted for"),
                (cache["hits"] >= len(duplicates), "duplicates hit the cache"),
                (batcher["max_group"] > 1, "compatible requests were grouped"),
                (stats["workers"] == 2, "worker pool attached"),
                (
                    all(
                        service[key] > 0
                        for key in (
                            "latency_p50_ms",
                            "latency_p95_ms",
                            "latency_p99_ms",
                        )
                    ),
                    "latency percentiles reported",
                ),
            ]
        )
    finally:
        stop_server(process)


def phase_overload() -> bool:
    """Phase 2: shed a concurrent burst, retry it to completion."""
    print("== phase 2: overload, --max-pending 2 ==")
    # A long window holds each admitted group open, so the burst's
    # arrivals reliably find the queue full and get shed.
    process, url = start_server(
        "--window-ms", "300", "--workers", "2", "--max-pending", "2"
    )
    try:
        requests = burst_requests()
        shed_hints: list[float] = []

        def ask(payload: dict) -> dict:
            deadline = time.time() + RETRY_TIMEOUT
            while True:
                try:
                    return solve_remote(url, payload)
                except ServiceOverloadedError as exc:
                    if exc.retry_after_seconds is None or exc.retry_after_seconds < 1:
                        raise RuntimeError(
                            f"429 without a usable Retry-After hint: "
                            f"{exc.retry_after_seconds!r}"
                        )
                    shed_hints.append(exc.retry_after_seconds)
                    if time.time() > deadline:
                        raise RuntimeError(
                            f"request still shed after {RETRY_TIMEOUT}s: {payload}"
                        )
                    # Back off far less than the advertised hint so the
                    # phase stays fast; correctness only needs the hint
                    # to have been delivered.
                    time.sleep(0.2)

        with ThreadPoolExecutor(max_workers=len(requests)) as pool:
            responses = list(pool.map(ask, requests))

        failures = check_equivalence(requests, responses)
        if failures:
            print(f"FAIL: {failures} shed-then-retried field(s) diverged")
            return False
        print(
            f"{len(responses)} burst responses bit-for-bit match direct solves "
            f"({len(shed_hints)} shed-and-retried)"
        )

        stats = service_stats(url)
        print("stats:", stats)
        service = stats["service"]
        return report(
            [
                (len(shed_hints) >= 1, "burst actually overloaded the queue"),
                (service["shed"] >= 1, "shedding surfaced in /stats"),
                (stats["batcher"]["shed"] >= 1, "batcher admission counted it"),
                (service["errors"] == 0, "shed requests are not errors"),
                (service["solved"] == len(requests), "every request eventually solved"),
            ]
        )
    finally:
        stop_server(process)


#: Series every scrape must expose once a solve went through — one per
#: instrumented subsystem (service, batcher, cache, sessions, backend).
REQUIRED_SERIES = (
    "repro_service_requests_total",
    "repro_service_latency_seconds_bucket",
    "repro_batcher_requests_total",
    "repro_cache_misses_total",
    "repro_sessions_lifecycle_total",
    "repro_backend_info",
)

#: A well-formed Prometheus text sample: name, optional labels, value.
SAMPLE_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+infa]+$")


def check_prometheus_text(text: str) -> list[tuple[bool, str]]:
    """Format checks over one ``/v1/metrics`` scrape."""
    lines = text.splitlines()
    samples = [line for line in lines if line and not line.startswith("#")]
    typed = {
        line.split()[2]
        for line in lines
        if line.startswith("# TYPE ") and len(line.split()) == 4
    }
    malformed = [line for line in samples if not SAMPLE_RE.match(line)]
    if malformed:
        print(f"malformed sample lines: {malformed[:5]}")
    missing = [
        series
        for series in REQUIRED_SERIES
        if not any(line.startswith(series) for line in samples)
    ]
    if missing:
        print(f"missing series: {missing}")
    return [
        (bool(samples), "scrape carries sample lines"),
        (not malformed, "every sample line is well-formed"),
        (bool(typed), "scrape carries # TYPE headers"),
        (not missing, "service/batcher/cache/session/backend series present"),
    ]


def load_spans(trace_dir: str) -> list[dict]:
    """Every span record in the trace log, in append order."""
    trace_file = Path(trace_dir) / "trace.jsonl"
    if not trace_file.exists():
        return []
    spans = []
    for line in trace_file.read_text(encoding="utf-8").splitlines():
        if not line:
            continue
        record = json.loads(line)
        if record.get("kind") == "span":
            spans.append(record["data"])
    return spans


def phase_telemetry() -> bool:
    """Phase 3: request ids, /v1/metrics scrape, cross-process span tree."""
    print("== phase 3: telemetry, --trace ==")
    trace_dir = tempfile.mkdtemp(prefix="smoke-trace-")
    process, url = start_server(
        "--window-ms", "50", "--workers", "2", "--trace", trace_dir
    )
    try:
        client = ServiceClient(url)
        payload = {
            "heuristic": "H4w",
            "application": {"tasks": 20, "types": 3},
            "platform": {"machines": 6},
            "options": {"seed": 0},
        }
        response = client.solve(payload, request_id="smoke-trace-1")
        echoed = client.last_request_id
        reference = direct_response(normalize_request(payload))
        if response["assignment"] != reference["assignment"]:
            print("FAIL: traced response diverged from the direct solve")
            return False

        client.solve({**payload, "options": {"seed": 1}})
        generated = client.last_request_id

        metrics_text = client.metrics()
        stats = client.stats()
    finally:
        stop_server(process)

    spans = load_spans(trace_dir)
    by_id = {record["span_id"]: record for record in spans}
    http_spans = [
        record
        for record in spans
        if record["name"] == "http.request"
        and record.get("request_id") == "smoke-trace-1"
    ]
    groups = [record for record in spans if record["name"] == "batcher.group"]
    worker_solves = [record for record in spans if record["name"] == "pool.worker_solve"]
    trace_ids = {record["trace_id"] for record in http_spans}
    linked_groups = [
        record for record in groups if by_id.get(record.get("parent_id", ""), {}).get("name") == "http.request"
    ]
    linked_solves = [
        record for record in worker_solves if record["trace_id"] in {g["trace_id"] for g in groups}
    ]

    checks = [
        (echoed == "smoke-trace-1", "caller's X-Request-Id echoed back"),
        (bool(generated) and generated != "smoke-trace-1", "request id generated when absent"),
        ("metrics" in stats, "/v1/stats carries the registry snapshot"),
        (bool(spans), "trace log is non-empty"),
        (len(http_spans) == 1 and len(trace_ids) == 1, "traced request logged one http.request span"),
        (bool(linked_groups), "batcher group parented on the http request"),
        (bool(linked_solves), "pool worker solve joined the trace across the process boundary"),
    ]
    checks.extend(check_prometheus_text(metrics_text))
    print(
        f"{len(spans)} spans in {trace_dir} "
        f"({len(groups)} groups, {len(worker_solves)} pool worker solves)"
    )
    return report(checks)


def main() -> int:
    ok = phase_mixed_traffic()
    ok = phase_overload() and ok
    ok = phase_telemetry() and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
