#!/usr/bin/env python
"""CI smoke check of the solve service, end to end over real HTTP.

Starts ``microrepro serve`` as a subprocess on a free port, fires a mix
of concurrent solve requests — several signatures, several heuristics,
deliberate duplicates — through the stdlib client, and asserts:

* every response is **bit-for-bit identical** to the direct (unbatched,
  uncached) reference solve of the same request;
* the duplicates produced cache hits (``/stats`` cache counter > 0);
* the service actually grouped compatible requests (at least one
  multi-request flush);
* ``/stats`` accounting adds up (solved == requests fired, errors == 0).

Exit code 0 on success; any assertion or timeout kills the server and
exits non-zero.  Runs from a source checkout::

    python scripts/service_smoke.py
"""

from __future__ import annotations

import os
import queue
import re
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service import (  # noqa: E402 - path bootstrap above
    direct_response,
    normalize_request,
    service_stats,
    solve_remote,
)

STARTUP_TIMEOUT = 30.0


def request_mix() -> list[dict]:
    """~20 requests: 3 signatures, mixed heuristics, with duplicates."""
    mix = []
    # 8 compatible H4w requests (one signature, distinct seeds).
    for seed in range(8):
        mix.append(
            {
                "heuristic": "H4w",
                "application": {"tasks": 20, "types": 3},
                "platform": {"machines": 6},
                "options": {"seed": seed},
            }
        )
    # 5 compatible H2 requests on a different platform.
    for seed in range(5):
        mix.append(
            {
                "heuristic": "H2",
                "application": {"tasks": 15, "types": 2},
                "platform": {"machines": 4},
                "options": {"seed": seed},
            }
        )
    # 3 randomized-heuristic requests (per-instance fallback path).
    for seed in range(3):
        mix.append(
            {
                "heuristic": "H1",
                "application": {"tasks": 10, "types": 2},
                "platform": {"machines": 5},
                "options": {"seed": seed},
            }
        )
    return mix


def start_server() -> tuple[subprocess.Popen, str]:
    process = subprocess.Popen(
        # A generous batching window: the grouping assertion below must
        # hold even when a loaded CI runner staggers the concurrent
        # wave's arrivals by tens of milliseconds.
        [sys.executable, "-m", "repro", "serve", "--port", "0", "--window-ms", "100"],
        cwd=REPO_ROOT,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    # readline() on the pipe blocks, which would let a wedged server
    # hang the job past STARTUP_TIMEOUT — read on a daemon thread and
    # poll its queue with a real deadline instead.
    lines: queue.Queue[str] = queue.Queue()
    threading.Thread(
        target=lambda: [lines.put(line) for line in process.stdout],
        daemon=True,
    ).start()
    deadline = time.time() + STARTUP_TIMEOUT
    seen: list[str] = []
    while time.time() < deadline:
        if process.poll() is not None and lines.empty():
            raise RuntimeError(
                f"server exited early (rc={process.returncode}): {seen[-3:]!r}"
            )
        try:
            line = lines.get(timeout=0.2)
        except queue.Empty:
            continue
        seen.append(line)
        match = re.search(r"listening on (http://\S+)", line)
        if match:
            return process, match.group(1)
    raise RuntimeError(
        f"server did not announce a URL in {STARTUP_TIMEOUT}s: {seen[-3:]!r}"
    )


def main() -> int:
    process, url = start_server()
    try:
        unique = request_mix()
        # Wave 1: fire every unique request concurrently so the batching
        # window actually has company to group.
        with ThreadPoolExecutor(max_workers=len(unique)) as pool:
            responses = list(
                pool.map(lambda payload: solve_remote(url, payload), unique)
            )
        # Wave 2: re-fire a few duplicates after the first wave settled —
        # these must be answered from the solve cache.
        duplicates = [dict(unique[0]), dict(unique[3]), dict(unique[8]), dict(unique[13])]
        duplicate_responses = [solve_remote(url, payload) for payload in duplicates]
        requests = unique + duplicates
        responses = responses + duplicate_responses

        not_cached = [
            payload
            for payload, response in zip(duplicates, duplicate_responses)
            if not response.get("cached")
        ]
        if not_cached:
            print(f"FAIL: duplicate request(s) missed the cache: {not_cached}")
            return 1

        failures = 0
        for payload, response in zip(requests, responses):
            reference = direct_response(normalize_request(payload))
            for field in ("assignment", "period", "throughput", "key"):
                if response[field] != reference[field]:
                    failures += 1
                    print(
                        f"MISMATCH {payload}: {field} service={response[field]!r} "
                        f"direct={reference[field]!r}"
                    )
        if failures:
            print(f"FAIL: {failures} response field(s) diverged from direct solves")
            return 1
        print(f"{len(responses)} service responses bit-for-bit match direct solves")

        stats = service_stats(url)
        print("stats:", stats)
        service, batcher, cache = stats["service"], stats["batcher"], stats["cache"]
        checks = [
            (service["errors"] == 0, "no request errors"),
            (service["solved"] == len(requests), "every request accounted for"),
            (cache["hits"] >= len(duplicates), "duplicates hit the cache"),
            (batcher["max_group"] > 1, "compatible requests were grouped"),
        ]
        ok = True
        for passed, label in checks:
            print(("PASS" if passed else "FAIL"), label)
            ok = ok and passed
        return 0 if ok else 1
    finally:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()


if __name__ == "__main__":
    sys.exit(main())
