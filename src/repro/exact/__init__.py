"""Exact solvers: optimal one-to-one mappings, the MIP, and cross-checks.

========================================  =====================================
Solver                                    Use
========================================  =====================================
:func:`optimal_one_to_one`                Theorem-1 / Figure-9 polynomial cases
:func:`solve_specialized_milp`            Section-6.1 MIP (HiGHS backend)
:func:`solve_specialized_branch_and_bound`  pure-Python exact cross-check
:func:`bruteforce_optimal`                exhaustive oracle for tiny instances
========================================  =====================================
"""

from .branch_and_bound import BranchAndBoundResult, solve_specialized_branch_and_bound
from .bruteforce import BruteForceResult, bruteforce_optimal
from .hungarian import assignment_cost, bottleneck_assignment, min_cost_assignment
from .milp import MilpModel, MilpResult, build_milp_model, solve_specialized_milp
from .one_to_one import (
    OneToOneResult,
    optimal_one_to_one,
    optimal_one_to_one_homogeneous,
    optimal_one_to_one_task_dependent,
)

__all__ = [
    "BranchAndBoundResult",
    "solve_specialized_branch_and_bound",
    "BruteForceResult",
    "bruteforce_optimal",
    "assignment_cost",
    "bottleneck_assignment",
    "min_cost_assignment",
    "MilpModel",
    "MilpResult",
    "build_milp_model",
    "solve_specialized_milp",
    "OneToOneResult",
    "optimal_one_to_one",
    "optimal_one_to_one_homogeneous",
    "optimal_one_to_one_task_dependent",
]
