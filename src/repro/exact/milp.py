"""Mixed-integer programming formulation of the specialized mapping problem.

This is the exact model of Section 6.1 of the paper:

Variables
    ``a[i, u]`` (binary)   task ``Ti`` is assigned to machine ``Mu``;
    ``t[u, j]`` (binary)   machine ``Mu`` is specialized to type ``j``;
    ``x[i]``    (rational) expected products task ``Ti`` processes per
    finished product;
    ``y[i, u]`` (rational) linearisation of ``a[i, u] * x[i]``;
    ``K``       (rational) upper bound on every machine period.

Constraints (numbering follows the paper)
    (3)  every task is assigned to exactly one machine;
    (4)  every machine is dedicated to at most one type;
    (5)  a task may only go to a machine specialized to its type;
    (6)  big-M propagation of the expected product counts along the chain;
    (7)  every machine period is at most ``K``;
    (8)  the three big-M constraints defining ``y[i, u] = a[i, u] * x[i]``.

Objective: minimise ``K``.

The paper solves the model with CPLEX; here we build exactly the same
model and hand it to ``scipy.optimize.milp`` (HiGHS branch-and-cut), which
is the documented substitution in DESIGN.md.  The model construction is
separated from the solve so that tests can inspect matrices, and so that
the from-scratch :mod:`repro.exact.branch_and_bound` solver can be used to
cross-check optima.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
from scipy.optimize import Bounds, LinearConstraint, milp

from ..core.instance import ProblemInstance
from ..core.mapping import Mapping, MappingRule
from ..core.period import MappingEvaluation, evaluate
from ..exceptions import InfeasibleProblemError, SolverError

__all__ = ["MilpModel", "MilpResult", "build_milp_model", "solve_specialized_milp"]


@dataclass(frozen=True, slots=True)
class MilpModel:
    """The assembled MIP, ready to be handed to a solver.

    Attributes
    ----------
    num_tasks, num_types, num_machines:
        Instance dimensions ``n``, ``p``, ``m``.
    c:
        Objective coefficient vector (minimisation).
    integrality:
        Per-variable integrality flags (1 = integer, 0 = continuous) as
        expected by ``scipy.optimize.milp``.
    lower, upper:
        Variable bounds.
    constraints:
        List of ``scipy.optimize.LinearConstraint`` objects.
    a_offset, t_offset, x_offset, y_offset, k_offset:
        Index of the first variable of each block in the flat variable
        vector (``a`` is laid out row-major ``i * m + u``, ``t`` as
        ``u * p + j``, ``y`` as ``i * m + u``).
    max_x:
        The big-M vector ``MAXx_i``.
    """

    num_tasks: int
    num_types: int
    num_machines: int
    c: np.ndarray
    integrality: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    constraints: list
    a_offset: int
    t_offset: int
    x_offset: int
    y_offset: int
    k_offset: int
    max_x: np.ndarray

    @property
    def num_variables(self) -> int:
        """Total number of decision variables."""
        return int(self.c.size)

    @property
    def num_constraint_rows(self) -> int:
        """Total number of scalar constraint rows."""
        return int(sum(constraint.A.shape[0] for constraint in self.constraints))

    def a_index(self, task: int, machine: int) -> int:
        """Flat index of ``a[task, machine]``."""
        return self.a_offset + task * self.num_machines + machine

    def t_index(self, machine: int, type_index: int) -> int:
        """Flat index of ``t[machine, type_index]``."""
        return self.t_offset + machine * self.num_types + type_index

    def x_index(self, task: int) -> int:
        """Flat index of ``x[task]``."""
        return self.x_offset + task

    def y_index(self, task: int, machine: int) -> int:
        """Flat index of ``y[task, machine]``."""
        return self.y_offset + task * self.num_machines + machine


@dataclass(frozen=True, slots=True)
class MilpResult:
    """Outcome of a MIP solve.

    Attributes
    ----------
    status:
        ``"optimal"`` or ``"infeasible"`` / ``"failed"`` (with message).
    mapping:
        The optimal specialized mapping (``None`` unless optimal).
    evaluation:
        Analytic evaluation of the mapping (``None`` unless optimal).
    objective:
        The solver's optimal ``K`` (period upper bound).
    solve_time:
        Wall-clock seconds spent in the solver.
    message:
        Backend message.
    """

    status: str
    mapping: Mapping | None
    evaluation: MappingEvaluation | None
    objective: float
    solve_time: float
    message: str = ""

    @property
    def period(self) -> float:
        """Analytic period of the returned mapping (``inf`` when absent)."""
        return self.evaluation.period if self.evaluation is not None else float("inf")

    @property
    def is_optimal(self) -> bool:
        """True when the solver proved optimality."""
        return self.status == "optimal"


def _max_x_bounds(instance: ProblemInstance) -> np.ndarray:
    """The big-M vector ``MAXx_i`` of the paper.

    ``MAXx_i`` is the expected product count of task ``Ti`` when every task
    on the path from ``Ti`` to the sink is charged its *worst* failure rate
    over machines.
    """
    app = instance.application
    worst = instance.failures.worst_case_attempts()
    max_x = np.ones(instance.num_tasks)
    for task in app.reverse_topological_order():
        succ = app.successor(task)
        downstream = 1.0 if succ is None else max_x[succ]
        max_x[task] = downstream * worst[task]
    return max_x


def build_milp_model(instance: ProblemInstance) -> MilpModel:
    """Assemble the Section-6.1 MIP for an instance.

    Raises
    ------
    InfeasibleProblemError
        If ``m < p`` (no specialized mapping exists).
    """
    if not instance.supports_specialized():
        raise InfeasibleProblemError(
            f"specialized mappings need m >= p; got m={instance.num_machines}, "
            f"p={instance.num_types}"
        )
    n, p, m = instance.num_tasks, instance.num_types, instance.num_machines
    w = instance.processing_times
    f = instance.failure_rates
    F = 1.0 / (1.0 - f)
    app = instance.application
    max_x = _max_x_bounds(instance)

    a_offset = 0
    t_offset = a_offset + n * m
    x_offset = t_offset + m * p
    y_offset = x_offset + n
    k_offset = y_offset + n * m
    num_vars = k_offset + 1

    c = np.zeros(num_vars)
    c[k_offset] = 1.0  # minimise K

    integrality = np.zeros(num_vars)
    integrality[a_offset : a_offset + n * m] = 1
    integrality[t_offset : t_offset + m * p] = 1

    lower = np.zeros(num_vars)
    upper = np.full(num_vars, np.inf)
    upper[a_offset : a_offset + n * m] = 1.0
    upper[t_offset : t_offset + m * p] = 1.0
    # x_i in [1, MAXx_i]; y_iu in [0, MAXx_i]; K >= 0 unbounded above.
    lower[x_offset : x_offset + n] = 1.0
    upper[x_offset : x_offset + n] = max_x
    for i in range(n):
        upper[y_offset + i * m : y_offset + (i + 1) * m] = max_x[i]

    def a_idx(i: int, u: int) -> int:
        return a_offset + i * m + u

    def t_idx(u: int, j: int) -> int:
        return t_offset + u * p + j

    def y_idx(i: int, u: int) -> int:
        return y_offset + i * m + u

    constraints: list[LinearConstraint] = []
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    lo: list[float] = []
    hi: list[float] = []
    row = 0

    def add_entry(r: int, col: int, val: float) -> None:
        rows.append(r)
        cols.append(col)
        vals.append(val)

    # (3) sum_u a[i, u] = 1
    for i in range(n):
        for u in range(m):
            add_entry(row, a_idx(i, u), 1.0)
        lo.append(1.0)
        hi.append(1.0)
        row += 1

    # (4) sum_j t[u, j] <= 1
    for u in range(m):
        for j in range(p):
            add_entry(row, t_idx(u, j), 1.0)
        lo.append(-np.inf)
        hi.append(1.0)
        row += 1

    # (5) a[i, u] <= t[u, t(i)]
    for i in range(n):
        ti = instance.type_of(i)
        for u in range(m):
            add_entry(row, a_idx(i, u), 1.0)
            add_entry(row, t_idx(u, ti), -1.0)
            lo.append(-np.inf)
            hi.append(0.0)
            row += 1

    # (6) x_i >= F[i, u] * x_succ(i) - (1 - a[i, u]) * MAXx_i
    #     rearranged:  -x_i + F*x_succ + MAXx_i*a_iu <= MAXx_i
    #     (with x_succ = 1 folded into the bound for sink tasks)
    for i in range(n):
        succ = app.successor(i)
        for u in range(m):
            add_entry(row, x_offset + i, -1.0)
            add_entry(row, a_idx(i, u), max_x[i])
            if succ is None:
                bound = max_x[i] - F[i, u]
            else:
                add_entry(row, x_offset + succ, F[i, u])
                bound = max_x[i]
            lo.append(-np.inf)
            hi.append(float(bound))
            row += 1

    # (7) sum_i y[i, u] * w[i, u] - K <= 0
    for u in range(m):
        for i in range(n):
            add_entry(row, y_idx(i, u), float(w[i, u]))
        add_entry(row, k_offset, -1.0)
        lo.append(-np.inf)
        hi.append(0.0)
        row += 1

    # (8a) y_iu - MAXx_i * a_iu <= 0
    # (8b) y_iu - x_i <= 0
    # (8c) x_i - y_iu + MAXx_i * a_iu <= MAXx_i
    for i in range(n):
        for u in range(m):
            add_entry(row, y_idx(i, u), 1.0)
            add_entry(row, a_idx(i, u), -float(max_x[i]))
            lo.append(-np.inf)
            hi.append(0.0)
            row += 1

            add_entry(row, y_idx(i, u), 1.0)
            add_entry(row, x_offset + i, -1.0)
            lo.append(-np.inf)
            hi.append(0.0)
            row += 1

            add_entry(row, x_offset + i, 1.0)
            add_entry(row, y_idx(i, u), -1.0)
            add_entry(row, a_idx(i, u), float(max_x[i]))
            lo.append(-np.inf)
            hi.append(float(max_x[i]))
            row += 1

    matrix = sp.csr_matrix(
        (np.asarray(vals), (np.asarray(rows), np.asarray(cols))), shape=(row, num_vars)
    )
    constraints.append(LinearConstraint(matrix, np.asarray(lo), np.asarray(hi)))

    return MilpModel(
        num_tasks=n,
        num_types=p,
        num_machines=m,
        c=c,
        integrality=integrality,
        lower=lower,
        upper=upper,
        constraints=constraints,
        a_offset=a_offset,
        t_offset=t_offset,
        x_offset=x_offset,
        y_offset=y_offset,
        k_offset=k_offset,
        max_x=max_x,
    )


def solve_specialized_milp(
    instance: ProblemInstance,
    *,
    time_limit: float | None = 60.0,
    mip_rel_gap: float = 1e-6,
) -> MilpResult:
    """Solve the specialized-mapping MIP to optimality with HiGHS.

    Parameters
    ----------
    time_limit:
        Wall-clock limit in seconds handed to the solver (``None`` =
        unlimited).  The paper reports that CPLEX stops finding solutions
        beyond ~15 tasks on 9 machines; HiGHS behaves similarly, hence the
        default cap.
    mip_rel_gap:
        Relative optimality gap tolerance.

    Returns
    -------
    MilpResult
        With ``status="optimal"`` and the mapping on success; with
        ``status`` set to the failure kind otherwise (never raises for
        solver-side failures so that experiment sweeps can continue).
    """
    model = build_milp_model(instance)
    options: dict = {"mip_rel_gap": mip_rel_gap}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)

    start = time.perf_counter()
    result = milp(
        c=model.c,
        constraints=model.constraints,
        integrality=model.integrality,
        bounds=Bounds(model.lower, model.upper),
        options=options,
    )
    elapsed = time.perf_counter() - start

    if not result.success or result.x is None:
        status = "infeasible" if result.status == 2 else "failed"
        return MilpResult(
            status=status,
            mapping=None,
            evaluation=None,
            objective=float("inf"),
            solve_time=elapsed,
            message=str(result.message),
        )

    solution = np.asarray(result.x)
    a_block = solution[model.a_offset : model.a_offset + model.num_tasks * model.num_machines]
    a_matrix = a_block.reshape(model.num_tasks, model.num_machines)
    assignment = np.argmax(a_matrix, axis=1)
    # Defensive check: each row of a must select exactly one machine.
    row_sums = a_matrix.sum(axis=1)
    if np.any(np.abs(row_sums - 1.0) > 1e-4):
        raise SolverError("MILP returned a fractional assignment matrix")

    mapping = Mapping(assignment, instance.num_machines)
    mapping.validate(instance, MappingRule.SPECIALIZED)
    return MilpResult(
        status="optimal",
        mapping=mapping,
        evaluation=evaluate(instance, mapping),
        objective=float(result.fun),
        solve_time=elapsed,
        message=str(result.message),
    )
