"""Optimal one-to-one mappings (Section 5.1 / Theorem 1 and Figure 9).

Two polynomial cases are implemented:

1. **Homogeneous machines, linear chain** (Theorem 1): with ``w[i, u] = w``
   the period is ``w * prod_j F[j, a(j)]`` (the bottleneck is the first
   task), so the optimum minimises ``sum_j -log(1 - f[j, a(j)])`` — a
   minimum-weight bipartite matching.

2. **Task-dependent failures** (``f[i, u] = f[i]``, the setting of
   Figure 9 and of the earlier paper [1]): the expected product counts
   ``x_i`` do not depend on the mapping, so the period of a one-to-one
   mapping is ``max_i x_i * w[i, a(i)]`` and the optimum is a *bottleneck*
   assignment.

For any other configuration the problem is NP-hard (Theorem 2);
:func:`optimal_one_to_one` falls back to exhaustive search when the
instance is small enough, and raises otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.instance import ProblemInstance
from ..core.mapping import Mapping, MappingRule
from ..core.period import MappingEvaluation, evaluate
from ..exceptions import InfeasibleProblemError, SolverError
from .hungarian import bottleneck_assignment, min_cost_assignment

__all__ = [
    "OneToOneResult",
    "optimal_one_to_one_homogeneous",
    "optimal_one_to_one_task_dependent",
    "optimal_one_to_one",
]


@dataclass(frozen=True, slots=True)
class OneToOneResult:
    """Outcome of an exact one-to-one solver.

    Attributes
    ----------
    method:
        Which polynomial case (or fallback) produced the mapping.
    mapping:
        The optimal one-to-one allocation.
    evaluation:
        Full period / throughput evaluation.
    """

    method: str
    mapping: Mapping
    evaluation: MappingEvaluation

    @property
    def period(self) -> float:
        """Shortcut for ``evaluation.period``."""
        return self.evaluation.period


def _check_one_to_one_feasible(instance: ProblemInstance) -> None:
    if not instance.supports_one_to_one():
        raise InfeasibleProblemError(
            f"one-to-one mappings need m >= n; got m={instance.num_machines}, "
            f"n={instance.num_tasks}"
        )


def optimal_one_to_one_homogeneous(instance: ProblemInstance) -> OneToOneResult:
    """Theorem 1: optimal one-to-one mapping, linear chain, homogeneous ``w``.

    Raises
    ------
    SolverError
        If the instance is not a linear chain or the platform is not
        homogeneous (the theorem's hypotheses).
    InfeasibleProblemError
        If there are fewer machines than tasks.
    """
    _check_one_to_one_feasible(instance)
    if not instance.application.is_chain():
        raise SolverError("Theorem 1 requires a linear-chain application")
    if not instance.platform.is_homogeneous():
        raise SolverError("Theorem 1 requires homogeneous machines (w[i,u] = w)")
    # cost[i, u] = -log(1 - f[i, u]); minimising the sum minimises the
    # product of the F factors, hence the period w * prod F.
    cost = -np.log1p(-instance.failure_rates)
    columns = min_cost_assignment(cost)
    mapping = Mapping(columns, instance.num_machines)
    mapping.validate(instance, MappingRule.ONE_TO_ONE)
    return OneToOneResult("hungarian-homogeneous", mapping, evaluate(instance, mapping))


def optimal_one_to_one_task_dependent(instance: ProblemInstance) -> OneToOneResult:
    """Optimal one-to-one mapping when ``f[i, u] = f[i]`` (Figure 9 setting).

    The ``x_i`` values are mapping-independent, so the period is
    ``max_i x_i * w[i, a(i)]`` and a bottleneck assignment is optimal.
    Works for arbitrary in-tree applications and heterogeneous machines.

    Raises
    ------
    SolverError
        If the failure rates actually depend on the machine.
    """
    _check_one_to_one_feasible(instance)
    if not instance.failures.is_task_dependent():
        raise SolverError(
            "the bottleneck formulation requires failure rates attached to tasks only "
            "(f[i, u] = f[i])"
        )
    app = instance.application
    f_task = instance.failure_rates[:, 0]
    x = np.ones(instance.num_tasks)
    for task in app.reverse_topological_order():
        succ = app.successor(task)
        downstream = 1.0 if succ is None else x[succ]
        x[task] = downstream / (1.0 - f_task[task])
    cost = x[:, None] * instance.processing_times
    columns = bottleneck_assignment(cost)
    mapping = Mapping(columns, instance.num_machines)
    mapping.validate(instance, MappingRule.ONE_TO_ONE)
    return OneToOneResult("bottleneck-task-dependent", mapping, evaluate(instance, mapping))


def _bruteforce_one_to_one(instance: ProblemInstance) -> OneToOneResult:
    """Exhaustive search over injective allocations (tiny instances only)."""
    from itertools import permutations

    n, m = instance.num_tasks, instance.num_machines
    if math.perm(m, n) > 500_000:
        raise SolverError(
            "instance too large for exhaustive one-to-one search and outside the "
            "polynomial cases (Theorem 2: the general problem is NP-hard)"
        )
    best_mapping: Mapping | None = None
    best_period = math.inf
    for combo in permutations(range(m), n):
        mapping = Mapping(np.asarray(combo, dtype=np.int64), m)
        result = evaluate(instance, mapping)
        if result.period < best_period:
            best_period = result.period
            best_mapping = mapping
    assert best_mapping is not None
    return OneToOneResult("bruteforce", best_mapping, evaluate(instance, best_mapping))


def optimal_one_to_one(instance: ProblemInstance) -> OneToOneResult:
    """Dispatch to the most appropriate exact one-to-one solver.

    Order of preference: Theorem 1 (homogeneous chain), bottleneck
    assignment (task-dependent failures), exhaustive search (tiny
    instances).  Raises :class:`~repro.exceptions.SolverError` when none
    applies.
    """
    _check_one_to_one_feasible(instance)
    if instance.platform.is_homogeneous() and instance.application.is_chain():
        return optimal_one_to_one_homogeneous(instance)
    if instance.failures.is_task_dependent():
        return optimal_one_to_one_task_dependent(instance)
    return _bruteforce_one_to_one(instance)
