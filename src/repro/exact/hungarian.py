"""Minimum-weight bipartite matching (Hungarian algorithm).

Theorem 1 of the paper reduces the optimal one-to-one mapping of a linear
chain on homogeneous machines to a minimum-weight perfect matching in the
bipartite graph (tasks x machines) with edge cost ``-log(1 - f[i, u])``.

This module provides a from-scratch O(n^2·m) implementation of the
Hungarian algorithm (Jonker–Volgenant style shortest augmenting paths) for
rectangular cost matrices with ``n <= m``, plus a *bottleneck* assignment
solver (minimise the maximum selected cost) used for the task-dependent
failure case of Figure 9.  Both are cross-checked against
``scipy.optimize.linear_sum_assignment`` in the test suite.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InfeasibleProblemError, SolverError

__all__ = ["min_cost_assignment", "bottleneck_assignment", "assignment_cost"]


def min_cost_assignment(cost: np.ndarray) -> np.ndarray:
    """Solve the rectangular assignment problem (minimise total cost).

    Parameters
    ----------
    cost:
        ``(n, m)`` matrix with ``n <= m``; ``cost[i, u]`` is the cost of
        assigning row (task) ``i`` to column (machine) ``u``.  Costs must be
        finite.

    Returns
    -------
    numpy.ndarray
        Integer vector ``col`` of length ``n``: row ``i`` is assigned to
        column ``col[i]``; all assigned columns are distinct.

    Notes
    -----
    Implementation: shortest augmenting path / Jonker–Volgenant with dual
    potentials, O(n^2·m).  Deterministic (ties broken by column index).
    """
    c = np.asarray(cost, dtype=np.float64)
    if c.ndim != 2 or c.size == 0:
        raise SolverError("cost must be a non-empty 2-D matrix")
    n, m = c.shape
    if n > m:
        raise InfeasibleProblemError(
            f"assignment requires at least as many columns as rows (n={n}, m={m})"
        )
    if not np.all(np.isfinite(c)):
        raise SolverError("cost entries must all be finite")

    INF = np.inf
    # Potentials for rows (u) and columns (v); way[j] = previous column on
    # the augmenting path; matched_row[j] = row currently matched to column j.
    u_pot = np.zeros(n + 1)
    v_pot = np.zeros(m + 1)
    matched_row = np.full(m + 1, n, dtype=np.int64)  # sentinel row n = unmatched
    way = np.zeros(m + 1, dtype=np.int64)

    for i in range(n):
        # Augment starting from row i, using column m as the virtual start.
        matched_row[m] = i
        j0 = m
        minv = np.full(m + 1, INF)
        used = np.zeros(m + 1, dtype=bool)
        while True:
            used[j0] = True
            i0 = matched_row[j0]
            delta = INF
            j1 = -1
            for j in range(m):
                if used[j]:
                    continue
                cur = c[i0, j] - u_pot[i0] - v_pot[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            if j1 < 0:
                raise SolverError("augmenting path search failed (internal error)")
            for j in range(m + 1):
                if used[j]:
                    u_pot[matched_row[j]] += delta
                    v_pot[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if matched_row[j0] == n:
                break
        # Unwind the augmenting path.
        while j0 != m:
            j1 = way[j0]
            matched_row[j0] = matched_row[j1]
            j0 = j1

    col_of_row = np.full(n, -1, dtype=np.int64)
    for j in range(m):
        if matched_row[j] != n:
            col_of_row[matched_row[j]] = j
    if np.any(col_of_row < 0):
        raise SolverError("assignment is incomplete (internal error)")
    return col_of_row


def assignment_cost(cost: np.ndarray, columns: np.ndarray) -> float:
    """Total cost of an assignment returned by :func:`min_cost_assignment`."""
    c = np.asarray(cost, dtype=np.float64)
    cols = np.asarray(columns, dtype=np.int64)
    return float(c[np.arange(cols.size), cols].sum())


def _has_perfect_matching(adjacency: np.ndarray) -> np.ndarray | None:
    """Hopcroft–Karp style matching on a boolean (n, m) adjacency matrix.

    Returns the column matched to each row (length ``n``) or ``None`` when
    no perfect matching of the rows exists.
    """
    n, m = adjacency.shape
    match_col = np.full(m, -1, dtype=np.int64)
    match_row = np.full(n, -1, dtype=np.int64)

    def try_augment(row: int, visited: np.ndarray) -> bool:
        for col in np.flatnonzero(adjacency[row]):
            if visited[col]:
                continue
            visited[col] = True
            if match_col[col] == -1 or try_augment(int(match_col[col]), visited):
                match_col[col] = row
                match_row[row] = col
                return True
        return False

    for row in range(n):
        visited = np.zeros(m, dtype=bool)
        if not try_augment(row, visited):
            return None
    return match_row


def bottleneck_assignment(cost: np.ndarray) -> np.ndarray:
    """Solve the bottleneck assignment problem (minimise the max cost).

    Finds an assignment of every row to a distinct column minimising the
    *largest* selected cost.  Used for the optimal one-to-one mapping when
    the expected product counts do not depend on the mapping (failure rates
    attached to tasks only), where the period is the max of the per-task
    ``x_i * w[i, a(i)]`` terms.

    Returns
    -------
    numpy.ndarray
        Integer vector ``col`` of length ``n``.
    """
    c = np.asarray(cost, dtype=np.float64)
    if c.ndim != 2 or c.size == 0:
        raise SolverError("cost must be a non-empty 2-D matrix")
    n, m = c.shape
    if n > m:
        raise InfeasibleProblemError(
            f"assignment requires at least as many columns as rows (n={n}, m={m})"
        )
    if not np.all(np.isfinite(c)):
        raise SolverError("cost entries must all be finite")

    thresholds = np.unique(c)
    lo, hi = 0, thresholds.size - 1
    best: np.ndarray | None = None
    # The largest threshold always admits a perfect matching (complete graph).
    while lo <= hi:
        mid = (lo + hi) // 2
        matching = _has_perfect_matching(c <= thresholds[mid])
        if matching is not None:
            best = matching
            hi = mid - 1
        else:
            lo = mid + 1
    if best is None:
        raise SolverError("no perfect matching found (internal error)")
    return best
