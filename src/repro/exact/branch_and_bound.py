"""From-scratch exact branch-and-bound for the specialized mapping problem.

The MIP of :mod:`repro.exact.milp` relies on an external solver backend
(HiGHS through SciPy).  This module provides an independent, pure-Python
exact solver used to cross-check the MIP on small instances and as a
fallback when no MIP backend is available.

Search strategy
---------------
Tasks are branched in the paper's backward (sinks-first) order, so the
expected product count of a task is known exactly as soon as a machine is
chosen for it.  At every node we know, for each machine, the accumulated
expected busy time; the node lower bound is

``max(current max machine load, max over unassigned tasks of the smallest
possible completion of that task on any still-eligible machine)``

which is admissible because every unassigned task must eventually land on
*some* machine and can only increase that machine's load.  The incumbent is
initialised with the best of the H4/H4w heuristics, which prunes most of
the tree on the instance sizes where exact resolution is practical
(roughly ``n <= 20`` with a handful of machines, matching the paper's
"small platforms").
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from ..core.instance import ProblemInstance
from ..core.mapping import Mapping, MappingRule
from ..core.period import MappingEvaluation, evaluate
from ..exceptions import InfeasibleProblemError
from ..heuristics.base import backward_task_order
from ..heuristics.greedy import BestPerformanceHeuristic, FastestMachineHeuristic

__all__ = ["BranchAndBoundResult", "solve_specialized_branch_and_bound"]


@dataclass(frozen=True, slots=True)
class BranchAndBoundResult:
    """Outcome of the branch-and-bound search.

    Attributes
    ----------
    mapping:
        An optimal specialized mapping.
    evaluation:
        Its analytic evaluation.
    nodes_explored:
        Number of search-tree nodes expanded.
    proved_optimal:
        False only when the node budget was exhausted before the search
        completed (the returned mapping is then the best found so far).
    solve_time:
        Wall-clock seconds spent searching.
    """

    mapping: Mapping
    evaluation: MappingEvaluation
    nodes_explored: int
    proved_optimal: bool
    solve_time: float

    @property
    def period(self) -> float:
        """Shortcut for ``evaluation.period``."""
        return self.evaluation.period


def _initial_incumbent(instance: ProblemInstance) -> tuple[np.ndarray, float]:
    """Best heuristic mapping used to seed the incumbent."""
    best_assignment: np.ndarray | None = None
    best_period = math.inf
    for heuristic in (FastestMachineHeuristic(), BestPerformanceHeuristic()):
        result = heuristic.solve(instance)
        if result.period < best_period:
            best_period = result.period
            best_assignment = result.mapping.as_array.copy()
    assert best_assignment is not None
    return best_assignment, best_period


def solve_specialized_branch_and_bound(
    instance: ProblemInstance,
    *,
    node_limit: int = 5_000_000,
    time_limit: float | None = None,
) -> BranchAndBoundResult:
    """Find an optimal specialized mapping by exhaustive branch-and-bound.

    Parameters
    ----------
    node_limit:
        Maximum number of nodes to expand; beyond it the best incumbent is
        returned with ``proved_optimal=False``.
    time_limit:
        Optional wall-clock budget in seconds (same behaviour as
        ``node_limit`` when exceeded).
    """
    if not instance.supports_specialized():
        raise InfeasibleProblemError(
            f"specialized mappings need m >= p; got m={instance.num_machines}, "
            f"p={instance.num_types}"
        )
    n, m = instance.num_tasks, instance.num_machines
    w = instance.processing_times
    f = instance.failure_rates
    app = instance.application
    order = backward_task_order(instance)
    task_types = np.asarray([instance.type_of(i) for i in range(n)], dtype=np.int64)

    incumbent_assignment, incumbent_period = _initial_incumbent(instance)

    # Remaining-type bookkeeping for the free-machine feasibility guard.
    remaining_type_counts = np.zeros(instance.num_types, dtype=np.int64)
    for task in range(n):
        remaining_type_counts[task_types[task]] += 1

    assignment = np.full(n, -1, dtype=np.int64)
    x_values = np.zeros(n, dtype=np.float64)
    machine_loads = np.zeros(m, dtype=np.float64)
    machine_type = np.full(m, -1, dtype=np.int64)

    nodes = 0
    start = time.perf_counter()
    budget_exhausted = False

    def out_of_budget() -> bool:
        if nodes >= node_limit:
            return True
        if time_limit is not None and time.perf_counter() - start > time_limit:
            return True
        return False

    def downstream_demand(task: int) -> float:
        succ = app.successor(task)
        return 1.0 if succ is None else float(x_values[succ])

    def pending_types(exclude_type: int | None = None) -> int:
        dedicated = set(int(t) for t in machine_type if t >= 0)
        count = 0
        for type_index in range(instance.num_types):
            if remaining_type_counts[type_index] <= 0:
                continue
            if type_index in dedicated:
                continue
            if exclude_type is not None and type_index == exclude_type:
                continue
            count += 1
        return count

    def lower_bound_remaining(position: int) -> float:
        """Admissible bound on the final period from a partial assignment."""
        bound = float(machine_loads.max()) if m else 0.0
        for task in order[position:]:
            task_type = task_types[task]
            best_completion = math.inf
            for machine in range(m):
                dedicated = machine_type[machine]
                if dedicated >= 0 and dedicated != task_type:
                    continue
                # Optimistic x: the task's own best failure rate, with the
                # demand already fixed for assigned successors or 1 otherwise.
                succ = app.successor(task)
                demand = (
                    float(x_values[succ]) if succ is not None and assignment[succ] >= 0 else 1.0
                )
                candidate = machine_loads[machine] + demand / (1.0 - f[task, machine]) * w[
                    task, machine
                ]
                best_completion = min(best_completion, float(candidate))
            bound = max(bound, best_completion)
        return bound

    def recurse(position: int) -> None:
        nonlocal nodes, incumbent_period, incumbent_assignment, budget_exhausted
        if budget_exhausted:
            return
        if position == n:
            current = float(machine_loads.max())
            if current < incumbent_period:
                incumbent_period = current
                incumbent_assignment = assignment.copy()
            return
        if out_of_budget():
            budget_exhausted = True
            return

        task = order[position]
        task_type = int(task_types[task])
        demand = downstream_demand(task)
        free_machines = int(np.count_nonzero(machine_type < 0))
        has_machine_for_type = bool(np.any(machine_type == task_type))

        # Order candidate machines by optimistic completion to find good
        # incumbents early.
        candidates: list[tuple[float, int]] = []
        for machine in range(m):
            dedicated = machine_type[machine]
            if dedicated >= 0 and dedicated != task_type:
                continue
            if dedicated < 0:
                # Free machine: keep enough free machines for pending types.
                needed = pending_types(exclude_type=task_type if not has_machine_for_type else None)
                if free_machines - 1 < needed:
                    continue
            x_task = demand / (1.0 - f[task, machine])
            completion = machine_loads[machine] + x_task * w[task, machine]
            candidates.append((float(completion), machine))
        candidates.sort()

        for completion, machine in candidates:
            nodes += 1
            if completion >= incumbent_period:
                continue
            x_task = demand / (1.0 - f[task, machine])
            was_free = machine_type[machine] < 0
            # Apply.
            machine_type_backup = machine_type[machine]
            machine_type[machine] = task_type
            machine_loads[machine] += x_task * w[task, machine]
            assignment[task] = machine
            x_values[task] = x_task
            remaining_type_counts[task_type] -= 1

            if lower_bound_remaining(position + 1) < incumbent_period:
                recurse(position + 1)

            # Undo.
            remaining_type_counts[task_type] += 1
            x_values[task] = 0.0
            assignment[task] = -1
            machine_loads[machine] -= x_task * w[task, machine]
            machine_type[machine] = machine_type_backup
            if was_free:
                machine_type[machine] = -1
            if budget_exhausted:
                return

    recurse(0)
    elapsed = time.perf_counter() - start

    mapping = Mapping(incumbent_assignment, m)
    mapping.validate(instance, MappingRule.SPECIALIZED)
    return BranchAndBoundResult(
        mapping=mapping,
        evaluation=evaluate(instance, mapping),
        nodes_explored=nodes,
        proved_optimal=not budget_exhausted,
        solve_time=elapsed,
    )
