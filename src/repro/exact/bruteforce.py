"""Exhaustive search for optimal mappings on tiny instances.

The specialized and general mapping problems are NP-hard even for linear
chains; exhaustive enumeration is the reference oracle used by the test
suite to validate the MIP and the branch-and-bound solver on instances
with a handful of tasks and machines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import product

import numpy as np

from ..core.instance import ProblemInstance
from ..core.mapping import Mapping, MappingRule
from ..core.period import MappingEvaluation, evaluate
from ..exceptions import InfeasibleProblemError, SolverError

__all__ = ["BruteForceResult", "bruteforce_optimal"]

#: Refuse to enumerate more candidate mappings than this.
DEFAULT_ENUMERATION_LIMIT = 2_000_000


@dataclass(frozen=True, slots=True)
class BruteForceResult:
    """Outcome of the exhaustive search.

    Attributes
    ----------
    rule:
        Mapping rule that was enforced during enumeration.
    mapping:
        An optimal mapping under that rule.
    evaluation:
        Its evaluation.
    explored:
        Number of valid mappings examined.
    """

    rule: MappingRule
    mapping: Mapping
    evaluation: MappingEvaluation
    explored: int

    @property
    def period(self) -> float:
        """Shortcut for ``evaluation.period``."""
        return self.evaluation.period


def _estimate_search_space(instance: ProblemInstance, rule: MappingRule) -> float:
    n, m = instance.num_tasks, instance.num_machines
    if rule is MappingRule.ONE_TO_ONE:
        return math.perm(m, n) if m >= n else 0
    return float(m) ** n


def bruteforce_optimal(
    instance: ProblemInstance,
    rule: MappingRule | str = MappingRule.SPECIALIZED,
    *,
    limit: int = DEFAULT_ENUMERATION_LIMIT,
) -> BruteForceResult:
    """Enumerate every mapping satisfying ``rule`` and return an optimum.

    Parameters
    ----------
    instance:
        The problem instance (must be small).
    rule:
        Mapping rule to enforce (one-to-one, specialized or general).
    limit:
        Upper bound on the raw search-space size; a larger instance raises
        :class:`~repro.exceptions.SolverError`.
    """
    rule = MappingRule.coerce(rule)
    n, m = instance.num_tasks, instance.num_machines
    if rule is MappingRule.ONE_TO_ONE and m < n:
        raise InfeasibleProblemError("one-to-one mappings need m >= n")
    if rule is MappingRule.SPECIALIZED and m < instance.num_types:
        raise InfeasibleProblemError("specialized mappings need m >= p")
    if _estimate_search_space(instance, rule) > limit:
        raise SolverError(
            f"search space exceeds the enumeration limit ({limit}); "
            "use the MIP or branch-and-bound solver instead"
        )

    types = [instance.type_of(i) for i in range(n)]
    best_mapping: Mapping | None = None
    best_period = math.inf
    explored = 0

    for combo in product(range(m), repeat=n):
        if rule is MappingRule.ONE_TO_ONE and len(set(combo)) != n:
            continue
        if rule is MappingRule.SPECIALIZED:
            machine_type: dict[int, int] = {}
            valid = True
            for task, machine in enumerate(combo):
                seen = machine_type.setdefault(machine, types[task])
                if seen != types[task]:
                    valid = False
                    break
            if not valid:
                continue
        mapping = Mapping(np.asarray(combo, dtype=np.int64), m)
        explored += 1
        result = evaluate(instance, mapping)
        if result.period < best_period:
            best_period = result.period
            best_mapping = mapping

    if best_mapping is None:
        raise SolverError("no valid mapping exists for the requested rule")
    return BruteForceResult(rule, best_mapping, evaluate(instance, best_mapping), explored)
