"""Experimental scenario descriptions and instance sampling.

A :class:`ScenarioConfig` captures one experimental setting of Section 7:
the platform size ``m``, the number of types ``p``, the sweep variable
(number of tasks ``n`` or number of types ``p``), the failure-rate range,
whether failures are attached to tasks only, and how many repetitions are
averaged per point.  :func:`sample_instance` draws one random instance of
a scenario point, reproducibly.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace

import numpy as np

from ..core.failure import FailureModel
from ..core.instance import ProblemInstance
from ..core.platform import Platform
from ..exceptions import ExperimentError
from ..simulation.rng import RandomStreamFactory
from .applications import random_chain_application
from .platforms import (
    PAPER_F_RANGE,
    PAPER_W_RANGE,
    random_failure_rates,
    random_processing_times,
)

__all__ = ["ScenarioConfig", "sample_instance", "clear_instance_cache"]


@dataclass(frozen=True, slots=True)
class ScenarioConfig:
    """One experimental scenario (one figure of the paper).

    Attributes
    ----------
    name:
        Scenario identifier ("fig5", "fig9", ...).
    num_machines:
        Platform size ``m``.
    num_types:
        Number of task types ``p`` (ignored when the sweep variable is
        ``p``).
    sweep:
        Name of the sweep variable: ``"tasks"`` or ``"types"``.
    sweep_values:
        The values of the sweep variable (x-axis of the figure).
    num_tasks:
        Number of tasks ``n`` when the sweep variable is ``p``.
    repetitions:
        Number of random instances averaged per sweep point (30 in the
        paper, 100 for Figure 9).
    w_range, f_range:
        Uniform ranges for processing times and failure rates.
    task_dependent_failures:
        Draw ``f[i, u] = f[i]`` (Figure 9) instead of per-couple rates.
    heuristics:
        Names of the heuristics compared in the figure.
    include_milp, include_one_to_one:
        Whether the exact MIP / optimal one-to-one baselines are part of
        the figure.
    description:
        Human-readable summary used by reports.
    """

    name: str
    num_machines: int
    num_types: int
    sweep: str
    sweep_values: tuple[int, ...]
    repetitions: int = 30
    num_tasks: int | None = None
    w_range: tuple[float, float] = PAPER_W_RANGE
    f_range: tuple[float, float] = PAPER_F_RANGE
    task_dependent_failures: bool = False
    heuristics: tuple[str, ...] = ("H1", "H2", "H3", "H4", "H4w", "H4f")
    include_milp: bool = False
    include_one_to_one: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if self.sweep not in ("tasks", "types"):
            raise ExperimentError(f"unknown sweep variable {self.sweep!r}")
        if not self.sweep_values:
            raise ExperimentError("sweep_values must not be empty")
        if self.sweep == "types" and self.num_tasks is None:
            raise ExperimentError("a 'types' sweep requires num_tasks to be set")
        if self.repetitions < 1:
            raise ExperimentError("repetitions must be >= 1")

    def dimensions_at(self, sweep_value: int) -> tuple[int, int, int]:
        """The ``(n, p, m)`` triple for one sweep point."""
        if self.sweep == "tasks":
            return int(sweep_value), self.num_types, self.num_machines
        assert self.num_tasks is not None
        return self.num_tasks, int(sweep_value), self.num_machines

    def scaled(self, *, repetitions: int | None = None, max_points: int | None = None) -> "ScenarioConfig":
        """A cheaper copy of the scenario (fewer repetitions / sweep points).

        Used by the benchmark harness and the test suite, where running the
        paper's full 30x sweep would be needlessly slow.
        """
        values = self.sweep_values
        if max_points is not None and len(values) > max_points:
            idx = np.linspace(0, len(values) - 1, max_points).round().astype(int)
            values = tuple(values[i] for i in idx)
        return replace(
            self,
            repetitions=repetitions if repetitions is not None else self.repetitions,
            sweep_values=values,
        )

    # -- serialisation ----------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready plain-dict representation (tuples become lists)."""
        data = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            data[spec.name] = list(value) if isinstance(value, tuple) else value
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        known = {spec.name for spec in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ExperimentError(
                f"unknown scenario fields {sorted(unknown)}; expected {sorted(known)}"
            )
        kwargs = dict(data)
        for name in ("sweep_values", "heuristics", "w_range", "f_range"):
            if name in kwargs and kwargs[name] is not None:
                kwargs[name] = tuple(kwargs[name])
        return cls(**kwargs)

    #: Fields that determine the random instance drawn for a (sweep value,
    #: repetition) cell.  ``sweep_values``, ``repetitions``, ``heuristics``
    #: and the baseline flags deliberately stay out: cells are keyed per
    #: sweep value and curve, and records carry their repetition count, so
    #: a scaled-down rerun shares the store entries of the full sweep.
    _HASH_FIELDS = (
        "name",
        "num_machines",
        "num_types",
        "sweep",
        "num_tasks",
        "w_range",
        "f_range",
        "task_dependent_failures",
    )

    def stable_hash(self) -> str:
        """Short content hash of the scenario's instance-generating fields.

        Stable across processes and interpreter restarts (canonical JSON
        + SHA-256, no salted hashing).  Two configs share a hash iff they
        draw identical random instances for every ``(sweep value,
        repetition)`` cell under the same seed — the property the result
        store needs to reuse completed cells across scaled runs.
        """
        data = self.to_dict()
        payload = {name: data[name] for name in self._HASH_FIELDS}
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


#: Memoization of sampled instances, keyed by (config, sweep point,
#: repetition, root entropy).  Instances are deterministic functions of
#: that key, so caching is transparent; it saves regenerating identical
#: instances when several experiment runs share a scenario (e.g. the
#: serial and parallel paths of a determinism check, or figures 10/11).
_INSTANCE_CACHE: dict[tuple, ProblemInstance] = {}
_INSTANCE_CACHE_MAX = 2048


def clear_instance_cache() -> None:
    """Drop every memoized instance (mainly for tests and benchmarks)."""
    _INSTANCE_CACHE.clear()


def sample_instance(
    config: ScenarioConfig,
    sweep_value: int,
    repetition: int,
    streams: RandomStreamFactory,
    *,
    memoize: bool = False,
) -> ProblemInstance:
    """Draw the random instance of one (sweep point, repetition) pair.

    The random stream only depends on ``(config.name, sweep_value,
    repetition)`` through the stream factory, so re-running an experiment
    with the same seed regenerates identical instances.  With
    ``memoize=True`` the drawn instance is cached under that key and
    returned directly on the next identical request; callers must treat
    memoized instances as immutable.
    """
    if memoize:
        entropy = streams.entropy
        key = (
            config,
            int(sweep_value),
            int(repetition),
            tuple(entropy) if isinstance(entropy, (list, tuple)) else entropy,
        )
        cached = _INSTANCE_CACHE.get(key)
        if cached is not None:
            return cached
        instance = sample_instance(config, sweep_value, repetition, streams)
        if len(_INSTANCE_CACHE) >= _INSTANCE_CACHE_MAX:
            _INSTANCE_CACHE.pop(next(iter(_INSTANCE_CACHE)))
        _INSTANCE_CACHE[key] = instance
        return instance
    n, p, m = config.dimensions_at(sweep_value)
    if p > n:
        raise ExperimentError(
            f"scenario {config.name}: cannot have more types ({p}) than tasks ({n})"
        )
    if p > m:
        raise ExperimentError(
            f"scenario {config.name}: cannot have more types ({p}) than machines ({m})"
        )
    rng = streams.stream(f"{config.name}/n{sweep_value}", repetition)
    application = random_chain_application(n, p, rng)
    w = random_processing_times(
        application.types, m, rng, low=config.w_range[0], high=config.w_range[1]
    )
    f = random_failure_rates(
        n,
        m,
        rng,
        low=config.f_range[0],
        high=config.f_range[1],
        task_dependent=config.task_dependent_failures,
    )
    return ProblemInstance(
        application,
        Platform(w, types=application.types),
        FailureModel(f),
        name=f"{config.name}[{config.sweep}={sweep_value},rep={repetition}]",
    )
