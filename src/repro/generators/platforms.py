"""Random platform and failure-model generators (paper parameters).

Section 7 of the paper draws, for every repetition:

* processing times ``w[i, u]`` uniformly in ``[100, 1000]`` ms — with the
  constraint that tasks of the same type share the same time on a given
  machine, so the draw is actually per (type, machine);
* failure rates ``f[i, u]`` uniformly in ``[0.5%, 2%]`` (``[0, 10%]`` for
  the high-failure experiment of Figure 8), either per (task, machine) or
  per task only (``f[i, u] = f[i]``, Figure 9).

The generators below reproduce those distributions; all of them take an
explicit ``numpy.random.Generator`` so that experiments are reproducible.
"""

from __future__ import annotations

import numpy as np

from ..core.failure import FailureModel
from ..core.platform import Platform
from ..core.types import TypeAssignment
from ..exceptions import InvalidPlatformError

__all__ = [
    "PAPER_W_RANGE",
    "PAPER_F_RANGE",
    "HIGH_FAILURE_F_RANGE",
    "random_processing_times",
    "random_platform",
    "random_failure_rates",
    "random_failure_model",
]

#: Processing-time range (ms) used throughout the paper's experiments.
PAPER_W_RANGE: tuple[float, float] = (100.0, 1000.0)
#: Default failure-rate range (0.5% .. 2%).
PAPER_F_RANGE: tuple[float, float] = (0.005, 0.02)
#: High-failure range used by Figure 8 (0 .. 10%).
HIGH_FAILURE_F_RANGE: tuple[float, float] = (0.0, 0.10)


def random_processing_times(
    types: TypeAssignment,
    num_machines: int,
    rng: np.random.Generator,
    *,
    low: float = PAPER_W_RANGE[0],
    high: float = PAPER_W_RANGE[1],
) -> np.ndarray:
    """Draw a type-consistent ``n x m`` processing-time matrix.

    Times are drawn uniformly in ``[low, high]`` per (type, machine) and
    expanded to tasks, which guarantees the paper's consistency rule.
    """
    if num_machines <= 0:
        raise InvalidPlatformError("num_machines must be positive")
    if not (0 < low <= high):
        raise InvalidPlatformError("need 0 < low <= high for processing times")
    per_type = rng.uniform(low, high, size=(types.num_types, num_machines))
    return per_type[types.as_array, :]


def random_platform(
    types: TypeAssignment,
    num_machines: int,
    rng: np.random.Generator,
    *,
    low: float = PAPER_W_RANGE[0],
    high: float = PAPER_W_RANGE[1],
) -> Platform:
    """Random type-consistent platform with ``num_machines`` machines."""
    w = random_processing_times(types, num_machines, rng, low=low, high=high)
    return Platform(w, types=types)


def random_failure_rates(
    num_tasks: int,
    num_machines: int,
    rng: np.random.Generator,
    *,
    low: float = PAPER_F_RANGE[0],
    high: float = PAPER_F_RANGE[1],
    task_dependent: bool = False,
) -> np.ndarray:
    """Draw an ``n x m`` failure-rate matrix.

    Parameters
    ----------
    task_dependent:
        When true, draw one rate per task and replicate it across machines
        (``f[i, u] = f[i]``, the Figure 9 setting).
    """
    if num_tasks <= 0 or num_machines <= 0:
        raise InvalidPlatformError("dimensions must be positive")
    if not (0.0 <= low <= high < 1.0):
        raise InvalidPlatformError("failure range must satisfy 0 <= low <= high < 1")
    if task_dependent:
        per_task = rng.uniform(low, high, size=num_tasks)
        return np.repeat(per_task[:, None], num_machines, axis=1)
    return rng.uniform(low, high, size=(num_tasks, num_machines))


def random_failure_model(
    num_tasks: int,
    num_machines: int,
    rng: np.random.Generator,
    *,
    low: float = PAPER_F_RANGE[0],
    high: float = PAPER_F_RANGE[1],
    task_dependent: bool = False,
) -> FailureModel:
    """Random failure model with uniform rates in ``[low, high]``."""
    rates = random_failure_rates(
        num_tasks,
        num_machines,
        rng,
        low=low,
        high=high,
        task_dependent=task_dependent,
    )
    return FailureModel(rates)
