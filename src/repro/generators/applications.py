"""Random application generators.

The paper's experiments use linear-chain applications whose tasks are
typed with ``p`` distinct types; this module also provides random in-tree
generators used by the additional tests and examples (joins are part of
the applicative framework even though the evaluation sticks to chains).
"""

from __future__ import annotations

import numpy as np

from ..core.application import Application, in_tree
from ..core.types import random_type_assignment
from ..exceptions import InvalidApplicationError

__all__ = ["random_chain_application", "random_in_tree_application"]


def random_chain_application(
    num_tasks: int,
    num_types: int,
    rng: np.random.Generator,
    *,
    ensure_all_types: bool = True,
) -> Application:
    """A linear chain of ``num_tasks`` tasks with random types.

    Parameters
    ----------
    ensure_all_types:
        Force every one of the ``num_types`` types to appear at least once
        (the paper varies ``p`` as an experimental parameter, so all types
        must actually be present).
    """
    types = random_type_assignment(
        num_tasks, num_types, rng, ensure_all_types=ensure_all_types
    )
    return Application.chain(types)


def random_in_tree_application(
    num_branches: int,
    tasks_per_branch: tuple[int, int],
    num_types: int,
    rng: np.random.Generator,
    *,
    shared_tail_length: int = 1,
) -> Application:
    """A random in-tree: ``num_branches`` chains joining into a common tail.

    Parameters
    ----------
    num_branches:
        Number of independent branches (>= 1).
    tasks_per_branch:
        Inclusive ``(low, high)`` range for each branch length.
    num_types:
        Number of task types (assigned randomly over all tasks, every type
        used at least once when possible).
    shared_tail_length:
        Number of tasks after the join.
    """
    if num_branches < 1:
        raise InvalidApplicationError("num_branches must be >= 1")
    low, high = tasks_per_branch
    if low < 1 or high < low:
        raise InvalidApplicationError("tasks_per_branch must satisfy 1 <= low <= high")
    lengths = [int(rng.integers(low, high + 1)) for _ in range(num_branches)]
    skeleton = in_tree(lengths, num_types=1, shared_tail_length=shared_tail_length)
    # Re-type the skeleton's tasks randomly.
    num_tasks = skeleton.num_tasks
    types = random_type_assignment(
        num_tasks, min(num_types, num_tasks), rng, ensure_all_types=True
    )
    return Application(types, [(u, v) for u, v in skeleton.graph.edges])
