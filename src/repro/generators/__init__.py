"""Random instance generators matching the paper's experimental setup."""

from .applications import random_chain_application, random_in_tree_application
from .platforms import (
    HIGH_FAILURE_F_RANGE,
    PAPER_F_RANGE,
    PAPER_W_RANGE,
    random_failure_model,
    random_failure_rates,
    random_platform,
    random_processing_times,
)
from .scenarios import ScenarioConfig, sample_instance

__all__ = [
    "random_chain_application",
    "random_in_tree_application",
    "HIGH_FAILURE_F_RANGE",
    "PAPER_F_RANGE",
    "PAPER_W_RANGE",
    "random_failure_model",
    "random_failure_rates",
    "random_platform",
    "random_processing_times",
    "ScenarioConfig",
    "sample_instance",
]
