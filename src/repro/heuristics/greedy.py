"""H4, H4w and H4f — single-pass greedy heuristics (Algorithms 4, 5, 6).

All three walk the tasks sinks-first and assign each task to the machine
minimising a local *completion score* ``accu_u + criterion(i, u)`` among the
type-compatible machines, where ``accu_u`` is the expected busy time already
accumulated on machine ``u``.  They differ only in the criterion:

* **H4  (best performance)** — ``x_down * w[i, u] * F[i, u]``: expected time
  per finished product, accounting for both speed and reliability;
* **H4w (fastest machine)** — ``x_down * w[i, u]``: speed only, failures are
  ignored during selection (the paper's overall winner);
* **H4f (most reliable machine)** — ``x_down * F[i, u]``: reliability only,
  speed is ignored (the paper's weakest heuristic together with H1).

``x_down`` is the number of products required by the successor of ``Ti``
(known exactly because the traversal is sinks-first), and
``F[i, u] = 1 / (1 - f[i, u])``.  Whatever criterion is used for the
*choice*, the accumulated load and the final mapping are always evaluated
with the true failure-aware expected product counts.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence

import numpy as np

from ..core.instance import ProblemInstance
from ..core.mapping import Mapping
from .base import (
    AssignmentState,
    BatchAssignmentState,
    Heuristic,
    backward_task_order,
    register_heuristic,
)

__all__ = [
    "GreedyCompletionHeuristic",
    "BestPerformanceHeuristic",
    "FastestMachineHeuristic",
    "ReliableMachineHeuristic",
]


class GreedyCompletionHeuristic(Heuristic):
    """Shared single-pass greedy driver for the H4 family.

    The inner loop scores every machine at once: the per-(task, machine)
    part of each criterion is a fixed matrix (``w * F``, ``w`` or ``F``)
    scaled by the downstream demand, so one NumPy expression replaces the
    per-machine Python comparison loop.
    """

    @abc.abstractmethod
    def criterion(
        self, instance: ProblemInstance, task: int, machine: int, downstream_demand: float
    ) -> float:
        """The task-local cost added to ``accu_u`` when scoring ``machine``."""

    def criterion_matrix(self, instance: ProblemInstance) -> np.ndarray:
        """The ``(n, m)`` matrix ``C`` with ``criterion = demand * C[i, u]``.

        Subclasses override this with a closed-form NumPy expression; the
        fallback builds it from the scalar :meth:`criterion`.
        """
        n, m = instance.num_tasks, instance.num_machines
        return np.array(
            [[self.criterion(instance, i, u, 1.0) for u in range(m)] for i in range(n)]
        )

    def solve_mapping(
        self, instance: ProblemInstance, rng: np.random.Generator | None = None
    ) -> tuple[Mapping, int, dict]:
        state = AssignmentState(instance, backward_task_order(instance))
        criterion = self.criterion_matrix(instance)
        while not state.is_complete():
            task = state.next_task()
            assert task is not None
            demand = state.downstream_demand(task)
            # The AssignmentState feasibility guard guarantees eligibility
            # whenever m >= p, which check_feasible() has already verified.
            scores = np.where(
                state.eligible_mask(task),
                state.accumulated + demand * criterion[task],
                np.inf,
            )
            # np.argmin keeps the lowest machine index among exact ties,
            # matching the old (score, machine) lexicographic selection.
            state.assign(task, int(np.argmin(scores)))
        return state.to_mapping(), 1, {}

    def solve_batch(self, instances: Sequence[ProblemInstance]) -> np.ndarray:
        """Solve all ``R`` instances lock-step; row ``r`` equals the
        sequential :meth:`solve_mapping` on ``instances[r]`` bit for bit.

        Every greedy step scores the current task on all machines of all
        repetitions in one ``(R, m)`` expression — the per-repetition
        Python loop of the per-instance path collapses into ``n``
        vectorized steps.
        """
        state = BatchAssignmentState(instances)
        criterion = np.stack([self.criterion_matrix(inst) for inst in instances])
        for task in state.order:
            demand = state.downstream_demand(task)
            scores = np.where(
                state.eligible_mask(task),
                state.accumulated + demand[:, np.newaxis] * criterion[:, task, :],
                np.inf,
            )
            state.assign(task, np.argmin(scores, axis=1))
        return state.assignment


@register_heuristic
class BestPerformanceHeuristic(GreedyCompletionHeuristic):
    """Paper heuristic H4: minimise expected time per finished product."""

    name = "H4"

    def criterion(
        self, instance: ProblemInstance, task: int, machine: int, downstream_demand: float
    ) -> float:
        return (
            downstream_demand
            * instance.w(task, machine)
            * instance.attempts_factor(task, machine)
        )

    def criterion_matrix(self, instance: ProblemInstance) -> np.ndarray:
        return instance.processing_times * instance.failures.attempts_factors


@register_heuristic
class FastestMachineHeuristic(GreedyCompletionHeuristic):
    """Paper heuristic H4w: minimise processing time, ignore failures."""

    name = "H4w"

    def criterion(
        self, instance: ProblemInstance, task: int, machine: int, downstream_demand: float
    ) -> float:
        return downstream_demand * instance.w(task, machine)

    def criterion_matrix(self, instance: ProblemInstance) -> np.ndarray:
        return instance.processing_times


@register_heuristic
class ReliableMachineHeuristic(GreedyCompletionHeuristic):
    """Paper heuristic H4f: minimise failure impact, ignore speed."""

    name = "H4f"

    def criterion(
        self, instance: ProblemInstance, task: int, machine: int, downstream_demand: float
    ) -> float:
        return downstream_demand * instance.attempts_factor(task, machine)

    def criterion_matrix(self, instance: ProblemInstance) -> np.ndarray:
        return instance.failures.attempts_factors
