"""H1 — random heuristic (Algorithm 1 of the paper).

Tasks are grouped by type at random: when a task's type already owns at
least one group, the heuristic either opens a new group (if enough free
machines remain for the types that have not been seen yet) or picks one of
the existing groups of that type, uniformly at random.  Groups are finally
assigned to machines by a random one-to-one draw.

H1 is the *baseline* of the experimental section — it produces valid
specialized mappings but ignores both processing times and failure rates.
"""

from __future__ import annotations

import numpy as np

from ..core.instance import ProblemInstance
from ..core.mapping import Mapping
from .base import AssignmentState, Heuristic, backward_task_order, register_heuristic

__all__ = ["RandomHeuristic"]


@register_heuristic
class RandomHeuristic(Heuristic):
    """Paper heuristic H1: random type grouping, random machine choice."""

    name = "H1"
    randomized = True

    def solve_mapping(
        self, instance: ProblemInstance, rng: np.random.Generator | None = None
    ) -> tuple[Mapping, int, dict]:
        if rng is None:  # pragma: no cover - Heuristic.solve always passes one
            rng = np.random.default_rng()
        state = AssignmentState(instance, backward_task_order(instance))

        new_groups_opened = 0
        while not state.is_complete():
            task = state.next_task()
            assert task is not None
            task_type = instance.type_of(task)
            existing = [
                u for u in state.machines_of_type(task_type) if state.is_eligible(task, u)
            ]
            free = [
                u
                for u in range(instance.num_machines)
                if u not in state.machine_type and state.is_eligible(task, u)
            ]

            if not existing:
                # First task of this type: a new group must be opened.
                machine = int(rng.choice(free))
                new_groups_opened += 1
            elif free and state.num_free_machines() > state.num_pending_types():
                # The paper opens a new group when spare machines remain;
                # choose at random between opening one and reusing a group,
                # matching the "choose a new group" / "choose an existing
                # group" branches of Algorithm 1.
                if rng.random() < 0.5:
                    machine = int(rng.choice(free))
                    new_groups_opened += 1
                else:
                    machine = int(rng.choice(existing))
            else:
                machine = int(rng.choice(existing))

            state.assign(task, machine)

        return state.to_mapping(), 1, {"groups_opened": new_groups_opened}
