"""Polynomial-time mapping heuristics (Section 6.2 of the paper).

The paper's six heuristics solve the (NP-hard) specialized-mapping problem
on linear-chain applications:

========  ===============================================================
Name      Strategy
========  ===============================================================
``H1``    random type grouping (Algorithm 1)
``H2``    binary search on the period, per-machine rank priority (Alg. 2)
``H3``    binary search on the period, heterogeneity priority (Alg. 3)
``H4``    greedy best expected performance ``w * F`` (Alg. 4)
``H4w``   greedy fastest machine ``w`` only (Alg. 5)
``H4f``   greedy most reliable machine ``F`` only (Alg. 6)
========  ===============================================================

Beyond the paper's six, ``H4ls`` refines H4w's mapping with a
best-single-task-move local search over the incremental evaluator
(:mod:`repro.heuristics.local_search`) — never worse than H4w.  Extra
baselines (``RandomUniform``, ``RoundRobin``, ``H4-forward``) are
provided for sanity checks and ablation studies.

Use :func:`get_heuristic` to obtain an instance by name, or instantiate the
classes directly.
"""

from .base import (
    AssignmentState,
    BatchAssignmentState,
    BatchHeuristic,
    Heuristic,
    HeuristicResult,
    available_heuristics,
    backward_task_order,
    get_heuristic,
    register_heuristic,
    supports_batch,
)
from .baselines import (
    GreedyLoadBalanceHeuristic,
    RoundRobinHeuristic,
    UniformRandomSpecialized,
)
from .binary_search import (
    BinarySearchHeuristic,
    HeterogeneityBinarySearchHeuristic,
    RankBinarySearchHeuristic,
    worst_case_period_bound,
)
from .greedy import (
    BestPerformanceHeuristic,
    FastestMachineHeuristic,
    GreedyCompletionHeuristic,
    ReliableMachineHeuristic,
)
from .h1_random import RandomHeuristic
from .local_search import (
    LocalSearchHeuristic,
    refine_specialized,
    refine_specialized_batch,
    specialized_move_mask,
    specialized_move_mask_batch,
)

#: The six heuristics evaluated in the paper, in presentation order.
PAPER_HEURISTICS = ("H1", "H2", "H3", "H4", "H4w", "H4f")

__all__ = [
    "AssignmentState",
    "BatchAssignmentState",
    "BatchHeuristic",
    "Heuristic",
    "HeuristicResult",
    "available_heuristics",
    "backward_task_order",
    "get_heuristic",
    "register_heuristic",
    "supports_batch",
    "GreedyLoadBalanceHeuristic",
    "RoundRobinHeuristic",
    "UniformRandomSpecialized",
    "BinarySearchHeuristic",
    "HeterogeneityBinarySearchHeuristic",
    "RankBinarySearchHeuristic",
    "worst_case_period_bound",
    "BestPerformanceHeuristic",
    "FastestMachineHeuristic",
    "GreedyCompletionHeuristic",
    "ReliableMachineHeuristic",
    "RandomHeuristic",
    "LocalSearchHeuristic",
    "refine_specialized",
    "refine_specialized_batch",
    "specialized_move_mask",
    "specialized_move_mask_batch",
    "PAPER_HEURISTICS",
]
