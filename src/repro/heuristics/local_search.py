"""H4ls — local-search refinement of H4w (best single-task moves).

The ROADMAP's open item: a refinement heuristic on top of
:meth:`repro.batch.MappingEvaluator.candidate_periods`.  ``H4ls`` starts
from the mapping produced by H4w (the paper's overall winner) and
repeatedly applies the *best* single-task move — the reassignment of one
task to one machine that lowers the period the most — until no improving
move exists.  Every probe is an O(upstream + m^2) incremental query
instead of a full re-evaluation, so a refinement pass costs a small
multiple of one greedy run.

Moves are restricted to destinations that keep the mapping *specialized*
(a machine only ever hosts tasks of a single type), so the refined
mapping satisfies the same rule as its seed and remains comparable with
the other specialized heuristics.  Because the search starts from H4w's
mapping and only applies strictly improving moves — and the final
mapping is re-checked against the seed under the exact scalar evaluation
— ``H4ls`` is never worse than H4w on any instance.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..batch.evaluation import InstanceStack
from ..batch.incremental import MappingEvaluator, StackMappingEvaluator
from ..core.instance import ProblemInstance
from ..core.mapping import Mapping
from ..core.period import evaluate
from .base import Heuristic, register_heuristic
from .greedy import FastestMachineHeuristic

__all__ = [
    "LocalSearchHeuristic",
    "refine_specialized",
    "refine_specialized_batch",
    "specialized_move_mask",
    "specialized_move_mask_batch",
]


def specialized_move_mask(instance: ProblemInstance, assignment: np.ndarray) -> np.ndarray:
    """Boolean ``(n, m)`` mask of moves that keep ``assignment`` specialized.

    Entry ``[i, u]`` is true when machine ``u`` currently hosts no task of
    a type other than ``t(i)`` — i.e. moving task ``i`` there leaves every
    machine dedicated to at most one type.
    """
    n, m = instance.num_tasks, instance.num_machines
    types = np.asarray(
        [instance.type_of(task) for task in range(n)], dtype=np.int64
    )
    p = instance.num_types
    counts = np.zeros((m, p), dtype=np.int64)
    np.add.at(counts, (np.asarray(assignment, dtype=np.int64), types), 1)
    hosted = counts > 0
    distinct = hosted.sum(axis=1)
    # Machine u accepts type t when it is empty or dedicated to t already.
    accepts = (distinct == 0)[:, np.newaxis] | ((distinct == 1)[:, np.newaxis] & hosted)
    return accepts[:, types].T


def specialized_move_mask_batch(
    instances: Sequence[ProblemInstance], assignments: np.ndarray
) -> np.ndarray:
    """Rowwise :func:`specialized_move_mask` as one ``(R, n, m)`` array.

    Entry ``[r, i, u]`` is true when moving task ``i`` of repetition ``r``
    to machine ``u`` keeps row ``r``'s mapping specialized.
    """
    R = len(instances)
    n, m = instances[0].num_tasks, instances[0].num_machines
    types = np.stack([inst.application.types.as_array for inst in instances])
    p = max(inst.num_types for inst in instances)
    rows = np.arange(R)
    counts = np.zeros((R, m, p), dtype=np.int64)
    np.add.at(
        counts,
        (rows[:, np.newaxis], np.asarray(assignments, dtype=np.int64), types),
        1,
    )
    hosted = counts > 0
    distinct = hosted.sum(axis=2)
    # Machine u accepts type t when it is empty or dedicated to t already.
    accepts = (distinct == 0)[:, :, np.newaxis] | (
        (distinct == 1)[:, :, np.newaxis] & hosted
    )
    # result[r, i, u] = accepts[r, u, types[r, i]]
    return accepts[
        rows[:, np.newaxis, np.newaxis],
        np.arange(m)[np.newaxis, np.newaxis, :],
        types[:, :, np.newaxis],
    ]


def refine_specialized_batch(
    instances: Sequence[ProblemInstance],
    seeds: np.ndarray,
    *,
    max_moves: int | None = None,
    rel_tol: float = 1e-12,
) -> tuple[np.ndarray, np.ndarray]:
    """Rowwise :func:`refine_specialized` over a whole repetition block.

    Every row descends through its own best-single-move sequence, but the
    expensive part — probing all ``(task, destination)`` candidates — runs
    as one :meth:`~repro.batch.StackMappingEvaluator.best_moves` scan per
    round across the still-improving rows.  Rows reach their local optima
    on their own schedule and are then *dropped from the stack*
    (:meth:`~repro.batch.StackMappingEvaluator.subset`), so late rounds
    probe only the rows still descending instead of paying the full
    ``R``-row scan to the very last move — the difference between the
    deepest row's round count and the *average* row's.  Because rows are
    independent and subsetting carries row state over bit for bit, row
    ``r``'s move sequence (and final mapping) is exactly the sequential
    refinement of ``instances[r]``.

    Returns ``(refined assignments, per-row move counts)``.
    """
    seeds = np.asarray(seeds, dtype=np.int64)
    R, n = seeds.shape
    result = seeds.copy()
    moves = np.zeros(R, dtype=np.int64)
    cap = max_moves if max_moves is not None else 100 * n
    # The scalar loop checks the cap before probing, so cap=0 must not
    # move at all; start from the same guard.
    if cap <= 0 or R == 0:
        return result, moves
    evaluator = StackMappingEvaluator(instances, seeds)
    live = np.arange(R)  # original index of each evaluator row
    live_instances = list(instances)
    while True:
        allowed = specialized_move_mask_batch(live_instances, evaluator.assignment)
        tasks, machines, has_move = evaluator.best_moves(allowed=allowed, rel_tol=rel_tol)
        for row in np.flatnonzero(has_move):
            evaluator.move(int(row), int(tasks[row]), int(machines[row]))
        moves[live[has_move]] += 1
        done = ~has_move | (moves[live] >= cap)
        if not done.any():
            continue
        finished = np.flatnonzero(done)
        result[live[finished]] = evaluator.assignment[finished]
        keep = np.flatnonzero(~done)
        if keep.size == 0:
            break
        # Compact the stack to the rows still descending.
        evaluator = evaluator.subset(keep)
        live = live[keep]
        live_instances = [live_instances[int(row)] for row in keep]
    return result, moves


def refine_specialized(
    instance: ProblemInstance,
    mapping: Mapping | np.ndarray,
    *,
    max_moves: int | None = None,
    rel_tol: float = 1e-12,
) -> tuple[Mapping, int]:
    """Best-single-move descent from ``mapping`` within the specialized rule.

    Repeatedly applies the globally best improving single-task move (via
    :meth:`~repro.batch.MappingEvaluator.best_move`) until the mapping is
    a local optimum.  Returns ``(refined mapping, number of moves)``.

    Parameters
    ----------
    max_moves:
        Optional hard cap on the number of moves (defaults to ``100 * n``,
        a safety net far above what the descent ever uses in practice —
        each move must lower the period by a relative ``rel_tol``).
    """
    evaluator = MappingEvaluator(instance, mapping)
    cap = max_moves if max_moves is not None else 100 * instance.num_tasks
    moves = 0
    while moves < cap:
        allowed = specialized_move_mask(instance, evaluator.assignment)
        best = evaluator.best_move(allowed=allowed, rel_tol=rel_tol)
        if best is None:
            break
        task, machine, _ = best
        evaluator.move(task, machine)
        moves += 1
    return evaluator.mapping, moves


@register_heuristic
class LocalSearchHeuristic(Heuristic):
    """H4ls: H4w followed by a best-single-task-move descent.

    The incremental probes can drift a few ulps from the exact scalar
    evaluation over a long chain of moves, so the refined mapping is
    compared against the H4w seed under the *scalar* evaluation and the
    seed is returned whenever refinement did not strictly improve it —
    making "never worse than H4w" an exact, bit-level guarantee.
    """

    name = "H4ls"
    #: The heuristic whose mapping is refined.
    base = "H4w"

    def solve_mapping(
        self, instance: ProblemInstance, rng: np.random.Generator | None = None
    ) -> tuple[Mapping, int, dict]:
        seed_mapping, _, _ = FastestMachineHeuristic().solve_mapping(instance, rng)
        refined, moves = refine_specialized(instance, seed_mapping)
        seed_period = evaluate(instance, seed_mapping).period
        refined_period = evaluate(instance, refined).period
        if refined_period < seed_period:
            return (
                refined,
                1 + moves,
                {"base": self.base, "moves": moves, "seed_period": seed_period},
            )
        return seed_mapping, 1, {"base": self.base, "moves": 0, "seed_period": seed_period}

    def solve_batch(self, instances: Sequence[ProblemInstance]) -> np.ndarray:
        """Batched H4ls: one H4w batch solve, one lock-step refinement.

        The seed/refined comparison runs through the stack's vectorized
        evaluation, which is bit-for-bit the scalar evaluation — so each
        row returns exactly what :meth:`solve_mapping` would.
        """
        seeds = FastestMachineHeuristic().solve_batch(instances)
        refined, _ = refine_specialized_batch(instances, seeds)
        stack = InstanceStack.from_instances(instances, require_uniform_types=False)
        improved = stack.periods(refined) < stack.periods(seeds)
        return np.where(improved[:, np.newaxis], refined, seeds)
