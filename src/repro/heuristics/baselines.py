"""Additional baseline mapping strategies (not from the paper).

The paper compares its heuristics against H1 (random grouping) and against
exact solvers.  For sanity checking and ablation we provide three further
baselines that downstream users of the library may find handy:

* :class:`UniformRandomSpecialized` — a *uniform* random valid specialized
  mapping (H1 is biased towards opening new groups; this one samples a
  machine for each type uniformly first, then assigns every task of the
  type to one of the machines dedicated to it uniformly);
* :class:`RoundRobinHeuristic` — deterministic round-robin of types over
  machines, then of tasks over the machines of their type;
* :class:`GreedyLoadBalanceHeuristic` — a forward (sources-first) variant
  of H4 used by the traversal-direction ablation benchmark.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..core.instance import ProblemInstance
from ..core.mapping import Mapping
from ..exceptions import ReproError
from .base import Heuristic, register_heuristic

__all__ = [
    "UniformRandomSpecialized",
    "RoundRobinHeuristic",
    "GreedyLoadBalanceHeuristic",
]


def _partition_machines_among_types(
    instance: ProblemInstance, rng: np.random.Generator | None
) -> dict[int, list[int]]:
    """Split the machines into non-empty groups, one per used task type.

    Every used type receives at least one machine; remaining machines are
    spread (randomly when an RNG is given, round-robin otherwise).
    """
    used_types = instance.application.types.used_types()
    m = instance.num_machines
    if len(used_types) > m:
        raise ReproError("more task types than machines; no specialized mapping exists")
    machine_indices = list(range(m))
    if rng is not None:
        rng.shuffle(machine_indices)
    groups: dict[int, list[int]] = {t: [] for t in used_types}
    # One machine per type first, then distribute the rest.
    for i, t in enumerate(used_types):
        groups[t].append(machine_indices[i])
    rest = machine_indices[len(used_types) :]
    for i, machine in enumerate(rest):
        if rng is not None:
            t = used_types[int(rng.integers(len(used_types)))]
        else:
            t = used_types[i % len(used_types)]
        groups[t].append(machine)
    return groups


@register_heuristic
class UniformRandomSpecialized(Heuristic):
    """Uniform random specialized mapping (baseline, not in the paper)."""

    name = "RandomUniform"
    randomized = True

    def solve_mapping(
        self, instance: ProblemInstance, rng: np.random.Generator | None = None
    ) -> tuple[Mapping, int, dict]:
        if rng is None:  # pragma: no cover - Heuristic.solve always passes one
            rng = np.random.default_rng()
        groups = _partition_machines_among_types(instance, rng)
        assignment = np.empty(instance.num_tasks, dtype=np.int64)
        for task in range(instance.num_tasks):
            machines = groups[instance.type_of(task)]
            assignment[task] = machines[int(rng.integers(len(machines)))]
        return Mapping(assignment, instance.num_machines), 1, {}


@register_heuristic
class RoundRobinHeuristic(Heuristic):
    """Deterministic round-robin specialized mapping (baseline)."""

    name = "RoundRobin"

    def solve_mapping(
        self, instance: ProblemInstance, rng: np.random.Generator | None = None
    ) -> tuple[Mapping, int, dict]:
        groups = _partition_machines_among_types(instance, None)
        cursor: dict[int, int] = defaultdict(int)
        assignment = np.empty(instance.num_tasks, dtype=np.int64)
        for task in range(instance.num_tasks):
            task_type = instance.type_of(task)
            machines = groups[task_type]
            assignment[task] = machines[cursor[task_type] % len(machines)]
            cursor[task_type] += 1
        return Mapping(assignment, instance.num_machines), 1, {}


@register_heuristic
class GreedyLoadBalanceHeuristic(Heuristic):
    """Forward-traversal variant of H4 (used by the traversal ablation).

    Walks the tasks sources-first; because the downstream expected-product
    counts are then unknown, the criterion uses the worst-case attempts
    factor of the path below each task as an estimate.  Comparing this
    heuristic against H4 quantifies the value of the paper's backward
    traversal.
    """

    name = "H4-forward"

    def solve_mapping(
        self, instance: ProblemInstance, rng: np.random.Generator | None = None
    ) -> tuple[Mapping, int, dict]:
        app = instance.application
        worst_attempts = instance.failures.worst_case_attempts()
        # Estimate of x_i assuming worst-case failures downstream.
        x_estimate = np.ones(instance.num_tasks)
        for task in app.reverse_topological_order():
            succ = app.successor(task)
            downstream = 1.0 if succ is None else x_estimate[succ]
            x_estimate[task] = downstream * worst_attempts[task]

        order = app.topological_order()
        machine_type: dict[int, int] = {}
        accumulated = np.zeros(instance.num_machines)
        assignment = np.full(instance.num_tasks, -1, dtype=np.int64)
        remaining_types: dict[int, int] = defaultdict(int)
        for task in range(instance.num_tasks):
            remaining_types[instance.type_of(task)] += 1
        free = instance.num_machines

        def pending_types() -> int:
            dedicated = set(machine_type.values())
            return sum(
                1 for t, c in remaining_types.items() if c > 0 and t not in dedicated
            )

        for task in order:
            task_type = instance.type_of(task)
            candidates = []
            for u in range(instance.num_machines):
                dedicated = machine_type.get(u)
                if dedicated is not None and dedicated != task_type:
                    continue
                if dedicated is None:
                    has_machine = task_type in machine_type.values()
                    needed = pending_types() - (0 if has_machine else 1)
                    if free - 1 < needed:
                        continue
                candidates.append(u)
            if not candidates:
                raise ReproError("no eligible machine; instance has more types than machines")
            cost = lambda u: (
                accumulated[u]
                + x_estimate[task]
                * instance.w(task, u)
                * instance.attempts_factor(task, u),
                u,
            )
            best = min(candidates, key=cost)
            if best not in machine_type:
                machine_type[best] = task_type
                free -= 1
            accumulated[best] += (
                x_estimate[task] * instance.w(task, best) * instance.attempts_factor(task, best)
            )
            assignment[task] = best
            remaining_types[task_type] -= 1

        return Mapping(assignment, instance.num_machines), 1, {}
