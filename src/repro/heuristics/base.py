"""Shared infrastructure for the mapping heuristics.

The six heuristics of the paper (H1, H2, H3, H4, H4w, H4f) all build a
*specialized* mapping by walking the application graph **backward** (from
the last task towards the first) and greedily choosing a machine for each
task.  They share a substantial amount of state-keeping:

* which machine is *dedicated* to which task type (a machine becomes
  dedicated to ``t(i)`` the first time a task of that type is assigned to
  it, and can then only receive tasks of that type);
* the accumulated expected execution time of each machine
  (``accu_u = sum_{j assigned to u} x_j * w[j, u]``);
* the expected-product values ``x_j`` of already assigned tasks, which are
  known because assignment proceeds sinks-first.

:class:`AssignmentState` encapsulates this bookkeeping; the concrete
heuristics only differ in *how* they rank candidate machines.

Feasibility guard
-----------------
The paper's pseudo-code assumes that a type-compatible machine always
exists.  When the number of machines is close to the number of types this
is not guaranteed (all machines could become dedicated to other types
before some type shows up).  :class:`AssignmentState` therefore refuses to
dedicate a *free* machine to a new type when doing so would leave fewer
free machines than the number of still-unseen types — exactly the
``nbFreeMachines > nbTypesToGo`` bookkeeping that the paper makes explicit
in Algorithm 1 (H1).  This guard is applied uniformly to every heuristic so
that all of them always return a valid specialized mapping whenever one
exists (``m >= p``).
"""

from __future__ import annotations

import abc
import json
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import Protocol, runtime_checkable

import numpy as np

from ..core.instance import ProblemInstance, shared_successor_table
from ..core.mapping import Mapping, MappingRule
from ..core.period import MappingEvaluation, evaluate
from ..exceptions import InfeasibleProblemError, MappingRuleViolation, ReproError

__all__ = [
    "HeuristicResult",
    "Heuristic",
    "AssignmentState",
    "BatchAssignmentState",
    "BatchHeuristic",
    "BATCH_SOLVE_MIN_REPETITIONS",
    "BATCH_SOLVE_THRESHOLDS",
    "batch_solve_min_repetitions",
    "supports_batch",
    "solve_one",
    "solve_stack",
    "validate_assignments",
    "register_heuristic",
    "get_heuristic",
    "available_heuristics",
    "backward_task_order",
]

#: Default smallest stack depth at which the lock-step batch solvers beat
#: the per-instance loop (both paths are bit-for-bit identical, so this is
#: purely a scheduling choice).  Shared by the block engine's curve
#: providers and the solve service's micro-batcher; heuristics with an
#: empirically measured crossover override it through
#: :data:`BATCH_SOLVE_THRESHOLDS` / :func:`batch_solve_min_repetitions`.
BATCH_SOLVE_MIN_REPETITIONS = 8


def _load_batch_thresholds() -> dict[str, int]:
    """Per-heuristic crossovers calibrated by ``scripts/tune_thresholds.py``.

    The calibration lives in ``thresholds.json`` next to this module; a
    missing or unreadable file degrades to the shared default so numpy-only
    source checkouts keep working.
    """
    path = Path(__file__).with_name("thresholds.json")
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return {}
    thresholds = data.get("thresholds", {})
    return {
        str(name): max(2, int(value))
        for name, value in thresholds.items()
        if isinstance(value, (int, float))
    }


#: ``{heuristic name: measured batch/per-instance crossover depth}``.
BATCH_SOLVE_THRESHOLDS: dict[str, int] = _load_batch_thresholds()


def batch_solve_min_repetitions(heuristic: str | None = None) -> int:
    """The batch-solve crossover depth for one heuristic.

    Falls back to :data:`BATCH_SOLVE_MIN_REPETITIONS` for heuristics
    without a calibrated entry (and for ``None``).
    """
    if heuristic is None:
        return BATCH_SOLVE_MIN_REPETITIONS
    return BATCH_SOLVE_THRESHOLDS.get(heuristic, BATCH_SOLVE_MIN_REPETITIONS)


@dataclass(frozen=True, slots=True)
class HeuristicResult:
    """Outcome of a heuristic run.

    Attributes
    ----------
    heuristic:
        Name of the heuristic ("H1", "H2", ...).
    mapping:
        The produced allocation.
    evaluation:
        Full period / throughput evaluation of the mapping.
    iterations:
        Number of outer iterations performed (binary-search steps for
        H2/H3, 1 for the greedy heuristics).
    metadata:
        Free-form additional information (e.g. final binary-search bounds).
    """

    heuristic: str
    mapping: Mapping
    evaluation: MappingEvaluation
    iterations: int = 1
    metadata: dict = field(default_factory=dict)

    @property
    def period(self) -> float:
        """Shortcut for ``evaluation.period``."""
        return self.evaluation.period

    @property
    def throughput(self) -> float:
        """Shortcut for ``evaluation.throughput``."""
        return self.evaluation.throughput


def backward_task_order(instance: ProblemInstance) -> tuple[int, ...]:
    """Order in which heuristics assign tasks: sinks first, sources last.

    For a linear chain this is ``T_n, T_{n-1}, ..., T_1``, exactly the
    traversal described in Section 6.2.
    """
    return instance.application.reverse_topological_order()


class AssignmentState:
    """Incremental state of a backward greedy assignment.

    Parameters
    ----------
    instance:
        The problem instance being solved.
    order:
        The task order used by the heuristic (defaults to the backward
        order).  The state tracks which types still have unassigned tasks
        to implement the free-machine feasibility guard.
    """

    __slots__ = (
        "instance",
        "_order",
        "_position",
        "assignment",
        "machine_type",
        "accumulated",
        "x",
        "_remaining_type_counts",
        "_free_machines",
        "_machine_type_arr",
        "_types_with_machine",
        "_pending_types",
    )

    def __init__(self, instance: ProblemInstance, order: Sequence[int] | None = None):
        self.instance = instance
        self._order = tuple(order) if order is not None else backward_task_order(instance)
        if sorted(self._order) != list(range(instance.num_tasks)):
            raise ReproError("order must be a permutation of all task indices")
        self._position = 0
        n, m = instance.num_tasks, instance.num_machines
        self.assignment = np.full(n, -1, dtype=np.int64)
        #: machine index -> type it is dedicated to (absent = free machine)
        self.machine_type: dict[int, int] = {}
        #: vectorized mirror of machine_type (-1 = free machine)
        self._machine_type_arr = np.full(m, -1, dtype=np.int64)
        #: types that own at least one dedicated machine
        self._types_with_machine: set[int] = set()
        #: accumulated expected busy time per machine (x_j * w[j, u] summed)
        self.accumulated = np.zeros(m, dtype=np.float64)
        #: expected products per task; -1 until the task is assigned
        self.x = np.full(n, -1.0, dtype=np.float64)
        types = instance.application.types
        self._remaining_type_counts: dict[int, int] = {}
        for task in range(n):
            t = types[task]
            self._remaining_type_counts[t] = self._remaining_type_counts.get(t, 0) + 1
        self._free_machines = m
        # Types with unassigned tasks and no dedicated machine.  No machine
        # is dedicated yet, so initially every type present is pending; the
        # count is maintained incrementally by :meth:`assign` (a type leaves
        # the pending set exactly when it gains its first machine, because a
        # type's task count only ever drops through an assignment that also
        # guarantees it a machine).
        self._pending_types = len(self._remaining_type_counts)

    # -- traversal ------------------------------------------------------------------
    @property
    def order(self) -> tuple[int, ...]:
        """The task traversal order."""
        return self._order

    def remaining_tasks(self) -> tuple[int, ...]:
        """Tasks not yet assigned, in traversal order."""
        return self._order[self._position :]

    def next_task(self) -> int | None:
        """The next task to assign, or ``None`` when every task is assigned."""
        if self._position >= len(self._order):
            return None
        return self._order[self._position]

    def is_complete(self) -> bool:
        """True when every task has been assigned."""
        return self._position >= len(self._order)

    # -- demand bookkeeping ------------------------------------------------------------
    def downstream_demand(self, task: int) -> float:
        """Products the successor of ``task`` requires (1.0 for a sink).

        Because assignment proceeds sinks-first, the successor of the next
        task to assign has always been assigned already, so its ``x`` value
        is known exactly.
        """
        succ = self.instance.application.successor(task)
        if succ is None:
            return 1.0
        x_succ = self.x[succ]
        if x_succ < 0:
            raise ReproError(
                f"successor {succ} of task {task} has not been assigned yet; "
                "heuristics must traverse the graph sinks-first"
            )
        return float(x_succ)

    def candidate_products(self, task: int, machine: int) -> float:
        """``x_i`` that task would get if assigned to ``machine``."""
        demand = self.downstream_demand(task)
        return demand / (1.0 - self.instance.f(task, machine))

    def candidate_exec(self, task: int, machine: int) -> float:
        """Machine completion time if ``task`` were assigned to ``machine``.

        ``accu_u + x_i(u) * w[i, u]`` with the true (failure-aware) ``x_i``.
        This is the quantity compared against the period bound in the
        binary-search heuristics.
        """
        return float(
            self.accumulated[machine]
            + self.candidate_products(task, machine) * self.instance.w(task, machine)
        )

    def candidate_products_vector(self, task: int) -> np.ndarray:
        """``x_i`` the task would get on each machine, as an ``(m,)`` vector."""
        demand = self.downstream_demand(task)
        return demand / (1.0 - self.instance.failure_rates[task, :])

    def candidate_exec_vector(self, task: int) -> np.ndarray:
        """Vectorized :meth:`candidate_exec` over every machine at once."""
        return self.accumulated + self.candidate_products_vector(
            task
        ) * self.instance.processing_times[task, :]

    # -- machine eligibility --------------------------------------------------------------
    def num_free_machines(self) -> int:
        """Machines not yet dedicated to any type."""
        return self._free_machines

    def num_pending_types(self) -> int:
        """Types that still have unassigned tasks and no dedicated machine.

        Maintained incrementally by :meth:`assign` (O(1)) instead of
        rescanning the per-type counts on every eligibility check.
        """
        return self._pending_types

    def _has_machine_for(self, type_index: int) -> bool:
        return type_index in self._types_with_machine

    def machines_of_type(self, type_index: int) -> list[int]:
        """Machines already dedicated to ``type_index``."""
        return sorted(u for u, t in self.machine_type.items() if t == type_index)

    def is_eligible(self, task: int, machine: int) -> bool:
        """True if ``machine`` may receive ``task`` under the specialized rule.

        A machine is eligible when it is already dedicated to ``t(task)``,
        or when it is free *and* dedicating it would not starve another
        still-pending type of its last free machine.
        """
        task_type = self.instance.type_of(task)
        dedicated = self.machine_type.get(machine)
        if dedicated is not None:
            return dedicated == task_type
        # Free machine: apply the nbFreeMachines / nbTypesToGo guard.
        pending = self.num_pending_types()
        if self._has_machine_for(task_type):
            # The type already owns a machine; taking a new free machine is
            # only allowed if enough free machines remain for pending types.
            return self._free_machines - 1 >= pending
        # The type has no machine yet: it is itself one of the pending
        # types, so using a free machine for it always keeps the invariant.
        return self._free_machines - 1 >= pending - 1

    def eligible_mask(self, task: int) -> np.ndarray:
        """Boolean ``(m,)`` mask of machines that may receive ``task``.

        Vectorized equivalent of calling :meth:`is_eligible` for every
        machine: a machine qualifies when it is dedicated to the task's
        type, or free and the ``nbFreeMachines / nbTypesToGo`` guard
        allows dedicating it.
        """
        task_type = self.instance.type_of(task)
        dedicated_ok = self._machine_type_arr == task_type
        free = self._machine_type_arr == -1
        pending = self.num_pending_types()
        if self._has_machine_for(task_type):
            free_ok = self._free_machines - 1 >= pending
        else:
            free_ok = self._free_machines - 1 >= pending - 1
        if not free_ok:
            return dedicated_ok
        return dedicated_ok | free

    def eligible_machines(self, task: int) -> list[int]:
        """All machines that may receive ``task`` (ascending index)."""
        return [int(u) for u in np.flatnonzero(self.eligible_mask(task))]

    # -- mutation ---------------------------------------------------------------------
    def assign(self, task: int, machine: int) -> None:
        """Assign the next task of the traversal to ``machine``.

        Raises
        ------
        ReproError
            If ``task`` is not the next task in the traversal order or the
            machine is not eligible.
        """
        expected = self.next_task()
        if expected is None or task != expected:
            raise ReproError(
                f"tasks must be assigned in traversal order; expected task {expected}, "
                f"got {task}"
            )
        if not self.is_eligible(task, machine):
            raise ReproError(
                f"machine {machine} is not eligible for task {task} under the "
                "specialized rule"
            )
        task_type = self.instance.type_of(task)
        if machine not in self.machine_type:
            self.machine_type[machine] = task_type
            self._machine_type_arr[machine] = task_type
            if task_type not in self._types_with_machine:
                # The type gains its first machine: it stops being pending.
                self._pending_types -= 1
            self._types_with_machine.add(task_type)
            self._free_machines -= 1
        x_task = self.candidate_products(task, machine)
        self.x[task] = x_task
        self.accumulated[machine] += x_task * self.instance.w(task, machine)
        self.assignment[task] = machine
        self._remaining_type_counts[task_type] -= 1
        self._position += 1

    # -- result ---------------------------------------------------------------------
    def to_mapping(self) -> Mapping:
        """Freeze the assignment into a :class:`~repro.core.Mapping`.

        Raises
        ------
        ReproError
            If some tasks are still unassigned.
        """
        if not self.is_complete():
            raise ReproError("assignment is incomplete")
        return Mapping(self.assignment, self.instance.num_machines)


class BatchAssignmentState:
    """Lock-step :class:`AssignmentState` over ``R`` stacked instances.

    The batch solvers advance all ``R`` repetitions of a block through the
    same backward traversal simultaneously: every piece of per-instance
    greedy state (assignment, dedicated machines, accumulated busy time,
    expected products, the free-machine feasibility guard) becomes an
    array with a leading repetition axis, and each greedy step is a
    handful of vectorized operations over ``(R, m)`` slices instead of
    ``R`` Python loop iterations.

    All instances must share the precedence graph (and therefore the
    backward traversal order); types, ``w`` and ``f`` are per repetition.
    Row ``r``'s arithmetic mirrors a scalar :class:`AssignmentState` on
    instance ``r`` operation for operation, so the resulting assignments
    are bit-for-bit identical to ``R`` sequential solves.

    Rows can be deactivated (``rows`` index arguments) so drivers with
    per-repetition early exit — the batched binary search marks rows
    infeasible for their candidate period — simply stop updating them.
    """

    __slots__ = (
        "order",
        "types",
        "w",
        "f",
        "assignment",
        "machine_type",
        "accumulated",
        "x",
        "free_machines",
        "pending_types",
        "_succ",
        "_has_machine",
        "_all_rows",
    )

    def __init__(self, instances: Sequence[ProblemInstance]):
        if not instances:
            raise ReproError("cannot batch-solve zero instances")
        first = instances[0]
        self.order = backward_task_order(first)
        successors = shared_successor_table(instances)
        self.types = np.stack([inst.application.types.as_array for inst in instances])
        self.w = np.stack([inst.processing_times for inst in instances])
        self.f = np.stack([inst.failure_rates for inst in instances])
        self._succ = np.asarray(
            [-1 if succ is None else succ for succ in successors], dtype=np.int64
        )
        self._reset_progress()

    def _reset_progress(self) -> None:
        """(Re)initialise every assignment-progress array to the empty state."""
        R, n, m = self.w.shape
        self.assignment = np.full((R, n), -1, dtype=np.int64)
        #: per-row machine -> dedicated type (-1 = free machine)
        self.machine_type = np.full((R, m), -1, dtype=np.int64)
        self.accumulated = np.zeros((R, m), dtype=np.float64)
        self.x = np.full((R, n), -1.0, dtype=np.float64)
        self.free_machines = np.full(R, m, dtype=np.int64)
        # Distinct types present per row: all of them are pending until
        # they gain their first dedicated machine, exactly as in the
        # scalar state.
        max_type = int(self.types.max())
        self._has_machine = np.zeros((R, max_type + 1), dtype=bool)
        sorted_types = np.sort(self.types, axis=1)
        self.pending_types = 1 + np.count_nonzero(
            sorted_types[:, 1:] != sorted_types[:, :-1], axis=1
        ).astype(np.int64)
        self._all_rows = np.arange(R)

    def subset(self, rows: np.ndarray) -> "BatchAssignmentState":
        """A fresh, unassigned state restricted to the given rows.

        Shares the traversal order and successor table with the receiver;
        ``types``/``w``/``f`` are sliced per row, and every progress array
        starts empty.  Drivers that re-run the greedy placement several
        times over shrinking row sets — the batched binary search tries
        one candidate period per active row and pass — build each pass's
        state this way instead of restacking the instances.
        """
        clone = object.__new__(type(self))
        clone.order = self.order
        clone._succ = self._succ
        clone.types = self.types[rows]
        clone.w = self.w[rows]
        clone.f = self.f[rows]
        clone._reset_progress()
        return clone

    @property
    def num_rows(self) -> int:
        """Stack depth ``R``."""
        return int(self.assignment.shape[0])

    @property
    def num_machines(self) -> int:
        """Platform size ``m``."""
        return int(self.machine_type.shape[1])

    def downstream_demand(self, task: int) -> np.ndarray:
        """Per-row products required by ``task``'s successor (``(R,)``)."""
        succ = int(self._succ[task])
        if succ < 0:
            return np.ones(self.num_rows, dtype=np.float64)
        return self.x[:, succ]

    def candidate_exec(self, task: int) -> np.ndarray:
        """Batched :meth:`AssignmentState.candidate_exec_vector` (``(R, m)``)."""
        products = self.downstream_demand(task)[:, np.newaxis] / (
            1.0 - self.f[:, task, :]
        )
        return self.accumulated + products * self.w[:, task, :]

    def eligible_mask(self, task: int) -> np.ndarray:
        """Batched :meth:`AssignmentState.eligible_mask` (``(R, m)`` bool)."""
        task_type = self.types[:, task]
        dedicated_ok = self.machine_type == task_type[:, np.newaxis]
        free = self.machine_type == -1
        has_machine = self._has_machine[self._all_rows, task_type]
        # nbFreeMachines / nbTypesToGo guard, rowwise: a type that already
        # owns a machine must leave a free machine per pending type; a
        # pending type may always claim one of the machines reserved for
        # the pending set.
        free_ok = np.where(
            has_machine,
            self.free_machines - 1 >= self.pending_types,
            self.free_machines - 1 >= self.pending_types - 1,
        )
        return dedicated_ok | (free & free_ok[:, np.newaxis])

    def assign(self, task: int, machines: np.ndarray, rows: np.ndarray | None = None) -> None:
        """Assign ``task`` to ``machines[k]`` in row ``rows[k]``, lock-step.

        ``rows`` defaults to every row; pass the indices of the still
        active rows to leave dead rows untouched.  Eligibility is
        guaranteed by construction in the batch drivers (they mask
        ineligible machines before choosing), so no per-row check is
        re-run here.
        """
        if rows is None:
            rows = self._all_rows
        machines = np.asarray(machines, dtype=np.int64)
        task_type = self.types[rows, task]
        newly = self.machine_type[rows, machines] == -1
        if newly.any():
            nrows, nmachines, ntypes = (
                rows[newly],
                machines[newly],
                task_type[newly],
            )
            had_machine = self._has_machine[nrows, ntypes]
            self.machine_type[nrows, nmachines] = ntypes
            self.pending_types[nrows] -= ~had_machine
            self._has_machine[nrows, ntypes] = True
            self.free_machines[nrows] -= 1
        demand = self.downstream_demand(task)[rows]
        x_task = demand / (1.0 - self.f[rows, task, machines])
        self.x[rows, task] = x_task
        self.accumulated[rows, machines] += x_task * self.w[rows, task, machines]
        self.assignment[rows, task] = machines


@runtime_checkable
class BatchHeuristic(Protocol):
    """Protocol of heuristics that can solve a whole repetition block.

    ``solve_batch`` takes the ``R`` structurally identical instances of
    one :class:`~repro.batch.InstanceStack` block and returns the
    ``(R, n)`` assignment array whose row ``r`` is bit-for-bit identical
    to ``solve_mapping(instances[r])``.  The block engine feeds the array
    straight into the stack's vectorized scoring pass, so a curve whose
    heuristic implements this protocol never re-enters Python per
    repetition.  Deterministic heuristics only — randomized ones (H1)
    keep the per-instance path.
    """

    def solve_batch(self, instances: Sequence[ProblemInstance]) -> np.ndarray:
        """Solve every instance of the block at once (``(R, n)`` int64)."""
        ...  # pragma: no cover - protocol stub


def supports_batch(heuristic: object) -> bool:
    """True when ``heuristic`` implements :class:`BatchHeuristic`."""
    return isinstance(heuristic, BatchHeuristic)


def validate_assignments(
    instances: Sequence[ProblemInstance],
    assignments: np.ndarray,
    rule: MappingRule,
) -> None:
    """Batched counterpart of ``Mapping.validate`` over a stack of solves.

    The specialized rule — every batchable heuristic's rule — is checked
    in one vectorized counts pass; any other rule falls back to the
    per-instance validation.
    """
    if rule is not MappingRule.SPECIALIZED:
        for row, instance in enumerate(instances):
            Mapping(assignments[row], instance.num_machines).validate(instance, rule)
        return
    R = len(instances)
    m = instances[0].num_machines
    types = np.stack([inst.application.types.as_array for inst in instances])
    counts = np.zeros((R, m, int(types.max()) + 1), dtype=np.int64)
    np.add.at(counts, (np.arange(R)[:, np.newaxis], assignments, types), 1)
    distinct = (counts > 0).sum(axis=2)
    if (distinct > 1).any():
        row = int(np.argmax((distinct > 1).any(axis=1)))
        raise MappingRuleViolation(
            f"batch solve of row {row} assigns tasks of two different "
            "types to the same machine"
        )


def solve_one(
    heuristic: Heuristic,
    instance: ProblemInstance,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Feasibility-checked, validated single solve; the ``(n,)`` assignment.

    The scalar counterpart of :func:`solve_stack`: both the block engine's
    per-instance fallback and the solve service's unbatched path go
    through this entry, so every consumer applies the same feasibility
    check and mapping-rule validation.
    """
    heuristic.check_feasible(instance)
    mapping, _, _ = heuristic.solve_mapping(instance, rng)
    mapping.validate(instance, heuristic.rule)
    return mapping.as_array


def solve_stack(
    heuristic: Heuristic,
    instances: Sequence[ProblemInstance],
    rng_for: Callable[[int], np.random.Generator] | None = None,
    *,
    batch: bool | None = None,
) -> np.ndarray:
    """Solve a stack of structurally identical instances; ``(R, n)`` int64.

    The provider-agnostic routing entry shared by the experiment engine's
    :class:`~repro.experiments.providers.HeuristicProvider` and the solve
    service's micro-batcher: when ``heuristic`` implements
    :class:`BatchHeuristic` and the stack is at least the heuristic's
    :func:`batch_solve_min_repetitions` deep (or ``batch=True`` forces
    it), the whole stack is solved in one lock-step ``solve_batch`` call;
    otherwise each instance is solved through :func:`solve_one`.  Row
    ``r`` is bit-for-bit identical either way.

    Parameters
    ----------
    heuristic:
        The heuristic to run.
    instances:
        The stacked instances (shared precedence graph and platform
        size; types, ``w`` and ``f`` may differ per row).
    rng_for:
        ``rng_for(r)`` supplies the generator for row ``r`` on the
        per-instance path (randomized heuristics); ``None`` passes no
        generator, which deterministic heuristics ignore.
    batch:
        ``None`` (default) applies the depth crossover;
        ``True``/``False`` force one path (tests, benchmarks).
    """
    if not instances:
        raise ReproError("cannot solve an empty instance stack")
    use_batch = (
        batch
        if batch is not None
        else len(instances)
        >= batch_solve_min_repetitions(getattr(heuristic, "name", None))
    )
    if use_batch and supports_batch(heuristic):
        for instance in instances:
            heuristic.check_feasible(instance)
        assignments = heuristic.solve_batch(instances)
        validate_assignments(instances, assignments, heuristic.rule)
        return assignments
    assignments = np.empty(
        (len(instances), instances[0].num_tasks), dtype=np.int64
    )
    for row, instance in enumerate(instances):
        rng = rng_for(row) if rng_for is not None else None
        assignments[row] = solve_one(heuristic, instance, rng)
    return assignments


class Heuristic(abc.ABC):
    """Base class for mapping heuristics.

    Subclasses implement :meth:`solve_mapping` and set the class attributes
    ``name`` (paper identifier) and ``rule`` (mapping rule they produce).
    """

    #: Paper identifier (e.g. ``"H4w"``); must be unique across the registry.
    name: str = ""
    #: Mapping rule produced by the heuristic.
    rule: MappingRule = MappingRule.SPECIALIZED
    #: Whether the heuristic uses randomness (and therefore an RNG argument).
    randomized: bool = False

    def check_feasible(self, instance: ProblemInstance) -> None:
        """Raise if no specialized mapping can exist for the instance."""
        if not instance.supports_specialized():
            raise InfeasibleProblemError(
                f"specialized mappings need m >= p; got m={instance.num_machines}, "
                f"p={instance.num_types}"
            )

    @abc.abstractmethod
    def solve_mapping(
        self, instance: ProblemInstance, rng: np.random.Generator | None = None
    ) -> tuple[Mapping, int, dict]:
        """Produce ``(mapping, iterations, metadata)`` for the instance."""

    def solve(
        self, instance: ProblemInstance, rng: np.random.Generator | None = None
    ) -> HeuristicResult:
        """Run the heuristic and evaluate the resulting mapping."""
        self.check_feasible(instance)
        if self.randomized and rng is None:
            rng = np.random.default_rng()
        mapping, iterations, metadata = self.solve_mapping(instance, rng)
        mapping.validate(instance, self.rule)
        return HeuristicResult(
            heuristic=self.name,
            mapping=mapping,
            evaluation=evaluate(instance, mapping),
            iterations=iterations,
            metadata=metadata,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


_REGISTRY: dict[str, Callable[[], Heuristic]] = {}


def register_heuristic(factory: Callable[[], Heuristic]) -> Callable[[], Heuristic]:
    """Register a heuristic factory under its instance ``name``.

    Usable as a class decorator on :class:`Heuristic` subclasses.
    """
    instance = factory()
    key = instance.name.lower()
    if not key:
        raise ReproError("heuristic must define a non-empty name")
    if key in _REGISTRY:
        raise ReproError(f"heuristic {instance.name!r} is already registered")
    _REGISTRY[key] = factory
    return factory


def get_heuristic(name: str) -> Heuristic:
    """Instantiate a registered heuristic by (case-insensitive) name."""
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY))
        raise ReproError(f"unknown heuristic {name!r}; known: {known}") from exc
    return factory()


def available_heuristics() -> list[str]:
    """Names of all registered heuristics, in registration order."""
    return [factory().name for factory in _REGISTRY.values()]
