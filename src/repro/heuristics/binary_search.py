"""H2 and H3 — binary-search heuristics (Algorithms 2 and 3).

Both heuristics perform a bisection on the target period:

* the lower bound starts at 0, the upper bound at the worst-case period
  (every task executed sequentially on the slowest machine, weighted by the
  worst-case expected product counts);
* for a candidate period, tasks are assigned greedily (sinks first); a task
  may only go to a machine that is type-compatible and whose completion
  time would not exceed the candidate period;
* if every task can be placed the candidate period is feasible and the
  upper bound shrinks, otherwise the lower bound grows.

They differ only in how candidate machines are *ranked* for a task:

* **H2 (potential optimization)** ranks machines by ``rank[i, u]`` — the
  rank of task ``Ti`` in the ascending ordering of column ``w[:, u]`` — and
  breaks ties by smaller ``w[i, u]``: a machine is preferred when the task
  is among the operations it performs fastest *relatively to its other
  tasks*.
* **H3 (heterogeneity)** prefers the most *heterogeneous* eligible machine
  (largest standard deviation of its ``w[:, u]`` column), keeping the more
  homogeneous machines in reserve for later (earlier) tasks.

The paper bisects integer millisecond values (``while max - min > 1``);
:class:`BinarySearchHeuristic` reproduces that behaviour but also accepts a
relative tolerance for ablation studies.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np

from ..core.instance import ProblemInstance
from ..core.mapping import Mapping
from .base import AssignmentState, Heuristic, backward_task_order, register_heuristic

__all__ = ["BinarySearchHeuristic", "RankBinarySearchHeuristic", "HeterogeneityBinarySearchHeuristic"]


def worst_case_period_bound(instance: ProblemInstance) -> float:
    """Upper bound used to initialise the bisection.

    Every task is charged its worst-case expected product count (computed
    with the *largest* failure rate over machines, cf. the ``MAXx_i`` bound
    of the MIP) and its slowest processing time, all on one machine.
    """
    worst_attempts = instance.failures.worst_case_attempts()
    app = instance.application
    # Worst-case x_i: product of worst attempt factors along the path to the sink.
    x_max = np.ones(instance.num_tasks)
    for task in app.reverse_topological_order():
        succ = app.successor(task)
        downstream = 1.0 if succ is None else x_max[succ]
        x_max[task] = downstream * worst_attempts[task]
    slowest_w = instance.processing_times.max(axis=1)
    return float(np.sum(x_max * slowest_w))


class BinarySearchHeuristic(Heuristic):
    """Common bisection driver for H2 and H3.

    Parameters
    ----------
    integer_search:
        When true (paper behaviour) the bisection operates on integer
        period values and stops when ``max - min <= 1``; otherwise it stops
        when the relative gap drops below ``rel_tol``.
    rel_tol:
        Relative tolerance of the non-integer bisection.
    max_iterations:
        Hard cap on bisection steps (safety net).
    """

    def __init__(
        self,
        *,
        integer_search: bool = True,
        rel_tol: float = 1e-4,
        max_iterations: int = 128,
    ) -> None:
        self.integer_search = bool(integer_search)
        self.rel_tol = float(rel_tol)
        self.max_iterations = int(max_iterations)

    # -- machine ranking (heuristic-specific) -----------------------------------------
    @abc.abstractmethod
    def machine_order(
        self, instance: ProblemInstance, state: AssignmentState, task: int
    ) -> np.ndarray:
        """Permutation of *all* machine indices, most preferred first.

        The bisection driver intersects this order with the eligibility
        and period-feasibility masks; returning a full permutation lets
        the ranking itself be computed with vectorized NumPy sorts.
        """

    def machine_priority(
        self, instance: ProblemInstance, state: AssignmentState, task: int, machines: list[int]
    ) -> list[int]:
        """Order the given eligible machines from most to least preferred.

        Convenience wrapper restricting :meth:`machine_order` to a subset;
        kept for introspection and tests.
        """
        keep = set(machines)
        return [int(u) for u in self.machine_order(instance, state, task) if int(u) in keep]

    def prepare(self, instance: ProblemInstance) -> None:
        """Hook for per-instance precomputation (ranks, heterogeneity)."""

    # -- one greedy assignment round ---------------------------------------------------
    def _try_period(
        self, instance: ProblemInstance, target_period: float
    ) -> Mapping | None:
        """Attempt to place every task under ``target_period``; ``None`` on failure."""
        state = AssignmentState(instance, backward_task_order(instance))
        while not state.is_complete():
            task = state.next_task()
            assert task is not None
            # One vectorized pass: eligibility, projected completion times
            # and the preference order are all (m,) arrays; the chosen
            # machine is the first of the order that satisfies both masks.
            feasible = state.eligible_mask(task) & (
                state.candidate_exec_vector(task) <= target_period
            )
            if not feasible.any():
                return None
            order = self.machine_order(instance, state, task)
            ranked = np.flatnonzero(feasible[order])
            state.assign(task, int(order[ranked[0]]))
        return state.to_mapping()

    # -- Heuristic API ------------------------------------------------------------------
    def solve_mapping(
        self, instance: ProblemInstance, rng: np.random.Generator | None = None
    ) -> tuple[Mapping, int, dict]:
        self.prepare(instance)
        low = 0.0
        high = worst_case_period_bound(instance)
        best = self._try_period(instance, high)
        if best is None:
            # The guard in AssignmentState guarantees eligibility whenever a
            # specialized mapping exists, so the upper bound is always
            # feasible; keep a defensive fallback nonetheless.
            high *= 2.0
            best = self._try_period(instance, high)
        iterations = 0
        while iterations < self.max_iterations:
            if self.integer_search:
                if high - low <= 1.0:
                    break
                mid = low + math.floor((high - low) / 2.0)
            else:
                if high - low <= self.rel_tol * max(high, 1.0):
                    break
                mid = (low + high) / 2.0
            iterations += 1
            candidate = self._try_period(instance, mid)
            if candidate is not None:
                best = candidate
                high = mid
            else:
                low = mid
        assert best is not None
        return best, iterations, {"final_low": low, "final_high": high}


@register_heuristic
class RankBinarySearchHeuristic(BinarySearchHeuristic):
    """Paper heuristic H2: binary search with per-machine rank priority."""

    name = "H2"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._ranks: np.ndarray | None = None

    def prepare(self, instance: ProblemInstance) -> None:
        w = instance.processing_times
        # rank[i, u] = position of task i when the column w[:, u] is sorted
        # ascending (0 = the task this machine performs fastest).
        order = np.argsort(w, axis=0, kind="stable")
        ranks = np.empty_like(order)
        n = w.shape[0]
        rows = np.arange(n)
        for u in range(w.shape[1]):
            ranks[order[:, u], u] = rows
        self._ranks = ranks

    def machine_order(
        self, instance: ProblemInstance, state: AssignmentState, task: int
    ) -> np.ndarray:
        assert self._ranks is not None
        w = instance.processing_times
        # lexsort: last key is primary — rank, then w[task, u], then u.
        return np.lexsort(
            (np.arange(instance.num_machines), w[task, :], self._ranks[task, :])
        )


@register_heuristic
class HeterogeneityBinarySearchHeuristic(BinarySearchHeuristic):
    """Paper heuristic H3: binary search preferring heterogeneous machines."""

    name = "H3"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._heterogeneity: np.ndarray | None = None

    def prepare(self, instance: ProblemInstance) -> None:
        self._heterogeneity = instance.platform.machine_heterogeneity()

    def machine_order(
        self, instance: ProblemInstance, state: AssignmentState, task: int
    ) -> np.ndarray:
        assert self._heterogeneity is not None
        # Most heterogeneous first; break ties with the smaller projected
        # completion time, then the machine index for determinism.
        return np.lexsort(
            (
                np.arange(instance.num_machines),
                state.candidate_exec_vector(task),
                -self._heterogeneity,
            )
        )
