"""H2 and H3 — binary-search heuristics (Algorithms 2 and 3).

Both heuristics perform a bisection on the target period:

* the lower bound starts at 0, the upper bound at the worst-case period
  (every task executed sequentially on the slowest machine, weighted by the
  worst-case expected product counts);
* for a candidate period, tasks are assigned greedily (sinks first); a task
  may only go to a machine that is type-compatible and whose completion
  time would not exceed the candidate period;
* if every task can be placed the candidate period is feasible and the
  upper bound shrinks, otherwise the lower bound grows.

They differ only in how candidate machines are *ranked* for a task:

* **H2 (potential optimization)** ranks machines by ``rank[i, u]`` — the
  rank of task ``Ti`` in the ascending ordering of column ``w[:, u]`` — and
  breaks ties by smaller ``w[i, u]``: a machine is preferred when the task
  is among the operations it performs fastest *relatively to its other
  tasks*.
* **H3 (heterogeneity)** prefers the most *heterogeneous* eligible machine
  (largest standard deviation of its ``w[:, u]`` column), keeping the more
  homogeneous machines in reserve for later (earlier) tasks.

The paper bisects integer millisecond values (``while max - min > 1``);
:class:`BinarySearchHeuristic` reproduces that behaviour but also accepts a
relative tolerance for ablation studies.
"""

from __future__ import annotations

import abc
import math
from collections.abc import Sequence

import numpy as np

from ..backend import get_backend
from ..core.instance import ProblemInstance
from ..core.mapping import Mapping
from ..exceptions import ReproError
from .base import (
    AssignmentState,
    BatchAssignmentState,
    Heuristic,
    backward_task_order,
    register_heuristic,
)

__all__ = ["BinarySearchHeuristic", "RankBinarySearchHeuristic", "HeterogeneityBinarySearchHeuristic"]


def worst_case_period_bound(instance: ProblemInstance) -> float:
    """Upper bound used to initialise the bisection.

    Every task is charged its worst-case expected product count (computed
    with the *largest* failure rate over machines, cf. the ``MAXx_i`` bound
    of the MIP) and its slowest processing time, all on one machine.
    """
    worst_attempts = instance.failures.worst_case_attempts()
    app = instance.application
    # Worst-case x_i: product of worst attempt factors along the path to the sink.
    x_max = np.ones(instance.num_tasks)
    for task in app.reverse_topological_order():
        succ = app.successor(task)
        downstream = 1.0 if succ is None else x_max[succ]
        x_max[task] = downstream * worst_attempts[task]
    slowest_w = instance.processing_times.max(axis=1)
    return float(np.sum(x_max * slowest_w))


class BinarySearchHeuristic(Heuristic):
    """Common bisection driver for H2 and H3.

    Parameters
    ----------
    integer_search:
        When true (paper behaviour) the bisection operates on integer
        period values and stops when ``max - min <= 1``; otherwise it stops
        when the relative gap drops below ``rel_tol``.
    rel_tol:
        Relative tolerance of the non-integer bisection.
    max_iterations:
        Hard cap on bisection steps (safety net).
    """

    def __init__(
        self,
        *,
        integer_search: bool = True,
        rel_tol: float = 1e-4,
        max_iterations: int = 128,
    ) -> None:
        self.integer_search = bool(integer_search)
        self.rel_tol = float(rel_tol)
        self.max_iterations = int(max_iterations)
        self._period_bound: float | None = None
        self._period_bounds: np.ndarray | None = None

    # -- machine ranking (heuristic-specific) -----------------------------------------
    @abc.abstractmethod
    def machine_order(
        self, instance: ProblemInstance, state: AssignmentState, task: int
    ) -> np.ndarray:
        """Permutation of *all* machine indices, most preferred first.

        The bisection driver intersects this order with the eligibility
        and period-feasibility masks; returning a full permutation lets
        the ranking itself be computed with vectorized NumPy sorts.
        """

    @abc.abstractmethod
    def machine_order_batch(
        self, state: BatchAssignmentState, task: int, rows: np.ndarray
    ) -> np.ndarray:
        """Rowwise machine permutations for the batched driver.

        The returned ``(len(rows), m)`` array must equal
        :meth:`machine_order` applied to each row's instance and state;
        ``rows`` indexes the original instance list so stacked
        precomputations from :meth:`prepare_batch` can be sliced.
        """

    def machine_priority(
        self, instance: ProblemInstance, state: AssignmentState, task: int, machines: list[int]
    ) -> list[int]:
        """Order the given eligible machines from most to least preferred.

        Convenience wrapper restricting :meth:`machine_order` to a subset;
        kept for introspection and tests.
        """
        keep = set(machines)
        return [int(u) for u in self.machine_order(instance, state, task) if int(u) in keep]

    def prepare(self, instance: ProblemInstance) -> None:
        """Per-instance precomputation run once per solve.

        Caches the bisection's worst-case upper bound (previously
        recomputed by every solve entry point) so the driver and any
        introspection share one value; subclasses extend it with their
        ranking data (ranks, heterogeneity) and must call ``super()``.
        """
        self._period_bound = worst_case_period_bound(instance)

    def prepare_batch(
        self, instances: Sequence[ProblemInstance], state: BatchAssignmentState
    ) -> None:
        """Stacked counterpart of :meth:`prepare` for the batched driver.

        Caches the per-row period bounds; subclasses stack their ranking
        data and must call ``super()``.
        """
        self._period_bounds = np.asarray(
            [worst_case_period_bound(inst) for inst in instances], dtype=np.float64
        )

    # -- one greedy assignment round ---------------------------------------------------
    def _try_period(
        self, instance: ProblemInstance, target_period: float
    ) -> Mapping | None:
        """Attempt to place every task under ``target_period``; ``None`` on failure."""
        state = AssignmentState(instance, backward_task_order(instance))
        while not state.is_complete():
            task = state.next_task()
            assert task is not None
            # One vectorized pass: eligibility, projected completion times
            # and the preference order are all (m,) arrays; the chosen
            # machine is the first of the order that satisfies both masks.
            feasible = state.eligible_mask(task) & (
                state.candidate_exec_vector(task) <= target_period
            )
            if not feasible.any():
                return None
            order = self.machine_order(instance, state, task)
            ranked = np.flatnonzero(feasible[order])
            state.assign(task, int(order[ranked[0]]))
        return state.to_mapping()

    # -- one batched greedy assignment round -------------------------------------------
    def _try_period_batch(
        self,
        template: BatchAssignmentState,
        rows: np.ndarray,
        targets: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Attempt every row's candidate period in one lock-step pass.

        Row ``k`` runs the same greedy placement as :meth:`_try_period`
        on instance ``rows[k]`` under period ``targets[k]``; rows whose
        placement becomes infeasible are dropped from the active set and
        simply stop being updated.  Returns ``(ok, assignments)`` where
        ``ok[k]`` says whether row ``k`` placed every task.
        """
        state = template.subset(rows)
        backend = get_backend()
        alive = np.ones(rows.size, dtype=bool)
        targets_col = targets[:, np.newaxis]
        for task in state.order:
            feasible = state.eligible_mask(task) & (
                state.candidate_exec(task) <= targets_col
            )
            alive &= feasible.any(axis=1)
            if not alive.any():
                break
            order = self.machine_order_batch(state, task, rows)
            # First machine of each row's preference order that satisfies
            # both masks — the batched form of order[ranked[0]], selected
            # by the active kernel backend.
            chosen = backend.first_feasible(order, feasible)
            active = np.flatnonzero(alive)
            state.assign(task, chosen[active], active)
        return alive, state.assignment

    # -- Heuristic API ------------------------------------------------------------------
    def solve_batch(self, instances: Sequence[ProblemInstance]) -> np.ndarray:
        """Bisect all ``R`` instances lock-step; row ``r`` equals the
        sequential :meth:`solve_mapping` on ``instances[r]`` bit for bit.

        Every row keeps its own ``(low, high)`` bracket and converges on
        its own schedule — converged rows leave the active set while the
        rest keep bisecting, and each round's feasibility checks run as
        one vectorized greedy pass over the still-active rows.
        """
        template = BatchAssignmentState(instances)
        self.prepare_batch(instances, template)
        if self._period_bounds is None:  # prepare_batch overridden without super()
            self._period_bounds = np.asarray(
                [worst_case_period_bound(inst) for inst in instances], dtype=np.float64
            )
        num_tasks = template.assignment.shape[1]
        all_rows = np.arange(template.num_rows)
        high = self._period_bounds.copy()
        low = np.zeros_like(high)
        best = np.full((template.num_rows, num_tasks), -1, dtype=np.int64)

        def attempt(rows: np.ndarray, targets: np.ndarray) -> np.ndarray:
            ok, assignments = self._try_period_batch(template, rows, targets)
            best[rows[ok]] = assignments[ok]
            return ok

        ok = attempt(all_rows, high)
        if not ok.all():
            # Defensive fallback mirroring the sequential driver: the
            # feasibility guard makes the worst-case bound feasible
            # whenever m >= p, but double it once just in case.
            retry = all_rows[~ok]
            high[retry] *= 2.0
            attempt(retry, high[retry])
        iterations = np.zeros(template.num_rows, dtype=np.int64)
        while True:
            if self.integer_search:
                active = high - low > 1.0
            else:
                active = high - low > self.rel_tol * np.maximum(high, 1.0)
            active &= iterations < self.max_iterations
            rows = all_rows[active]
            if rows.size == 0:
                break
            if self.integer_search:
                mid = low[rows] + np.floor((high[rows] - low[rows]) / 2.0)
            else:
                mid = (low[rows] + high[rows]) / 2.0
            iterations[rows] += 1
            ok = attempt(rows, mid)
            high[rows[ok]] = mid[ok]
            low[rows[~ok]] = mid[~ok]
        if (best < 0).any():
            raise ReproError(
                "batched binary search failed to place some repetitions even "
                "at the doubled worst-case bound"
            )
        return best

    def solve_mapping(
        self, instance: ProblemInstance, rng: np.random.Generator | None = None
    ) -> tuple[Mapping, int, dict]:
        self.prepare(instance)
        low = 0.0
        # The base prepare() caches the bound; recompute lazily if a
        # subclass overrode prepare() without extending it.
        if self._period_bound is None:
            self._period_bound = worst_case_period_bound(instance)
        high = self._period_bound
        best = self._try_period(instance, high)
        if best is None:
            # The guard in AssignmentState guarantees eligibility whenever a
            # specialized mapping exists, so the upper bound is always
            # feasible; keep a defensive fallback nonetheless.
            high *= 2.0
            best = self._try_period(instance, high)
        iterations = 0
        while iterations < self.max_iterations:
            if self.integer_search:
                if high - low <= 1.0:
                    break
                mid = low + math.floor((high - low) / 2.0)
            else:
                if high - low <= self.rel_tol * max(high, 1.0):
                    break
                mid = (low + high) / 2.0
            iterations += 1
            candidate = self._try_period(instance, mid)
            if candidate is not None:
                best = candidate
                high = mid
            else:
                low = mid
        assert best is not None
        return best, iterations, {"final_low": low, "final_high": high}


@register_heuristic
class RankBinarySearchHeuristic(BinarySearchHeuristic):
    """Paper heuristic H2: binary search with per-machine rank priority."""

    name = "H2"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._ranks: np.ndarray | None = None
        self._ranks_stack: np.ndarray | None = None

    def prepare(self, instance: ProblemInstance) -> None:
        super().prepare(instance)
        w = instance.processing_times
        # rank[i, u] = position of task i when the column w[:, u] is sorted
        # ascending (0 = the task this machine performs fastest).
        order = np.argsort(w, axis=0, kind="stable")
        ranks = np.empty_like(order)
        n = w.shape[0]
        rows = np.arange(n)
        for u in range(w.shape[1]):
            ranks[order[:, u], u] = rows
        self._ranks = ranks

    def prepare_batch(
        self, instances, state: BatchAssignmentState
    ) -> None:
        super().prepare_batch(instances, state)
        # Stacked rank matrices: a stable argsort along the task axis of
        # the (R, n, m) stack equals R independent per-instance argsorts.
        order = np.argsort(state.w, axis=1, kind="stable")
        ranks = np.empty_like(order)
        np.put_along_axis(
            ranks,
            order,
            np.broadcast_to(
                np.arange(order.shape[1])[np.newaxis, :, np.newaxis], order.shape
            ),
            axis=1,
        )
        self._ranks_stack = ranks

    def machine_order(
        self, instance: ProblemInstance, state: AssignmentState, task: int
    ) -> np.ndarray:
        assert self._ranks is not None
        w = instance.processing_times
        # lexsort: last key is primary — rank, then w[task, u], then u.
        return np.lexsort(
            (np.arange(instance.num_machines), w[task, :], self._ranks[task, :])
        )

    def machine_order_batch(
        self, state: BatchAssignmentState, task: int, rows: np.ndarray
    ) -> np.ndarray:
        assert self._ranks_stack is not None
        num_machines = state.num_machines
        indices = np.broadcast_to(
            np.arange(num_machines), (rows.size, num_machines)
        )
        return np.lexsort(
            (indices, state.w[:, task, :], self._ranks_stack[rows, task, :])
        )


@register_heuristic
class HeterogeneityBinarySearchHeuristic(BinarySearchHeuristic):
    """Paper heuristic H3: binary search preferring heterogeneous machines."""

    name = "H3"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._heterogeneity: np.ndarray | None = None
        self._heterogeneity_stack: np.ndarray | None = None

    def prepare(self, instance: ProblemInstance) -> None:
        super().prepare(instance)
        self._heterogeneity = instance.platform.machine_heterogeneity()

    def prepare_batch(
        self, instances, state: BatchAssignmentState
    ) -> None:
        super().prepare_batch(instances, state)
        # Stacked per-instance (not axis-reduced on the stack) so each
        # row's std reduction is the exact float sequence of the scalar
        # path — heterogeneity feeds a sort key, where one ulp flips ties.
        self._heterogeneity_stack = np.stack(
            [inst.platform.machine_heterogeneity() for inst in instances]
        )

    def machine_order(
        self, instance: ProblemInstance, state: AssignmentState, task: int
    ) -> np.ndarray:
        assert self._heterogeneity is not None
        # Most heterogeneous first; break ties with the smaller projected
        # completion time, then the machine index for determinism.
        return np.lexsort(
            (
                np.arange(instance.num_machines),
                state.candidate_exec_vector(task),
                -self._heterogeneity,
            )
        )

    def machine_order_batch(
        self, state: BatchAssignmentState, task: int, rows: np.ndarray
    ) -> np.ndarray:
        assert self._heterogeneity_stack is not None
        num_machines = state.num_machines
        indices = np.broadcast_to(
            np.arange(num_machines), (rows.size, num_machines)
        )
        return np.lexsort(
            (indices, state.candidate_exec(task), -self._heterogeneity_stack[rows])
        )
