"""Exception hierarchy for :mod:`repro`.

All library-specific errors derive from :class:`ReproError` so that callers
can catch every failure raised by the package with a single ``except``
clause while still being able to discriminate finer categories.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidApplicationError",
    "InvalidPlatformError",
    "InvalidFailureModelError",
    "InvalidInstanceError",
    "InvalidMappingError",
    "MappingRuleViolation",
    "InfeasibleProblemError",
    "SolverError",
    "SolverUnavailableError",
    "SimulationError",
    "ExperimentError",
    "ServiceOverloadedError",
]


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` package."""


class InvalidApplicationError(ReproError):
    """The task graph violates the applicative framework of the paper.

    Raised for cyclic graphs, forks (a task with more than one successor),
    inconsistent task types, duplicate task identifiers, or empty
    applications.
    """


class InvalidPlatformError(ReproError):
    """The platform description is malformed.

    Raised for non-positive processing times, shape mismatches between the
    ``w`` matrix and the declared numbers of tasks and machines, or empty
    platforms.
    """


class InvalidFailureModelError(ReproError):
    """The failure specification is malformed.

    Failure rates must satisfy ``0 <= f[i, u] < 1`` for every (task,
    machine) couple; a rate of ``1`` would mean the task can never succeed
    on that machine, which makes the expected product count diverge.
    """


class InvalidInstanceError(ReproError):
    """Application, platform and failure model are mutually inconsistent."""


class InvalidMappingError(ReproError):
    """A mapping object is structurally invalid.

    Examples: a task mapped to a machine index outside the platform, a task
    left unmapped, or an unknown task identifier.
    """


class MappingRuleViolation(InvalidMappingError):
    """A structurally valid mapping violates the requested mapping rule.

    The rule is one of *one-to-one*, *specialized* or *general* as defined
    in Section 4.2 of the paper.
    """


class InfeasibleProblemError(ReproError):
    """No mapping satisfying the requested rule exists for the instance.

    Typical causes: fewer machines than tasks for a one-to-one mapping, or
    fewer machines than task types for a specialized mapping.
    """


class SolverError(ReproError):
    """An exact solver failed to produce a solution."""


class SolverUnavailableError(SolverError):
    """The requested solver backend is not available in this environment."""


class SimulationError(ReproError):
    """The stochastic micro-factory simulation reached an invalid state."""


class ExperimentError(ReproError):
    """An experiment definition or run is invalid (unknown id, bad config)."""


class ServiceOverloadedError(ReproError):
    """The solve service shed a request under load; retry later.

    Raised server-side by the micro-batcher when its pending-request
    queue is full (the request was never admitted, nothing was solved)
    and client-side on an HTTP 429 response.  ``retry_after_seconds``
    carries the server's ``Retry-After`` hint when one was given.
    """

    def __init__(self, message: str, *, retry_after_seconds: float | None = None):
        super().__init__(message)
        self.retry_after_seconds = retry_after_seconds
