"""Batched, vectorized evaluation of mappings.

The paper's evaluation (Figures 5-12) reruns every heuristic and the
exact solvers over hundreds of randomly drawn instances; scoring one
``(instance, mapping)`` pair at a time in Python loops makes the
experiment runner and the heuristic inner loops dominate wall-clock.
This subsystem provides the NumPy-vectorized counterparts:

* :mod:`repro.batch.evaluation` — score an ``(R, n)`` array of mappings
  against one instance in a handful of NumPy operations
  (:func:`~repro.batch.evaluation.evaluate_batch`), or one/many mappings
  against a stack of structurally identical instances
  (:class:`~repro.batch.evaluation.InstanceStack`), exactly matching the
  scalar :mod:`repro.core.period` path;
* :mod:`repro.batch.incremental` — a :class:`~repro.batch.incremental.MappingEvaluator`
  that keeps the full evaluation of one mapping up to date under
  single-task reassignments, touching only the tasks/machines whose
  contribution actually changes.
"""

from .evaluation import (
    BatchEvaluation,
    InstanceStack,
    batch_critical_machines,
    batch_expected_products,
    batch_machine_periods,
    batch_periods,
    batch_throughputs,
    evaluate_batch,
)
from .incremental import MappingEvaluator, StackMappingEvaluator

__all__ = [
    "BatchEvaluation",
    "InstanceStack",
    "batch_critical_machines",
    "batch_expected_products",
    "batch_machine_periods",
    "batch_periods",
    "batch_throughputs",
    "evaluate_batch",
    "MappingEvaluator",
    "StackMappingEvaluator",
]
