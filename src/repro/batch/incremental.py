"""Incremental mapping evaluation under single-task reassignment.

Moving one task ``Ti`` from machine ``a(i)`` to machine ``u`` changes the
attempt factor ``F[i, a(i)] = 1 / (1 - f[i, a(i)])``.  Because ``x_j`` is
the product of the attempt factors along the path from ``Tj`` to its
sink, every *upstream* task ``Tj`` (every task whose path to the sink
passes through ``Ti``, including ``Ti`` itself) sees its ``x_j`` scaled
by the same ratio ``r = F[i, u] / F[i, a(i)]`` — no other task changes.
A single-task move therefore only touches ``|upstream(i)|`` task
contributions and the machines hosting them, which
:class:`MappingEvaluator` exploits to keep the full evaluation (period,
machine periods, ``x``, critical machines) up to date in vectorized
O(upstream) work instead of re-evaluating from scratch.

This is the building block for local-search procedures and for any loop
that probes many single-task reassignments (e.g. "what is the best
machine for task ``i`` given everything else?", answered in one call by
:meth:`MappingEvaluator.candidate_periods`).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from ..backend import get_backend
from ..core.instance import ProblemInstance, shared_successor_table
from ..core.mapping import Mapping
from ..core.period import MappingEvaluation
from ..exceptions import InvalidMappingError
from .evaluation import _graph_arrays

__all__ = ["MappingEvaluator", "StackMappingEvaluator"]


def _coerce_assignment(
    instance: ProblemInstance, mapping: Mapping | np.ndarray
) -> np.ndarray:
    """Validated ``(n,)`` int64 copy of an allocation vector."""
    arr = mapping.as_array if isinstance(mapping, Mapping) else np.asarray(mapping)
    arr = arr.astype(np.int64, copy=True)
    if arr.shape != (instance.num_tasks,):
        raise InvalidMappingError(
            f"assignment must have shape ({instance.num_tasks},), got {arr.shape}"
        )
    if arr.size and (arr.min() < 0 or arr.max() >= instance.num_machines):
        raise InvalidMappingError(
            f"assignment uses machine indices outside 0..{instance.num_machines - 1}"
        )
    return arr


def _upstream_sets(instance: ProblemInstance) -> list[np.ndarray]:
    """For each task, the array of tasks whose sink path passes through it.

    Entry ``i`` lists ``i`` first, then every transitive predecessor of
    ``i``, in ascending index order after the leading ``i``.
    """
    app = instance.application
    collected: dict[int, list[int]] = {}
    for task in app.topological_order():
        members: list[int] = []
        for pred in app.predecessors(task):
            members.extend(collected[pred])
        members.sort()
        collected[task] = [task] + members
    return [np.asarray(collected[i], dtype=np.int64) for i in range(instance.num_tasks)]


class MappingEvaluator:
    """Evaluation of one mapping that stays current under task moves.

    Parameters
    ----------
    instance:
        The problem instance.
    mapping:
        Initial allocation (a :class:`~repro.core.Mapping` or an
        assignment vector).

    Notes
    -----
    Updates are multiplicative, so a very long chain of moves can drift a
    few ulps from a fresh evaluation; call :meth:`refresh` to resync when
    exact agreement with :func:`repro.core.period.evaluate` matters after
    thousands of moves.
    """

    __slots__ = (
        "instance",
        "_assignment",
        "_x",
        "_contrib",
        "_periods",
        "_upstream",
        "_f",
        "_w",
    )

    def __init__(self, instance: ProblemInstance, mapping: Mapping | np.ndarray):
        self.instance = instance
        self._assignment = _coerce_assignment(instance, mapping)
        self._f = instance.failure_rates
        self._w = instance.processing_times
        self._upstream = _upstream_sets(instance)
        self.refresh()

    # -- state ------------------------------------------------------------------
    def refresh(self) -> None:
        """Recompute ``x``, contributions and periods from scratch.

        Runs as a depth-1 stack through the active kernel backend — the
        same kernels the batched evaluators use, so the scalar and
        stacked states stay bit-for-bit interchangeable.
        """
        backend = get_backend()
        order, succ = _graph_arrays(self.instance.application)
        n = self.instance.num_tasks
        tasks = np.arange(n)
        f_used = self._f[tasks, self._assignment]
        x = backend.propagate_x(order, succ, f_used[np.newaxis, :])[0]
        self._x = x
        self._contrib = x * self._w[tasks, self._assignment]
        self._periods = backend.scatter_periods(
            self._assignment[np.newaxis, :],
            self._contrib[np.newaxis, :],
            self.instance.num_machines,
        )[0]

    def reassign(self, mapping: Mapping | np.ndarray) -> None:
        """Replace the whole allocation and resync state from scratch.

        The per-task ``move`` path is the right tool for *one* changed
        task; when a caller swaps in an unrelated mapping (the live
        replanner deploying a cached or cold plan), a validated
        assignment swap plus one :meth:`refresh` is cheaper and — unlike
        a chain of moves — lands in exactly the numeric state a freshly
        constructed evaluator would hold, because :meth:`refresh`
        recomputes everything from the assignment alone.  Only the
        upstream sets (fixed by the precedence graph, O(n²) to rebuild)
        are carried over.
        """
        self._assignment = _coerce_assignment(self.instance, mapping)
        self.refresh()

    @property
    def assignment(self) -> np.ndarray:
        """Copy of the current allocation vector."""
        return self._assignment.copy()

    @property
    def mapping(self) -> Mapping:
        """The current allocation as an immutable :class:`~repro.core.Mapping`."""
        return Mapping(self._assignment, self.instance.num_machines)

    @property
    def expected_products(self) -> np.ndarray:
        """Copy of the current ``x`` vector."""
        return self._x.copy()

    @property
    def machine_periods(self) -> np.ndarray:
        """Copy of the current per-machine period vector."""
        return self._periods.copy()

    @property
    def period(self) -> float:
        """Current application period."""
        return float(self._periods.max())

    @property
    def throughput(self) -> float:
        """Current throughput ``1 / period``."""
        p = self.period
        return math.inf if p == 0.0 else 1.0 / p

    def critical_machines(self, *, rel_tol: float = 1e-9) -> tuple[int, ...]:
        """Machines currently attaining the period."""
        top = self._periods.max()
        if top == 0.0:
            return ()
        return tuple(
            int(u) for u in np.flatnonzero(self._periods >= top * (1.0 - rel_tol))
        )

    def evaluation(self) -> MappingEvaluation:
        """Immutable snapshot matching :func:`repro.core.period.evaluate`."""
        return MappingEvaluation(
            mapping=self.mapping,
            period=self.period,
            throughput=self.throughput,
            machine_periods=tuple(float(v) for v in self._periods),
            expected_products=tuple(float(v) for v in self._x),
            critical_machines=self.critical_machines(),
        )

    # -- delta queries -----------------------------------------------------------
    def _check_move(self, task: int, machine: int) -> None:
        if not 0 <= task < self.instance.num_tasks:
            raise InvalidMappingError(f"unknown task index {task}")
        if not 0 <= machine < self.instance.num_machines:
            raise InvalidMappingError(f"unknown machine index {machine}")

    def candidate_period(self, task: int, machine: int) -> float:
        """Period the mapping would have with ``task`` moved to ``machine``.

        Does not mutate the evaluator; costs O(upstream(task) + m).
        """
        self._check_move(task, machine)
        old_machine = int(self._assignment[task])
        if machine == old_machine:
            return self.period
        ups = self._upstream[task]
        ratio = (1.0 - self._f[task, old_machine]) / (1.0 - self._f[task, machine])
        delta = np.zeros(self.instance.num_machines, dtype=np.float64)
        old_c = self._contrib[ups]
        np.add.at(delta, self._assignment[ups], -old_c)
        # Upstream contributions scale by the ratio; the moved task also
        # changes machine (new w) in addition to the scaling.
        np.add.at(delta, self._assignment[ups[1:]], old_c[1:] * ratio)
        delta[machine] += self._x[task] * ratio * self._w[task, machine]
        return float((self._periods + delta).max())

    def candidate_periods(self, task: int) -> np.ndarray:
        """Period for every possible destination of ``task``, vectorized.

        Entry ``u`` equals ``candidate_period(task, u)``; entry
        ``a(task)`` is the current period.  Costs O(upstream(task) + m^2),
        far cheaper than ``m`` full evaluations.
        """
        self._check_move(task, 0)
        backend = get_backend()
        m = self.instance.num_machines
        old_machine = int(self._assignment[task])
        ups = self._upstream[task]
        old_c = self._contrib[ups]
        removed = np.zeros((1, m), dtype=np.float64)
        backend.scatter_add_rows(
            removed, self._assignment[ups][np.newaxis, :], old_c[np.newaxis, :]
        )
        base = self._periods[np.newaxis, :] - removed
        # Unscaled re-add pattern for the unmoved upstream tasks.
        rest = np.zeros((1, m), dtype=np.float64)
        backend.scatter_add_rows(
            rest, self._assignment[ups[1:]][np.newaxis, :], old_c[1:][np.newaxis, :]
        )
        ratios = (1.0 - self._f[task, old_machine]) / (1.0 - self._f[task, :])
        return backend.probe_candidates(
            base,
            rest,
            ratios[np.newaxis, :],
            self._x[task : task + 1],
            self._w[task][np.newaxis, :],
        )[0]

    def best_move(
        self,
        *,
        allowed: np.ndarray | None = None,
        rel_tol: float = 1e-12,
    ) -> tuple[int, int, float] | None:
        """The single-task move that lowers the period the most, if any.

        Scans every (task, destination) pair through
        :meth:`candidate_periods` and returns ``(task, machine,
        new_period)`` for the best strictly improving move, or ``None``
        when the mapping is a local optimum of the single-move
        neighbourhood.  Ties are broken by lowest task index, then lowest
        machine index, so the result is deterministic.

        Parameters
        ----------
        allowed:
            Optional boolean ``(n, m)`` mask restricting the destinations
            considered for each task (e.g. to the moves that keep a
            mapping specialized).  ``None`` allows every destination.
        rel_tol:
            A move must beat the current period by this relative margin to
            count as improving — the guard that keeps local-search loops
            from cycling on floating-point noise.
        """
        n, m = self.instance.num_tasks, self.instance.num_machines
        if allowed is not None:
            allowed = np.asarray(allowed, dtype=bool)
            if allowed.shape != (n, m):
                raise InvalidMappingError(
                    f"allowed mask must have shape ({n}, {m}), got {allowed.shape}"
                )
        current = self.period
        threshold = current * (1.0 - rel_tol)
        best: tuple[int, int, float] | None = None
        for task in range(n):
            candidates = self.candidate_periods(task)
            if allowed is not None:
                candidates = np.where(allowed[task], candidates, np.inf)
            machine = int(np.argmin(candidates))
            value = float(candidates[machine])
            if value < threshold and (best is None or value < best[2]):
                best = (task, machine, value)
        return best

    # -- mutation ---------------------------------------------------------------
    def move(self, task: int, machine: int) -> float:
        """Reassign ``task`` to ``machine`` and return the new period.

        Only the upstream tasks' ``x``/contributions and the machines
        hosting them are touched (vectorized O(upstream)).
        """
        self._check_move(task, machine)
        old_machine = int(self._assignment[task])
        if machine == old_machine:
            return self.period
        ups = self._upstream[task]
        ratio = (1.0 - self._f[task, old_machine]) / (1.0 - self._f[task, machine])
        old_c = self._contrib[ups]
        np.add.at(self._periods, self._assignment[ups], -old_c)
        self._x[ups] *= ratio
        self._assignment[task] = machine
        self._contrib[ups] = self._x[ups] * self._w[ups, self._assignment[ups]]
        np.add.at(self._periods, self._assignment[ups], self._contrib[ups])
        return self.period


class StackMappingEvaluator:
    """``R`` independent :class:`MappingEvaluator` states advanced lock-step.

    One evaluator per repetition of an instance stack, sharing the
    precedence graph (and therefore the upstream sets) but each with its
    own ``w``/``f`` matrices and mapping.  The batched probe
    :meth:`candidate_periods` answers "best destination for task ``i``"
    for *every* row in one vectorized pass — the building block that lets
    local-search refinement run across a whole repetition block without
    re-entering Python per repetition.

    Row ``r``'s arithmetic (including the ``np.add.at`` scatter order)
    mirrors a scalar :class:`MappingEvaluator` on instance ``r``
    operation for operation, so probes and moves are bit-for-bit
    identical to ``R`` sequential evaluators.
    """

    __slots__ = (
        "instances",
        "_assignment",
        "_x",
        "_contrib",
        "_periods",
        "_upstream",
        "_f",
        "_w",
        "_rows",
    )

    def __init__(
        self,
        instances: Sequence[ProblemInstance],
        mappings: np.ndarray,
    ):
        if not instances:
            raise InvalidMappingError("cannot evaluate an empty instance stack")
        first = instances[0]
        n, m = first.num_tasks, first.num_machines
        shared_successor_table(instances)
        arr = np.asarray(mappings, dtype=np.int64).copy()
        if arr.shape != (len(instances), n):
            raise InvalidMappingError(
                f"mappings must have shape ({len(instances)}, {n}), got {arr.shape}"
            )
        if arr.size and (arr.min() < 0 or arr.max() >= m):
            raise InvalidMappingError(
                f"mappings use machine indices outside 0..{m - 1}"
            )
        self.instances = tuple(instances)
        self._assignment = arr
        self._w = np.stack([inst.processing_times for inst in instances])
        self._f = np.stack([inst.failure_rates for inst in instances])
        self._upstream = _upstream_sets(first)
        self._rows = np.arange(len(instances))
        self.refresh()

    # -- state ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Stack depth ``R``."""
        return int(self._assignment.shape[0])

    @property
    def num_machines(self) -> int:
        """Platform size ``m``."""
        return int(self._w.shape[2])

    @property
    def assignment(self) -> np.ndarray:
        """Copy of the current ``(R, n)`` allocation array."""
        return self._assignment.copy()

    @property
    def periods(self) -> np.ndarray:
        """Current per-row application periods (``(R,)``)."""
        return self._periods.max(axis=1)

    @property
    def machine_periods(self) -> np.ndarray:
        """Copy of the current ``(R, m)`` machine-period matrix."""
        return self._periods.copy()

    def refresh(self) -> None:
        """Recompute every row's ``x``, contributions and periods."""
        backend = get_backend()
        order, succ = _graph_arrays(self.instances[0].application)
        n = self._assignment.shape[1]
        tasks = np.arange(n)
        f_used = self._f[self._rows[:, np.newaxis], tasks[np.newaxis, :], self._assignment]
        x = backend.propagate_x(order, succ, f_used)
        self._x = x
        w_used = self._w[self._rows[:, np.newaxis], tasks[np.newaxis, :], self._assignment]
        self._contrib = x * w_used
        self._periods = backend.scatter_periods(
            self._assignment, self._contrib, self.num_machines
        )

    def subset(self, rows: np.ndarray) -> "StackMappingEvaluator":
        """A new evaluator holding only ``rows``, state carried over as is.

        Every per-row array is sliced (not recomputed), so row ``rows[j]``
        of this evaluator and row ``j`` of the subset are in *identical*
        numeric state — probes and moves on the subset are bit-for-bit
        what the full stack would produce for those rows, because every
        batched operation here is row-independent.  This is what lets
        local-search descents drop converged rows instead of paying
        full-stack probes to the end (see
        :func:`repro.heuristics.local_search.refine_specialized_batch`).
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.ndim != 1 or rows.size == 0:
            raise InvalidMappingError("subset needs a non-empty 1-d row selection")
        if rows.min() < 0 or rows.max() >= self.num_rows:
            raise InvalidMappingError(
                f"subset rows outside 0..{self.num_rows - 1}"
            )
        clone = object.__new__(StackMappingEvaluator)
        clone.instances = tuple(self.instances[int(row)] for row in rows)
        clone._assignment = self._assignment[rows]
        clone._x = self._x[rows]
        clone._contrib = self._contrib[rows]
        clone._periods = self._periods[rows]
        clone._upstream = self._upstream  # shared precedence graph
        clone._f = self._f[rows]
        clone._w = self._w[rows]
        clone._rows = np.arange(rows.size)
        return clone

    # -- batched delta queries -----------------------------------------------------
    def candidate_periods(self, task: int) -> np.ndarray:
        """Rowwise :meth:`MappingEvaluator.candidate_periods` (``(R, m)``).

        Entry ``[r, u]`` is row ``r``'s period with ``task`` moved to
        machine ``u``; entry ``[r, a_r(task)]`` is row ``r``'s current
        period.  One vectorized pass over all rows and destinations.
        """
        if not 0 <= task < self._assignment.shape[1]:
            raise InvalidMappingError(f"unknown task index {task}")
        backend = get_backend()
        m = self.num_machines
        old_machine = self._assignment[:, task]
        ups = self._upstream[task]
        old_c = self._contrib[:, ups]
        removed = np.zeros((self.num_rows, m), dtype=np.float64)
        backend.scatter_add_rows(removed, self._assignment[:, ups], old_c)
        base = self._periods - removed
        # Unscaled re-add pattern for the unmoved upstream tasks.
        rest = np.zeros((self.num_rows, m), dtype=np.float64)
        backend.scatter_add_rows(rest, self._assignment[:, ups[1:]], old_c[:, 1:])
        ratios = (1.0 - self._f[self._rows, task, old_machine])[:, np.newaxis] / (
            1.0 - self._f[:, task, :]
        )
        # Fused probe: max over destinations without materialising the
        # (R, m, m) candidate tensor on compiled backends.
        return backend.probe_candidates(
            base, rest, ratios, self._x[:, task], self._w[:, task, :]
        )

    def best_moves(
        self,
        *,
        allowed: np.ndarray | None = None,
        rel_tol: float = 1e-12,
        active: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Rowwise :meth:`MappingEvaluator.best_move` in one batched scan.

        Returns ``(tasks, machines, has_move)``: row ``r``'s best strictly
        improving single-task move is ``tasks[r] -> machines[r]`` when
        ``has_move[r]``, with the same lowest-task / lowest-machine tie
        breaking as the scalar scan.  ``allowed`` optionally masks
        destinations per row (``(R, n, m)`` boolean); ``active`` restricts
        the probe work to a subset of rows (others report no move).
        """
        R, n = self._assignment.shape
        if allowed is not None:
            allowed = np.asarray(allowed, dtype=bool)
            if allowed.shape != (R, n, self.num_machines):
                raise InvalidMappingError(
                    f"allowed mask must have shape ({R}, {n}, {self.num_machines}), "
                    f"got {allowed.shape}"
                )
        best_value = np.full(R, np.inf)
        best_task = np.zeros(R, dtype=np.int64)
        best_machine = np.zeros(R, dtype=np.int64)
        threshold = self.periods * (1.0 - rel_tol)
        for task in range(n):
            candidates = self.candidate_periods(task)
            if allowed is not None:
                candidates = np.where(allowed[:, task, :], candidates, np.inf)
            machine = np.argmin(candidates, axis=1)
            value = candidates[self._rows, machine]
            # Strict improvement over the running best keeps the scalar
            # scan's first-task tie break.
            better = value < best_value
            if active is not None:
                better &= active
            best_value[better] = value[better]
            best_task[better] = task
            best_machine[better] = machine[better]
        has_move = best_value < threshold
        if active is not None:
            has_move &= active
        return best_task, best_machine, has_move

    # -- mutation ---------------------------------------------------------------
    def move(self, row: int, task: int, machine: int) -> None:
        """Reassign ``task`` to ``machine`` in one row (scalar delta update).

        Rowwise moves differ in their upstream sets, so applying them is
        per-row work — the cost that matters, the candidate scan, is the
        batched :meth:`best_moves`.
        """
        old_machine = int(self._assignment[row, task])
        if machine == old_machine:
            return
        ups = self._upstream[task]
        ratio = (1.0 - self._f[row, task, old_machine]) / (
            1.0 - self._f[row, task, machine]
        )
        old_c = self._contrib[row, ups]
        np.add.at(self._periods[row], self._assignment[row, ups], -old_c)
        self._x[row, ups] *= ratio
        self._assignment[row, task] = machine
        self._contrib[row, ups] = self._x[row, ups] * self._w[
            row, ups, self._assignment[row, ups]
        ]
        np.add.at(self._periods[row], self._assignment[row, ups], self._contrib[row, ups])
