"""Vectorized period / throughput evaluation of mapping batches.

The scalar path in :mod:`repro.core.period` scores one ``(instance,
mapping)`` pair per call; this module scores an ``(R, n)`` array of ``R``
mappings against one instance (or against a stack of ``R`` structurally
identical instances) in a handful of NumPy operations:

* ``x`` propagation walks the in-tree once (``n`` steps), each step
  updating all ``R`` rows at once;
* per-machine period accumulation is a single ``np.add.at`` scatter that
  visits tasks in ascending order per row — the exact accumulation order
  of the scalar kernel, so batch results are bit-for-bit identical to
  ``R`` scalar :func:`repro.core.period.evaluate` calls;
* critical machines fall out of one vectorized comparison against the
  per-row maximum.

The batch kernels are the hot path of the experiment runner and of any
search procedure that scores many candidate mappings per instance.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..backend import get_backend
from ..core.application import Application
from ..core.failure import FailureModel
from ..core.instance import ProblemInstance
from ..core.mapping import Mapping
from ..core.period import MappingEvaluation
from ..core.platform import Platform
from ..exceptions import InvalidInstanceError, InvalidMappingError

__all__ = [
    "BatchEvaluation",
    "InstanceStack",
    "as_assignment_array",
    "batch_expected_products",
    "batch_machine_periods",
    "batch_periods",
    "batch_throughputs",
    "batch_critical_machines",
    "evaluate_batch",
]

#: Relative tolerance used to extract critical machines, matching the
#: scalar path in :mod:`repro.core.period`.
CRITICAL_REL_TOL = 1e-9


def as_assignment_array(
    mappings: Sequence[Mapping] | Sequence[Sequence[int]] | np.ndarray,
    *,
    num_tasks: int,
    num_machines: int,
) -> np.ndarray:
    """Coerce mappings into a validated ``(R, n)`` int64 assignment array.

    Accepts a sequence of :class:`~repro.core.Mapping`, a sequence of
    assignment vectors, a single ``(n,)`` vector (promoted to ``R=1``) or
    an ``(R, n)`` array.
    """
    if isinstance(mappings, np.ndarray):
        arr = mappings.astype(np.int64, copy=False)
    elif len(mappings) > 0 and isinstance(mappings[0], Mapping):
        arr = np.stack([m.as_array for m in mappings])
    else:
        arr = np.asarray(mappings, dtype=np.int64)
    if arr.ndim == 1:
        arr = arr[np.newaxis, :]
    if arr.ndim != 2 or arr.shape[0] == 0:
        raise InvalidMappingError(
            f"expected an (R, n) assignment array, got shape {arr.shape}"
        )
    if arr.shape[1] != num_tasks:
        raise InvalidMappingError(
            f"assignments cover {arr.shape[1]} tasks but the instance has {num_tasks}"
        )
    if arr.size and (arr.min() < 0 or arr.max() >= num_machines):
        raise InvalidMappingError(
            f"assignments use machine indices outside 0..{num_machines - 1}"
        )
    return arr


def _graph_arrays(application: Application) -> tuple[np.ndarray, np.ndarray]:
    """``(order, succ)`` arrays driving the backend's ``x`` propagation.

    ``order`` is the reverse topological task order; ``succ[t]`` is the
    successor of task ``t`` or -1 at a sink — the array form of the
    graph walk every kernel backend consumes.
    """
    order = np.asarray(application.reverse_topological_order(), dtype=np.int64)
    succ = np.full(application.num_tasks, -1, dtype=np.int64)
    for task in range(application.num_tasks):
        s = application.successor(task)
        if s is not None:
            succ[task] = s
    return order, succ


def _propagate_expected_products(
    application: Application, f_used: np.ndarray
) -> np.ndarray:
    """Backward ``x`` recursion vectorized over rows.

    ``f_used[r, i]`` is the failure rate of task ``i`` under row ``r``'s
    assignment; returns ``x`` of the same shape.  The walk itself runs in
    the active kernel backend (see :mod:`repro.backend`).
    """
    order, succ = _graph_arrays(application)
    return get_backend().propagate_x(order, succ, f_used)


def _expected_products_core(instance: ProblemInstance, assignments: np.ndarray) -> np.ndarray:
    """``x`` propagation for an already-validated ``(R, n)`` array."""
    tasks = np.arange(instance.num_tasks)
    f_used = instance.failure_rates[tasks[np.newaxis, :], assignments]
    return _propagate_expected_products(instance.application, f_used)


def batch_expected_products(
    instance: ProblemInstance, assignments: np.ndarray
) -> np.ndarray:
    """The ``(R, n)`` matrix of expected products per task and mapping.

    Row ``r`` equals :func:`repro.core.period.expected_products` for the
    ``r``-th assignment.
    """
    assignments = as_assignment_array(
        assignments, num_tasks=instance.num_tasks, num_machines=instance.num_machines
    )
    return _expected_products_core(instance, assignments)


def _scatter_periods(
    assignments: np.ndarray, contributions: np.ndarray, num_machines: int
) -> np.ndarray:
    """Row-wise segment sum of task contributions into machine periods.

    Every backend visits the tasks of each row in ascending order — the
    same accumulation order as the scalar kernel, keeping results
    bit-for-bit identical.
    """
    return get_backend().scatter_periods(assignments, contributions, num_machines)


def _machine_periods_core(
    instance: ProblemInstance, assignments: np.ndarray, x: np.ndarray
) -> np.ndarray:
    """Per-machine periods for an already-validated array and its ``x``."""
    tasks = np.arange(instance.num_tasks)
    w_used = instance.processing_times[tasks[np.newaxis, :], assignments]
    return _scatter_periods(assignments, x * w_used, instance.num_machines)


def batch_machine_periods(
    instance: ProblemInstance, assignments: np.ndarray
) -> np.ndarray:
    """The ``(R, m)`` matrix of per-machine periods, one row per mapping."""
    assignments = as_assignment_array(
        assignments, num_tasks=instance.num_tasks, num_machines=instance.num_machines
    )
    x = _expected_products_core(instance, assignments)
    return _machine_periods_core(instance, assignments, x)


def batch_periods(instance: ProblemInstance, assignments: np.ndarray) -> np.ndarray:
    """The ``(R,)`` vector of application periods (max machine period)."""
    return batch_machine_periods(instance, assignments).max(axis=1)


def _throughputs_from(periods: np.ndarray) -> np.ndarray:
    with np.errstate(divide="ignore"):
        return np.where(periods == 0.0, np.inf, np.divide(1.0, periods))


def batch_throughputs(instance: ProblemInstance, assignments: np.ndarray) -> np.ndarray:
    """The ``(R,)`` vector of throughputs ``1 / period`` (inf for period 0)."""
    return _throughputs_from(batch_periods(instance, assignments))


def _critical_mask(machine_periods: np.ndarray) -> np.ndarray:
    """Boolean ``(R, m)`` mask of machines attaining each row's maximum."""
    return get_backend().critical_mask(machine_periods, CRITICAL_REL_TOL)


def batch_critical_machines(
    instance: ProblemInstance, assignments: np.ndarray
) -> np.ndarray:
    """Boolean ``(R, m)`` mask: entry ``[r, u]`` is true when machine ``u``
    attains the period of mapping ``r`` (all-false rows have period 0)."""
    return _critical_mask(batch_machine_periods(instance, assignments))


@dataclass(frozen=True, slots=True)
class BatchEvaluation:
    """Evaluation of ``R`` mappings at once.

    Attributes
    ----------
    assignments:
        The ``(R, n)`` allocation array that was scored.
    num_machines:
        Platform size ``m`` (needed to rebuild :class:`~repro.core.Mapping`).
    expected_products:
        ``(R, n)`` matrix of ``x`` vectors.
    machine_periods:
        ``(R, m)`` matrix of per-machine periods.
    periods:
        ``(R,)`` vector of application periods.
    throughputs:
        ``(R,)`` vector of ``1 / period``.
    critical_mask:
        ``(R, m)`` boolean mask of critical machines.
    """

    assignments: np.ndarray
    num_machines: int
    expected_products: np.ndarray
    machine_periods: np.ndarray
    periods: np.ndarray
    throughputs: np.ndarray
    critical_mask: np.ndarray

    def __len__(self) -> int:
        return int(self.assignments.shape[0])

    def critical_machines(self, index: int) -> tuple[int, ...]:
        """Critical machine indices of the ``index``-th mapping."""
        return tuple(int(u) for u in np.flatnonzero(self.critical_mask[index]))

    def best_index(self) -> int:
        """Index of the mapping with the smallest period (ties: lowest index)."""
        return int(np.argmin(self.periods))

    def evaluation(self, index: int) -> MappingEvaluation:
        """Scalar-style :class:`~repro.core.period.MappingEvaluation` view."""
        return MappingEvaluation(
            mapping=Mapping(self.assignments[index], self.num_machines),
            period=float(self.periods[index]),
            throughput=float(self.throughputs[index]),
            machine_periods=tuple(float(v) for v in self.machine_periods[index]),
            expected_products=tuple(float(v) for v in self.expected_products[index]),
            critical_machines=self.critical_machines(index),
        )

    def best(self) -> MappingEvaluation:
        """Full evaluation of the best mapping of the batch."""
        return self.evaluation(self.best_index())


def evaluate_batch(
    instance: ProblemInstance,
    mappings: Sequence[Mapping] | Sequence[Sequence[int]] | np.ndarray,
) -> BatchEvaluation:
    """Evaluate ``R`` mappings against one instance in one vectorized pass.

    Equivalent to ``[evaluate(instance, m) for m in mappings]`` but ~two
    orders of magnitude faster for large ``R``; results are bit-for-bit
    identical to the scalar path.
    """
    assignments = as_assignment_array(
        mappings, num_tasks=instance.num_tasks, num_machines=instance.num_machines
    )
    x = _expected_products_core(instance, assignments)
    machine_periods = _machine_periods_core(instance, assignments, x)
    periods = machine_periods.max(axis=1)
    return BatchEvaluation(
        assignments=assignments,
        num_machines=instance.num_machines,
        expected_products=x,
        machine_periods=machine_periods,
        periods=periods,
        throughputs=_throughputs_from(periods),
        critical_mask=_critical_mask(machine_periods),
    )


class InstanceStack:
    """A stack of ``S`` structurally identical instances.

    All instances share the same application graph (types and edges) and
    platform size; only the ``w`` and ``f`` matrices differ.  This is
    exactly the shape of a scenario sweep point: ``repetitions`` random
    instances drawn with the same ``(n, p, m)``.  Stacking them lets one
    vectorized pass score a mapping per instance (or one mapping against
    every instance) without re-entering Python per repetition.

    Parameters
    ----------
    application:
        The shared task graph.
    processing_times:
        ``(S, n, m)`` array of per-instance ``w`` matrices.
    failure_rates:
        ``(S, n, m)`` array of per-instance ``f`` matrices.
    """

    __slots__ = ("_app", "_w", "_f")

    def __init__(
        self,
        application: Application,
        processing_times: np.ndarray,
        failure_rates: np.ndarray,
    ) -> None:
        w = np.asarray(processing_times, dtype=np.float64)
        f = np.asarray(failure_rates, dtype=np.float64)
        n = application.num_tasks
        if w.ndim != 3 or w.shape[1] != n:
            raise InvalidInstanceError(
                f"processing_times must have shape (S, {n}, m), got {w.shape}"
            )
        if f.shape != w.shape:
            raise InvalidInstanceError(
                f"failure_rates shape {f.shape} does not match processing_times {w.shape}"
            )
        self._app = application
        self._w = w
        self._f = f

    @classmethod
    def from_instances(
        cls,
        instances: Sequence[ProblemInstance],
        *,
        require_uniform_types: bool = True,
    ) -> "InstanceStack":
        """Stack existing instances, validating shared structure.

        Parameters
        ----------
        require_uniform_types:
            By default every instance must share the full application
            (types *and* edges).  Period evaluation only depends on the
            precedence graph and the per-instance ``w``/``f`` matrices —
            not on task types — so passing ``False`` relaxes the check to
            edges and platform size only.  This is what lets the
            experiment engine stack the repetitions of a sweep point,
            whose random chains share the graph but draw fresh type
            vectors.  In that mode :meth:`instance` reports the *first*
            instance's types and must not be relied on for type-aware
            work (mapping-rule validation, heuristics).
        """
        if not instances:
            raise InvalidInstanceError("cannot stack zero instances")
        first = instances[0]

        def signature(inst: ProblemInstance) -> tuple:
            structural = (
                tuple(sorted(inst.application.graph.edges)),
                inst.num_tasks,
                inst.num_machines,
            )
            if require_uniform_types:
                return (tuple(inst.application.types),) + structural
            return structural

        reference = signature(first)
        for inst in instances[1:]:
            if signature(inst) != reference:
                raise InvalidInstanceError(
                    "instances in a stack must share application structure "
                    "and platform size"
                )
        return cls(
            first.application,
            np.stack([inst.processing_times for inst in instances]),
            np.stack([inst.failure_rates for inst in instances]),
        )

    # -- properties -----------------------------------------------------------
    @property
    def application(self) -> Application:
        """The shared task graph."""
        return self._app

    @property
    def num_instances(self) -> int:
        """Stack depth ``S``."""
        return int(self._w.shape[0])

    @property
    def num_tasks(self) -> int:
        """Number of tasks ``n``."""
        return self._app.num_tasks

    @property
    def num_machines(self) -> int:
        """Number of machines ``m``."""
        return int(self._w.shape[2])

    @property
    def processing_times(self) -> np.ndarray:
        """The ``(S, n, m)`` stack of ``w`` matrices."""
        return self._w

    @property
    def failure_rates(self) -> np.ndarray:
        """The ``(S, n, m)`` stack of ``f`` matrices."""
        return self._f

    def __len__(self) -> int:
        return self.num_instances

    def instance(self, index: int) -> ProblemInstance:
        """Materialise the ``index``-th instance of the stack."""
        return ProblemInstance(
            self._app,
            Platform(self._w[index], types=self._app.types),
            FailureModel(self._f[index]),
        )

    # -- vectorized evaluation ---------------------------------------------------
    def _used(self, assignments: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-(instance, task) used ``w``/``f`` entries for the assignments.

        ``assignments`` may be ``(n,)`` (one mapping scored against every
        instance) or ``(S, n)`` (one mapping per instance).
        """
        arr = np.asarray(assignments, dtype=np.int64)
        if arr.ndim == 1:
            arr = np.broadcast_to(arr, (self.num_instances, self.num_tasks))
        if arr.shape != (self.num_instances, self.num_tasks):
            raise InvalidMappingError(
                f"assignments must have shape ({self.num_instances}, "
                f"{self.num_tasks}) or ({self.num_tasks},), got {arr.shape}"
            )
        if arr.size and (arr.min() < 0 or arr.max() >= self.num_machines):
            raise InvalidMappingError(
                f"assignments use machine indices outside 0..{self.num_machines - 1}"
            )
        rows = np.arange(self.num_instances)[:, np.newaxis]
        tasks = np.arange(self.num_tasks)[np.newaxis, :]
        return arr, self._w[rows, tasks, arr], self._f[rows, tasks, arr]

    def evaluate(self, assignments: np.ndarray) -> BatchEvaluation:
        """Score one mapping per instance (or one mapping for all).

        Row ``s`` of the result equals the scalar evaluation of mapping
        ``assignments[s]`` on instance ``s``.
        """
        arr, w_used, f_used = self._used(assignments)
        x = _propagate_expected_products(self._app, f_used)
        machine_periods = _scatter_periods(arr, x * w_used, self.num_machines)
        periods = machine_periods.max(axis=1)
        return BatchEvaluation(
            assignments=np.ascontiguousarray(arr),
            num_machines=self.num_machines,
            expected_products=x,
            machine_periods=machine_periods,
            periods=periods,
            throughputs=_throughputs_from(periods),
            critical_mask=_critical_mask(machine_periods),
        )

    def periods(self, assignments: np.ndarray) -> np.ndarray:
        """The ``(S,)`` vector of application periods."""
        arr, w_used, f_used = self._used(assignments)
        x = _propagate_expected_products(self._app, f_used)
        return _scatter_periods(arr, x * w_used, self.num_machines).max(axis=1)
