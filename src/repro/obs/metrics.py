"""Unified metrics: counters, gauges, histograms and Prometheus text.

One process-wide :class:`MetricsRegistry` is the single source of truth
for every counter the service layers used to track by hand
(:class:`~repro.service.server.ServiceStats`,
:class:`~repro.service.batcher.BatcherStats`,
:class:`~repro.service.cache.CacheStats`, the session manager's replan
tiers).  The stat classes keep their attribute/`as_dict` surfaces, but
each attribute now *reads* a registry metric instead of owning a field,
so ``/v1/stats`` and ``GET /v1/metrics`` can never disagree.

The exposition format is the Prometheus text format (``# HELP`` /
``# TYPE`` headers, ``name{label="value"} sample`` lines, cumulative
histogram buckets) — scrapable by any Prometheus-compatible collector
without a client-library dependency.

:class:`LatencyReservoir` lives here now (relocated from
``repro.service.metrics``, which remains as a deprecated re-export):
nearest-rank percentiles over a ring buffer are a metric primitive, not
a service detail.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyReservoir",
    "MetricsRegistry",
    "RESERVOIR_SIZE",
    "DEFAULT_BUCKETS",
]

#: Latency samples kept for the ``/v1/stats`` percentiles.
RESERVOIR_SIZE = 512

#: Histogram buckets tuned for solve/replan latencies (seconds).
DEFAULT_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


@dataclass(slots=True)
class LatencyReservoir:
    """Fixed-size reservoir of the most recent request latencies.

    A ring buffer over the last ``size`` samples: O(1) per record, fixed
    memory forever, and the percentiles track *current* behaviour
    instead of averaging this minute's overload away against last
    hour's idle.
    """

    size: int = RESERVOIR_SIZE
    _samples: list[float] = field(default_factory=list)
    _next: int = 0

    def add(self, value: float) -> None:
        if len(self._samples) < self.size:
            self._samples.append(value)
        else:
            self._samples[self._next] = value
        self._next = (self._next + 1) % self.size

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (``0 < q <= 1``); ``0.0`` when empty."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(1, math.ceil(q * len(ordered)))
        return ordered[rank - 1]


class Counter:
    """A monotonically increasing sample.

    Stays an ``int`` as long as only integer amounts are added, so JSON
    payloads built from counter values keep their historical shape.
    """

    __slots__ = ("_value", "_lock")

    def __init__(self):
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        return self._value


class Gauge:
    """A sample that can go anywhere (sizes, high-water marks)."""

    __slots__ = ("_value", "_lock")

    def __init__(self):
        self._value = 0
        self._lock = threading.Lock()

    def set(self, value: int | float) -> None:
        with self._lock:
            self._value = value

    def max(self, value: int | float) -> None:
        """Raise the gauge to ``value`` if it is a new high-water mark."""
        with self._lock:
            if value > self._value:
                self._value = value

    @property
    def value(self) -> int | float:
        return self._value


class Histogram:
    """Cumulative-bucket distribution (Prometheus ``histogram`` type)."""

    __slots__ = ("buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        self.buckets = tuple(sorted(buckets))
        self._counts = [0] * (len(self.buckets) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def bucket_counts(self) -> list[int]:
        """Cumulative counts per bucket boundary (ending with ``+Inf``)."""
        cumulative, total = [], 0
        with self._lock:
            counts = list(self._counts)
        for bucket_count in counts:
            total += bucket_count
            cumulative.append(total)
        return cumulative


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_value(value: int | float) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _label_text(names: tuple[str, ...], values: tuple[str, ...]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(value)}"' for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


class MetricFamily:
    """One named metric and its per-label-set children.

    An unlabeled family proxies the child API (``inc``/``set``/``max``/
    ``observe``/``value``) straight to its single default child, so
    ``registry.counter("x").inc()`` works without a ``labels()`` hop.
    """

    __slots__ = ("name", "help", "kind", "label_names", "_children", "_factory", "_lock")

    def __init__(self, name: str, help_text: str, kind: str, label_names, factory):
        self.name = name
        self.help = help_text
        self.kind = kind
        self.label_names = tuple(label_names)
        self._children: dict[tuple[str, ...], object] = {}
        self._factory = factory
        self._lock = threading.Lock()
        if not self.label_names:
            self._children[()] = factory()

    def labels(self, **labels) -> object:
        """The child tracked under one label-value set (created on demand)."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._factory())
        return child

    def children(self) -> list[tuple[tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())

    # -- unlabeled convenience proxies -------------------------------------------
    def _solo(self):
        if self.label_names:
            raise ValueError(f"metric {self.name!r} is labeled; use .labels()")
        return self._children[()]

    def inc(self, amount: int | float = 1) -> None:
        self._solo().inc(amount)

    def set(self, value: int | float) -> None:
        self._solo().set(value)

    def max(self, value: int | float) -> None:
        self._solo().max(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    @property
    def value(self) -> int | float:
        return self._solo().value

    @property
    def sum(self) -> float:
        return self._solo().sum

    @property
    def count(self) -> int:
        return self._solo().count


class MetricsRegistry:
    """Name → :class:`MetricFamily` table with text exposition.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same family (and raises if the second
    ask disagrees on kind or labels), so independent layers can bind to
    shared series without import-order coupling.
    """

    def __init__(self):
        self._families: dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    def _family(self, name, help_text, kind, label_names, factory) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != tuple(label_names):
                    raise ValueError(
                        f"metric {name!r} already registered as {family.kind} "
                        f"with labels {family.label_names}"
                    )
                return family
            family = MetricFamily(name, help_text, kind, label_names, factory)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str = "", labels=()) -> MetricFamily:
        return self._family(name, help_text, "counter", labels, Counter)

    def gauge(self, name: str, help_text: str = "", labels=()) -> MetricFamily:
        return self._family(name, help_text, "gauge", labels, Gauge)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels=(),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        return self._family(
            name, help_text, "histogram", labels, lambda: Histogram(buckets)
        )

    def families(self) -> list[MetricFamily]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def render(self) -> str:
        """The full registry in Prometheus text exposition format."""
        lines: list[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for values, child in family.children():
                labels = _label_text(family.label_names, values)
                if family.kind == "histogram":
                    cumulative = child.bucket_counts()
                    bounds = [*(f"{b:g}" for b in child.buckets), "+Inf"]
                    for bound, count in zip(bounds, cumulative):
                        bucket_names = family.label_names + ("le",)
                        bucket_values = values + (bound,)
                        bucket_labels = _label_text(bucket_names, bucket_values)
                        lines.append(f"{family.name}_bucket{bucket_labels} {count}")
                    lines.append(
                        f"{family.name}_sum{labels} {_format_value(child.sum)}"
                    )
                    lines.append(f"{family.name}_count{labels} {child.count}")
                else:
                    lines.append(
                        f"{family.name}{labels} {_format_value(child.value)}"
                    )
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict:
        """JSON-ready view of every family (the ``metrics`` stats section)."""
        out: dict[str, dict] = {}
        for family in self.families():
            entry: dict = {"kind": family.kind}
            if family.kind == "histogram":
                entry["samples"] = {
                    _label_text(family.label_names, values) or "": {
                        "count": child.count,
                        "sum": round(child.sum, 6),
                    }
                    for values, child in family.children()
                }
            else:
                entry["samples"] = {
                    _label_text(family.label_names, values) or "": child.value
                    for values, child in family.children()
                }
            out[family.name] = entry
        return out
