"""Unified observability: span tracing, metrics registry, exposition.

The telemetry layer every other subsystem reports into:

* :mod:`~repro.obs.trace` — lightweight span tracer
  (``contextvars``-propagated trace/span ids, explicit hand-off across
  executor threads and pool worker processes, spans appended to a
  :class:`~repro.obs.trace.TraceStore` on the shared
  :class:`~repro.experiments.store.JsonlStore` base).  Off by default;
  enabled via ``--trace PATH`` / ``REPRO_TRACE``.
* :mod:`~repro.obs.metrics` — :class:`~repro.obs.metrics.MetricsRegistry`
  of counters/gauges/histograms with Prometheus text exposition (the
  ``GET /v1/metrics`` body) plus the relocated
  :class:`~repro.obs.metrics.LatencyReservoir`.
* :mod:`~repro.obs.summary` — span-tree aggregation behind
  ``microrepro trace summarize`` (self/total-time hot-path table).
* :mod:`~repro.obs.instrument` — aggregated per-kernel backend timings
  for traced solves.

Deliberately a leaf package (it imports only ``repro.experiments.store``
and, lazily, ``repro.backend``), so the service, DAG, campaign and live
layers can all instrument through it without import cycles.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    RESERVOIR_SIZE,
    Counter,
    Gauge,
    Histogram,
    LatencyReservoir,
    MetricsRegistry,
)
from .summary import format_table, format_tree, load_spans, summarize_spans
from .trace import (
    TRACE_ENV_VAR,
    TraceContext,
    TraceStore,
    activate,
    capture,
    configure,
    current_context,
    disable,
    emit_spans,
    emit_timing,
    request_id_or_new,
    span,
    trace_path,
    tracing_active,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyReservoir",
    "MetricsRegistry",
    "RESERVOIR_SIZE",
    "DEFAULT_BUCKETS",
    "TraceContext",
    "TraceStore",
    "TRACE_ENV_VAR",
    "activate",
    "capture",
    "configure",
    "current_context",
    "disable",
    "emit_spans",
    "emit_timing",
    "request_id_or_new",
    "span",
    "trace_path",
    "tracing_active",
    "format_table",
    "format_tree",
    "load_spans",
    "summarize_spans",
]
