"""Span-timed wrappers for the hot kernel backend.

Per-call spans around kernels would swamp a trace — one solve can make
thousands of kernel calls — so :func:`timed_kernels` wraps the active
:class:`~repro.backend.KernelBackend` with *accumulating* timers and
emits **one** synthetic span per kernel on exit
(``kernel.propagate_x`` etc., with ``calls`` and ``backend`` attrs, via
:func:`repro.obs.trace.emit_timing`).  The wrappers call the wrapped
kernels unchanged, so the bit-for-bit backend contract is untouched;
they are only installed inside already-traced solves
(:func:`repro.service.pool.solve_group_traced`, the traced DAG block
job), never on the default path.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import replace

from .trace import emit_timing, tracing_active

__all__ = ["KERNEL_NAMES", "timed_kernels"]

#: The :class:`~repro.backend.KernelBackend` kernel attributes.
KERNEL_NAMES = (
    "propagate_x",
    "scatter_periods",
    "scatter_add_rows",
    "critical_mask",
    "probe_candidates",
    "first_feasible",
)


class _KernelTimer:
    """Accumulated call counts and seconds per kernel of one backend."""

    __slots__ = ("backend", "calls", "seconds")

    def __init__(self, backend):
        self.backend = backend
        self.calls = dict.fromkeys(KERNEL_NAMES, 0)
        self.seconds = dict.fromkeys(KERNEL_NAMES, 0.0)

    def _timed(self, name: str, kernel):
        def wrapper(*args, **kwargs):
            start = time.perf_counter()
            try:
                return kernel(*args, **kwargs)
            finally:
                self.seconds[name] += time.perf_counter() - start
                self.calls[name] += 1

        return wrapper

    def wrapped(self):
        return replace(
            self.backend,
            **{
                name: self._timed(name, getattr(self.backend, name))
                for name in KERNEL_NAMES
            },
        )

    def emit(self) -> None:
        for name in KERNEL_NAMES:
            if self.calls[name]:
                emit_timing(
                    f"kernel.{name}",
                    self.seconds[name],
                    calls=self.calls[name],
                    backend=self.backend.name,
                )


@contextlib.contextmanager
def timed_kernels():
    """Time the active backend's kernels for the enclosed solve.

    No-op while tracing is inactive.  On exit, emits one aggregated
    span per kernel that was called, parented at the current span.
    """
    if not tracing_active():
        yield
        return
    from ..backend import activate_backend, get_backend

    timer = _KernelTimer(get_backend())
    with activate_backend(timer.wrapped()):
        try:
            yield
        finally:
            timer.emit()
