"""Aggregate a trace file into a hot-path table (``trace summarize``).

Reads the spans of a :class:`~repro.obs.trace.TraceStore` directory (or
a bare ``trace.jsonl`` file), rebuilds the parent/child tree per trace,
and reports per span *name*:

``count``
    How many spans carried the name.
``total``
    Wall-clock seconds inside those spans (children included).
``self``
    Seconds not covered by child spans — where the time actually went.
    Summed over a whole trace, ``self`` reproduces the root span's
    end-to-end latency (up to measurement noise), which is the
    invariant that makes the table trustworthy.

Pure functions over plain dicts, so the CLI, tests and notebooks share
one implementation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

__all__ = ["SpanAggregate", "load_spans", "summarize_spans", "format_table", "format_tree"]


@dataclass(slots=True)
class SpanAggregate:
    """Per-name totals of one trace file."""

    name: str
    count: int = 0
    total_seconds: float = 0.0
    self_seconds: float = 0.0

    @property
    def mean_ms(self) -> float:
        return self.total_seconds / self.count * 1000.0 if self.count else 0.0


def load_spans(path: str | Path) -> list[dict]:
    """Every span record under ``path`` (a trace directory or JSONL file).

    Accepts the store directory ``--trace`` was pointed at, the
    ``trace.jsonl`` inside it, or any bare JSONL file of span records;
    non-span lines are skipped.
    """
    path = Path(path)
    if path.is_dir():
        # Import here keeps this module importable for file-only use.
        from .trace import TraceStore

        return TraceStore(path).spans()
    spans = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and record.get("kind") == "span":
                record = record.get("data", {})
            if isinstance(record, dict) and "span_id" in record and "name" in record:
                spans.append(record)
    return spans


def summarize_spans(spans: list[dict]) -> list[SpanAggregate]:
    """Per-name aggregates, hottest ``self`` time first.

    ``self`` is a span's duration minus its direct children's durations
    (floored at zero — a child that outlives its parent, e.g. a
    deadline-abandoned solve, must not go negative).
    """
    child_seconds: dict[str, float] = {}
    for record in spans:
        parent = record.get("parent_id")
        if parent:
            child_seconds[parent] = child_seconds.get(parent, 0.0) + float(
                record.get("duration", 0.0)
            )
    by_name: dict[str, SpanAggregate] = {}
    for record in spans:
        aggregate = by_name.setdefault(record["name"], SpanAggregate(record["name"]))
        duration = float(record.get("duration", 0.0))
        aggregate.count += 1
        aggregate.total_seconds += duration
        aggregate.self_seconds += max(
            0.0, duration - child_seconds.get(record["span_id"], 0.0)
        )
    return sorted(by_name.values(), key=lambda a: a.self_seconds, reverse=True)


def format_table(aggregates: list[SpanAggregate]) -> str:
    """The ``trace summarize`` hot-path table."""
    if not aggregates:
        return "no spans recorded"
    total_self = sum(a.self_seconds for a in aggregates) or 1.0
    name_width = max(4, max(len(a.name) for a in aggregates))
    lines = [
        f"{'span':<{name_width}}  {'count':>6}  {'total_s':>9}  "
        f"{'self_s':>9}  {'self_%':>6}  {'mean_ms':>8}"
    ]
    for aggregate in aggregates:
        lines.append(
            f"{aggregate.name:<{name_width}}  {aggregate.count:>6}  "
            f"{aggregate.total_seconds:>9.4f}  {aggregate.self_seconds:>9.4f}  "
            f"{aggregate.self_seconds / total_self * 100.0:>6.1f}  "
            f"{aggregate.mean_ms:>8.3f}"
        )
    return "\n".join(lines)


def format_tree(spans: list[dict], trace_id: str | None = None) -> str:
    """An indented span tree of one trace (the newest one by default)."""
    if not spans:
        return "no spans recorded"
    if trace_id is None:
        trace_id = max(spans, key=lambda s: float(s.get("start", 0.0)))["trace_id"]
    trace = [s for s in spans if s.get("trace_id") == trace_id]
    if not trace:
        return f"no spans for trace {trace_id}"
    children: dict[str | None, list[dict]] = {}
    span_ids = {s["span_id"] for s in trace}
    for record in trace:
        parent = record.get("parent_id")
        # A parent emitted by a process whose spans never made it back
        # still gets its orphans shown, hung off the root.
        children.setdefault(parent if parent in span_ids else None, []).append(record)
    for siblings in children.values():
        siblings.sort(key=lambda s: float(s.get("start", 0.0)))
    lines = [f"trace {trace_id}"]

    def walk(parent: str | None, depth: int) -> None:
        for record in children.get(parent, []):
            duration_ms = float(record.get("duration", 0.0)) * 1000.0
            lines.append(
                f"{'  ' * depth}- {record['name']} {duration_ms:.3f} ms"
                f" [{record['span_id']}]"
            )
            walk(record["span_id"], depth + 1)

    walk(None, 1)
    return "\n".join(lines)
