"""Lightweight span tracing across tasks, threads and worker processes.

A *span* is one timed operation: ``{trace_id, span_id, parent_id, name,
start, duration, ...attrs}``.  Spans form a tree per trace — an HTTP
request's root span parents the batcher group span, which parents the
pool round-trip, which parents the worker-side solve span — and the
whole tree shares one ``trace_id`` even though its spans were produced
on the event loop, on executor threads and inside pool worker
processes.

Propagation model
-----------------
* **Within a process**, the current :class:`TraceContext` lives in a
  :mod:`contextvars` variable: ``async`` tasks inherit it at creation,
  and :func:`span` stacks child contexts automatically.
* **Across executor threads** (``run_in_executor`` does *not* copy
  context) and **across the process boundary**, the caller passes the
  picklable :class:`TraceContext` explicitly and the callee re-enters
  it with :func:`activate` — see
  :func:`repro.service.pool.solve_group_traced`.
* **Out of worker processes**: a worker cannot append to the parent's
  trace file, so it records spans into an in-memory buffer
  (:func:`capture`) and returns them with its result; the parent
  forwards them with :func:`emit_spans`.

Tracing is **off by default** — :func:`span` then returns a shared
no-op context manager whose cost is one function call, benchmarked to
stay within noise on the sustained-mixed service benchmark.  It is
switched on per process with :func:`configure` (the ``--trace PATH``
CLI flag / ``REPRO_TRACE`` environment variable), which appends
finished spans to a :class:`TraceStore` — a JSONL+index store on the
same :class:`~repro.experiments.store.JsonlStore` base as the result
store and the solve cache.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import re
import time
import uuid
from dataclasses import dataclass

from ..experiments.store import JsonlStore

__all__ = [
    "TraceContext",
    "TraceStore",
    "activate",
    "capture",
    "configure",
    "current_context",
    "disable",
    "emit_spans",
    "emit_timing",
    "new_id",
    "span",
    "trace_path",
    "tracing_active",
]

#: Environment variable naming the trace-store directory (same as --trace).
TRACE_ENV_VAR = "REPRO_TRACE"

_ID_PATTERN = re.compile(r"[a-z0-9._-]{1,64}")


@dataclass(frozen=True, slots=True)
class TraceContext:
    """The picklable coordinates of "where we are" in a trace."""

    trace_id: str
    span_id: str


_current: contextvars.ContextVar[TraceContext | None] = contextvars.ContextVar(
    "repro_trace_context", default=None
)
#: When set, finished spans go to this list instead of the global
#: tracer — how worker processes (and the in-process traced solve path)
#: collect spans for their caller without sharing a file handle.
_sink: contextvars.ContextVar[list | None] = contextvars.ContextVar(
    "repro_trace_sink", default=None
)

_store: "TraceStore | None" = None


def new_id() -> str:
    """A fresh 16-hex-char trace/span id."""
    return uuid.uuid4().hex[:16]


def current_context() -> TraceContext | None:
    """The innermost active span's context, or ``None``."""
    return _current.get()


def tracing_active() -> bool:
    """Whether finished spans currently have somewhere to go."""
    return _store is not None or _sink.get() is not None


def trace_path() -> str | None:
    """Directory of the configured trace store, or ``None``."""
    return None if _store is None else str(_store.path)


class TraceStore(JsonlStore):
    """Append-only span log: ``trace.jsonl`` + ``index.json`` in a directory.

    Rides the :class:`~repro.experiments.store.JsonlStore` base, so a
    trace directory has the same durability story as the result store —
    append-only records, tail recovery after a kill, an index that
    rebuilds itself from the log when stale.  Spans are keyed by
    ``span_id`` (unique per span, so the log is effectively pure
    append; the index buys ``spans()`` and dedup on re-emit).
    """

    KINDS = ("span",)
    RECORDS_FILE = "trace.jsonl"

    def _key_of(self, kind: str, data: dict) -> str:
        span_id = data["span_id"]
        if not isinstance(span_id, str) or not span_id:
            raise ValueError(f"span record carries a bad span_id: {span_id!r}")
        return span_id

    def put_span(self, record: dict) -> None:
        self._put("span", record["span_id"], record)

    def spans(self) -> list[dict]:
        """Every stored span, in append order."""
        return [payload for _, payload in self._payloads("span")]


def configure(path: str | os.PathLike) -> TraceStore:
    """Switch tracing on: append finished spans under ``path``.

    Idempotent for the same path; a different path closes the previous
    store first.  Returns the active store.
    """
    global _store
    if _store is not None:
        if str(_store.path) == str(path):
            return _store
        _store.close()
    _store = TraceStore(path)
    return _store


def disable() -> None:
    """Switch tracing off and flush/close the trace store."""
    global _store
    if _store is not None:
        _store.close()
        _store = None


def _emit(record: dict) -> None:
    buffer = _sink.get()
    if buffer is not None:
        buffer.append(record)
        return
    store = _store
    if store is not None:
        store.put_span(record)


class activate:
    """Re-enter a :class:`TraceContext` received from another task/process.

    ``activate(None)`` is a no-op, so call sites can pass an optional
    context through unconditionally.
    """

    __slots__ = ("_context", "_token")

    def __init__(self, context: TraceContext | None):
        self._context = context
        self._token = None

    def __enter__(self) -> TraceContext | None:
        if self._context is not None:
            self._token = _current.set(self._context)
        return self._context

    def __exit__(self, *exc_info) -> None:
        if self._token is not None:
            _current.reset(self._token)
            self._token = None


class _NoopSpan:
    """The shared do-nothing span handed out while tracing is off."""

    __slots__ = ()
    trace_id = None
    span_id = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


_NOOP = _NoopSpan()


class _Span:
    """One live span: times itself and stacks the context while open."""

    __slots__ = (
        "name",
        "attrs",
        "trace_id",
        "span_id",
        "parent_id",
        "_token",
        "_wall",
        "_start",
    )

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        parent = _current.get()
        if parent is None:
            self.trace_id = new_id()
            self.parent_id = None
        else:
            self.trace_id = parent.trace_id
            self.parent_id = parent.span_id
        self.span_id = new_id()
        self._token = _current.set(TraceContext(self.trace_id, self.span_id))
        self._wall = time.time()
        self._start = time.perf_counter()
        return self

    def set(self, **attrs) -> None:
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start
        _current.reset(self._token)
        record = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self._wall,
            "duration": duration,
        }
        if exc_type is not None:
            record["error"] = f"{exc_type.__name__}: {exc}"
        record.update(self.attrs)
        _emit(record)
        return False


def span(name: str, **attrs):
    """A context manager timing one operation as a span.

    The hot-path entry point: while tracing is off (no store configured
    and no capture buffer active) it returns a shared no-op object
    without allocating, so instrumented code costs one call per site.
    """
    if _store is None and _sink.get() is None:
        return _NOOP
    return _Span(name, attrs)


@contextlib.contextmanager
def capture():
    """Collect this context's spans into a list instead of the store.

    Used on the far side of an executor/process hop: the callee runs
    its work under ``capture()``, returns the buffered span records
    with its result, and the caller forwards them via
    :func:`emit_spans`.  The buffer is context-local, so concurrent
    captures on different executor threads do not mix.
    """
    buffer: list[dict] = []
    token = _sink.set(buffer)
    try:
        yield buffer
    finally:
        _sink.reset(token)


def emit_spans(records) -> None:
    """Forward span records produced elsewhere (a worker) to the sink."""
    for record in records or ():
        _emit(record)


def emit_timing(name: str, duration: float, **attrs) -> None:
    """Emit a pre-measured span (aggregated timings, e.g. kernel totals).

    Parents at the current context and back-dates ``start`` so the
    synthetic span nests where the measured work actually ran.
    """
    if not tracing_active():
        return
    parent = _current.get()
    record = {
        "trace_id": parent.trace_id if parent is not None else new_id(),
        "span_id": new_id(),
        "parent_id": parent.span_id if parent is not None else None,
        "name": name,
        "start": time.time() - duration,
        "duration": duration,
    }
    record.update(attrs)
    _emit(record)


def request_id_or_new(raw: str | None) -> str:
    """A well-formed request id: the client's if sane, else a fresh one.

    The HTTP layer lower-cases header values, so validation is against
    the lower-cased alphabet; anything malformed (or absent) gets a
    generated id — the header is an attribution aid, never an input.
    """
    if raw is not None and _ID_PATTERN.fullmatch(raw):
        return raw
    return "r" + new_id()
