"""Definitions of the paper's figures (Section 7) as scenario configs.

Every entry maps one figure of the evaluation to a
:class:`~repro.generators.ScenarioConfig`:

=========  =======================================================================
Figure     Setting
=========  =======================================================================
Figure 5   specialized, m=50,  p=5, n = 50..150, all six heuristics
Figure 6   specialized, m=10,  p=2, n = 10..100, H2/H3/H4/H4w
Figure 7   specialized, m=100, p=5, n = 100..200, H2/H3/H4w
Figure 8   specialized, m=10,  p=5, n = 10..100, failure rates up to 10%
Figure 9   one-to-one,  m=100, n=100, f[i,u]=f[i], p = 20..100, + optimal OtO
Figure 10  specialized, m=5,   p=2, n = 2..16, all heuristics + MIP
Figure 11  the Figure 10 data normalised by the MIP optimum
Figure 12  specialized, m=9,   p=4, n = 5..20, H2/H3/H4/H4w + MIP
=========  =======================================================================

Figure 11 shares Figure 10's scenario; the normalisation is performed by
the experiment runner (``normalize_to="MIP"``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..generators.platforms import HIGH_FAILURE_F_RANGE
from ..generators.scenarios import ScenarioConfig

__all__ = ["FigureSpec", "FIGURES", "figure_ids"]


@dataclass(frozen=True, slots=True)
class FigureSpec:
    """One figure of the paper: a scenario plus reporting options.

    Attributes
    ----------
    figure_id:
        Identifier ("fig5" .. "fig12").
    scenario:
        The random-instance scenario behind the figure.
    normalize_to:
        When set ("MIP" or "OtO"), report series divided by that
        reference's per-instance value (Figure 11).
    expected_shape:
        Free-text reminder of the qualitative result the paper reports,
        recorded in EXPERIMENTS.md and checked (loosely) by the benchmark
        assertions.
    optional_curves:
        Extra curve labels (resolved through
        :func:`repro.experiments.providers.resolve_provider`) that are
        *not* part of the paper's figure but are worth comparing against
        it — run with ``run_figure(..., include_optional=True)`` or
        ``microrepro run --optional-curves``.
    """

    figure_id: str
    scenario: ScenarioConfig
    normalize_to: str | None = None
    expected_shape: str = ""
    optional_curves: tuple[str, ...] = ()


def _fig5() -> FigureSpec:
    return FigureSpec(
        figure_id="fig5",
        scenario=ScenarioConfig(
            name="fig5",
            num_machines=50,
            num_types=5,
            sweep="tasks",
            sweep_values=tuple(range(50, 151, 10)),
            repetitions=30,
            heuristics=("H1", "H2", "H3", "H4", "H4w", "H4f"),
            description="Specialized mappings, m=50 machines, p=5 types, n=50..150 tasks.",
        ),
        expected_shape="H1 and H4f clearly worst; H2/H3/H4/H4w close together and much better.",
    )


def _fig6() -> FigureSpec:
    return FigureSpec(
        figure_id="fig6",
        scenario=ScenarioConfig(
            name="fig6",
            num_machines=10,
            num_types=2,
            sweep="tasks",
            sweep_values=tuple(range(10, 101, 10)),
            repetitions=30,
            heuristics=("H2", "H3", "H4", "H4w"),
            description="Specialized mappings, m=10, p=2, n=10..100.",
        ),
        expected_shape="H4 slightly below (better than) the others on the small platform.",
        optional_curves=("H4ls",),
    )


def _fig7() -> FigureSpec:
    return FigureSpec(
        figure_id="fig7",
        scenario=ScenarioConfig(
            name="fig7",
            num_machines=100,
            num_types=5,
            sweep="tasks",
            sweep_values=tuple(range(100, 201, 10)),
            repetitions=30,
            heuristics=("H2", "H3", "H4w"),
            description="Specialized mappings on a large platform, m=100, p=5, n=100..200.",
        ),
        expected_shape="H4w better than H2 and H3 on the large platform.",
    )


def _fig8() -> FigureSpec:
    return FigureSpec(
        figure_id="fig8",
        scenario=ScenarioConfig(
            name="fig8",
            num_machines=10,
            num_types=5,
            sweep="tasks",
            sweep_values=tuple(range(10, 101, 10)),
            repetitions=30,
            f_range=HIGH_FAILURE_F_RANGE,
            heuristics=("H1", "H2", "H3", "H4", "H4w", "H4f"),
            description="High failure rates (0..10%), m=10, p=5, n=10..100.",
        ),
        expected_shape="Periods increase dramatically with n; H2 performs best.",
    )


def _fig9() -> FigureSpec:
    return FigureSpec(
        figure_id="fig9",
        scenario=ScenarioConfig(
            name="fig9",
            num_machines=100,
            num_types=0,  # unused: the sweep variable is the number of types
            num_tasks=100,
            sweep="types",
            sweep_values=tuple(range(20, 101, 10)),
            repetitions=100,
            task_dependent_failures=True,
            heuristics=("H2", "H3", "H4w"),
            include_one_to_one=True,
            description=(
                "One-to-one comparison: m=100, n=100, f[i,u]=f[i], p=20..100; "
                "heuristics vs the optimal one-to-one mapping (OtO)."
            ),
        ),
        expected_shape=(
            "H4w closest to the optimum (~1.28x), H3 ~1.75x, H2 ~1.84x; all curves "
            "converge as p approaches m."
        ),
    )


def _fig10() -> FigureSpec:
    return FigureSpec(
        figure_id="fig10",
        scenario=ScenarioConfig(
            name="fig10",
            num_machines=5,
            num_types=2,
            sweep="tasks",
            sweep_values=tuple(range(2, 17, 2)),
            repetitions=30,
            heuristics=("H1", "H2", "H3", "H4", "H4w", "H4f"),
            include_milp=True,
            description="Small instances, m=5, p=2, n=2..16; heuristics vs the exact MIP.",
        ),
        expected_shape="H4w best heuristic, H2/H4 close; MIP below every heuristic.",
    )


def _fig11() -> FigureSpec:
    spec = _fig10()
    return FigureSpec(
        figure_id="fig11",
        scenario=spec.scenario,
        normalize_to="MIP",
        expected_shape="Normalised factors: H4w ~1.33, H3 ~1.58, H2 ~1.73 over the MIP.",
    )


def _fig12() -> FigureSpec:
    return FigureSpec(
        figure_id="fig12",
        scenario=ScenarioConfig(
            name="fig12",
            num_machines=9,
            num_types=4,
            sweep="tasks",
            sweep_values=tuple(range(5, 21, 3)),
            repetitions=30,
            heuristics=("H2", "H3", "H4", "H4w"),
            include_milp=True,
            description="m=9, p=4, n=5..20; the MIP stops solving beyond ~15 tasks.",
        ),
        expected_shape=(
            "H4w best heuristic; the MIP tracks below the heuristics until it times out "
            "on the larger task counts."
        ),
    )


#: All figures of the evaluation section, keyed by identifier.
FIGURES: dict[str, FigureSpec] = {
    spec.figure_id: spec
    for spec in (
        _fig5(),
        _fig6(),
        _fig7(),
        _fig8(),
        _fig9(),
        _fig10(),
        _fig11(),
        _fig12(),
    )
}


def figure_ids() -> list[str]:
    """Identifiers of every reproduced figure, in paper order."""
    return list(FIGURES)
