"""Text reports for experiment results.

The reporting layer turns an :class:`~repro.experiments.runner.ExperimentResult`
into the artefacts recorded in EXPERIMENTS.md: a header recalling the
paper's setting and expected shape, the figure table, and (when an exact
baseline is present) the aggregate normalisation factors.
"""

from __future__ import annotations

import io

from ..analysis.tables import format_table
from .figures import FIGURES
from .runner import MIP_LABEL, OTO_LABEL, ExperimentResult

__all__ = ["figure_report", "summary_line", "campaign_report"]


def summary_line(result: ExperimentResult) -> str:
    """One-line summary (used by the CLI and by EXPERIMENTS.md)."""
    scenario = result.scenario
    return (
        f"{result.figure_id}: {scenario.description or scenario.name} "
        f"[{scenario.repetitions} reps x {len(scenario.sweep_values)} points, "
        f"seed={result.seed}, {result.elapsed_seconds:.1f}s]"
    )


def campaign_report(results: list[ExperimentResult]) -> str:
    """One line per completed figure of a campaign run."""
    lines = [summary_line(result) for result in results]
    total = sum(result.elapsed_seconds for result in results)
    lines.append(f"campaign: {len(results)} figure(s), {total:.1f}s total")
    return "\n".join(lines)


def figure_report(result: ExperimentResult, *, float_format: str = "{:.1f}") -> str:
    """Full plain-text report of one reproduced figure."""
    buffer = io.StringIO()
    spec = FIGURES.get(result.figure_id)

    buffer.write(f"== {result.figure_id} ==\n")
    buffer.write(summary_line(result) + "\n")
    if spec is not None and spec.expected_shape:
        buffer.write(f"Paper's expected shape: {spec.expected_shape}\n")
    buffer.write("\n")
    buffer.write(result.to_table(float_format=float_format))
    buffer.write("\n")

    for reference in (MIP_LABEL, OTO_LABEL):
        if reference in result.series:
            report = result.normalization_report(reference)
            rows = [
                [row["label"], row["mean"], row["ci_low"], row["ci_high"], row["count"]]
                for row in report.as_rows()
            ]
            buffer.write(f"\nAggregate factors relative to {reference}:\n")
            buffer.write(
                format_table(
                    ["heuristic", "factor", "ci_low", "ci_high", "pairs"],
                    rows,
                    float_format="{:.3f}",
                )
            )
            buffer.write("\n")
    if result.milp_failures:
        buffer.write(
            f"\nMIP did not prove optimality on {result.milp_failures} instance(s) "
            "(expected on the larger task counts, cf. Figure 12).\n"
        )
    return buffer.getvalue()
