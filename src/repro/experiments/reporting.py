"""Text reports and cross-seed aggregation for experiment results.

The reporting layer turns an :class:`~repro.experiments.runner.ExperimentResult`
into the artefacts recorded in EXPERIMENTS.md: a header recalling the
paper's setting and expected shape, the figure table, and (when an exact
baseline is present) the aggregate normalisation factors.

Multi-seed campaigns store one run per ``(figure, seed)``;
:func:`aggregate_results` / :func:`aggregate_seeds` pool those runs into
one cross-seed result (``microrepro export --aggregate seeds``), with
two confidence-interval modes:

``ci="pooled"`` (default)
    Every sweep point's samples are the union of each seed's
    repetitions — the mean/CI per point treats all ``R x num_seeds``
    draws as one sample.  Tightest intervals, but the CI width assumes
    every draw is independent of the seed structure.
``ci="between"``
    Each seed is first reduced to its per-point mean; the reported CI
    is the Student interval over the ``num_seeds`` seed-level means
    (``df = num_seeds - 1``).  The conservative choice when seeds are
    the unit of replication (e.g. comparing campaigns run with
    different seed sets): the point estimate is unchanged for equal
    per-seed counts, only the interval widens.
"""

from __future__ import annotations

import io
from collections.abc import Sequence

from ..analysis.stats import Series
from ..analysis.tables import format_table
from ..exceptions import ExperimentError
from .figures import FIGURES
from .runner import MIP_LABEL, OTO_LABEL, ExperimentResult
from .store import ResultStore

__all__ = [
    "figure_report",
    "summary_line",
    "campaign_report",
    "CI_MODES",
    "aggregate_results",
    "aggregate_seeds",
    "aggregate_report",
]


def summary_line(result: ExperimentResult) -> str:
    """One-line summary (used by the CLI and by EXPERIMENTS.md)."""
    scenario = result.scenario
    return (
        f"{result.figure_id}: {scenario.description or scenario.name} "
        f"[{scenario.repetitions} reps x {len(scenario.sweep_values)} points, "
        f"seed={result.seed}, {result.elapsed_seconds:.1f}s]"
    )


def campaign_report(results: list[ExperimentResult]) -> str:
    """One line per completed figure of a campaign run."""
    lines = [summary_line(result) for result in results]
    total = sum(result.elapsed_seconds for result in results)
    lines.append(f"campaign: {len(results)} figure run(s), {total:.1f}s total")
    return "\n".join(lines)


def _normalization_sections(result: ExperimentResult, buffer: io.StringIO) -> None:
    """Append the aggregate-factor tables for every exact baseline present."""
    for reference in (MIP_LABEL, OTO_LABEL):
        if reference in result.series:
            report = result.normalization_report(reference)
            rows = [
                [row["label"], row["mean"], row["ci_low"], row["ci_high"], row["count"]]
                for row in report.as_rows()
            ]
            buffer.write(f"\nAggregate factors relative to {reference}:\n")
            buffer.write(
                format_table(
                    ["heuristic", "factor", "ci_low", "ci_high", "pairs"],
                    rows,
                    float_format="{:.3f}",
                )
            )
            buffer.write("\n")
    if result.milp_failures:
        buffer.write(
            f"\nMIP did not prove optimality on {result.milp_failures} instance(s) "
            "(expected on the larger task counts, cf. Figure 12).\n"
        )


def figure_report(result: ExperimentResult, *, float_format: str = "{:.1f}") -> str:
    """Full plain-text report of one reproduced figure."""
    buffer = io.StringIO()
    spec = FIGURES.get(result.figure_id)

    buffer.write(f"== {result.figure_id} ==\n")
    buffer.write(summary_line(result) + "\n")
    if spec is not None and spec.expected_shape:
        buffer.write(f"Paper's expected shape: {spec.expected_shape}\n")
    buffer.write("\n")
    buffer.write(result.to_table(float_format=float_format))
    buffer.write("\n")
    _normalization_sections(result, buffer)
    return buffer.getvalue()


# -- cross-seed aggregation ---------------------------------------------------------


#: Valid cross-seed confidence-interval modes.
CI_MODES = ("pooled", "between")


def _pooled(series_by_seed: list[dict[str, Series]]) -> dict[str, Series]:
    """Union the per-seed sample lists, seed-major at every sweep point."""
    pooled: dict[str, Series] = {}
    for label in series_by_seed[0]:
        out = Series(label=label)
        x_values = series_by_seed[0][label].x_values
        for x in x_values:
            for per_seed in series_by_seed:
                out.extend(x, per_seed[label].samples.get(x, ()))
        pooled[label] = out
    return pooled


def _seed_means(series_by_seed: list[dict[str, Series]]) -> dict[str, Series]:
    """One sample per seed and sweep point: the seed's per-point mean.

    The summaries rendered from the resulting series are then seed-level
    statistics — the CI has ``num_seeds - 1`` degrees of freedom instead
    of treating every repetition as an independent draw.  A seed whose
    point holds no finite sample (e.g. every MIP repetition timed out)
    contributes NaN, which the downstream summaries already ignore.
    """
    reduced: dict[str, Series] = {}
    for label in series_by_seed[0]:
        out = Series(label=label)
        x_values = series_by_seed[0][label].x_values
        for x in x_values:
            for per_seed in series_by_seed:
                out.add(x, per_seed[label].point(x).mean)
        reduced[label] = out
    return reduced


def aggregate_results(
    results: Sequence[ExperimentResult], *, ci: str = "pooled"
) -> ExperimentResult:
    """Pool several same-figure runs (one per seed) into one result.

    Every input must reproduce the same figure under the same scenario
    (equal :meth:`~repro.generators.scenarios.ScenarioConfig.stable_hash`
    and repetition count) with a distinct seed and the same curve set.
    Inputs are pooled in ascending-seed order, so the output is
    independent of the order runs were loaded or computed in; its
    ``seed`` is ``None`` and elapsed/failure counters are summed.

    ``ci`` selects what the output's per-point samples are: the union of
    all seeds' repetitions (``"pooled"``, per-point sample count
    ``repetitions x len(results)``) or one per-seed mean each
    (``"between"``, sample count ``len(results)`` — between-seed CIs).

    Normalised series (Figure 11) are pooled the same way *after* each
    seed's per-instance normalisation — the mean of paired ratios, never
    the ratio of pooled means.
    """
    if ci not in CI_MODES:
        raise ExperimentError(f"unknown CI mode {ci!r}; use one of {CI_MODES}")
    if not results:
        raise ExperimentError("cannot aggregate zero experiment runs")
    seeds = [result.seed for result in results]
    if any(seed is None for seed in seeds):
        raise ExperimentError("cross-seed aggregation requires explicit seeds")
    if len(set(seeds)) != len(seeds):
        raise ExperimentError(f"duplicate seeds in aggregation: {sorted(seeds)}")
    first = results[0]
    for result in results[1:]:
        if result.figure_id != first.figure_id:
            raise ExperimentError(
                f"cannot aggregate runs of different figures: "
                f"{first.figure_id!r} vs {result.figure_id!r}"
            )
        if (
            result.scenario.stable_hash() != first.scenario.stable_hash()
            or result.scenario.repetitions != first.scenario.repetitions
            or list(result.scenario.sweep_values) != list(first.scenario.sweep_values)
        ):
            raise ExperimentError(
                f"cannot aggregate {first.figure_id!r} runs of different scenarios "
                f"(seeds {first.seed} and {result.seed} disagree)"
            )
        if list(result.series) != list(first.series):
            raise ExperimentError(
                f"cannot aggregate {first.figure_id!r} runs with different curves: "
                f"{list(first.series)} vs {list(result.series)}"
            )
    ordered = sorted(results, key=lambda result: result.seed)
    combine = _pooled if ci == "pooled" else _seed_means
    normalized = None
    if all(result.normalized is not None for result in ordered):
        normalized = combine([result.normalized for result in ordered])
    return ExperimentResult(
        figure_id=first.figure_id,
        scenario=first.scenario,
        series=combine([result.series for result in ordered]),
        normalized=normalized,
        seed=None,
        elapsed_seconds=sum(result.elapsed_seconds for result in ordered),
        milp_failures=sum(result.milp_failures for result in ordered),
    )


def aggregate_seeds(
    store: ResultStore,
    figure_id: str,
    *,
    scenario_hash: str | None = None,
    ci: str = "pooled",
) -> tuple[ExperimentResult, list[int]]:
    """Load and pool every stored seed of one figure run.

    Returns ``(pooled result, seeds)``.  ``scenario_hash`` narrows the
    lookup when the store holds the figure at several scales; ``ci``
    picks pooled or between-seed intervals (see
    :func:`aggregate_results`).
    """
    metas = [
        meta
        for meta in store.runs()
        if meta.figure_id == figure_id
        and (scenario_hash is None or meta.scenario_hash == scenario_hash)
    ]
    if not metas:
        raise ExperimentError(f"no stored run of {figure_id!r} in {store.path}")
    hashes = {meta.scenario_hash for meta in metas}
    if len(hashes) > 1:
        raise ExperimentError(
            f"{figure_id!r} is stored under {len(hashes)} different scenarios "
            f"({', '.join(sorted(hashes))}); pick one with --scenario-hash "
            "(scenario_hash= from Python)"
        )
    seeds = sorted(meta.seed for meta in metas)
    results = [
        store.load_result(figure_id, scenario_hash=meta.scenario_hash, seed=meta.seed)
        for meta in sorted(metas, key=lambda meta: meta.seed)
    ]
    return aggregate_results(results, ci=ci), seeds


def aggregate_report(
    result: ExperimentResult,
    seeds: Sequence[int],
    *,
    float_format: str = "{:.1f}",
    ci: str = "pooled",
) -> str:
    """Plain-text report of a cross-seed pooled result."""
    buffer = io.StringIO()
    scenario = result.scenario
    seed_text = ",".join(str(seed) for seed in seeds)
    if ci == "between":
        sampling = (
            f"[{len(seeds)} seed-level means/point "
            f"({scenario.repetitions} reps each, between-seed CIs) x "
        )
    else:
        sampling = (
            f"[{scenario.repetitions} reps x {len(seeds)} seeds = "
            f"{scenario.repetitions * len(seeds)} samples/point x "
        )
    buffer.write(f"== {result.figure_id} (aggregated over {len(seeds)} seeds) ==\n")
    buffer.write(
        f"{result.figure_id}: {scenario.description or scenario.name} "
        + sampling
        + f"{len(scenario.sweep_values)} points, seeds={seed_text}, "
        f"{result.elapsed_seconds:.1f}s total]\n\n"
    )
    buffer.write(result.to_table(float_format=float_format))
    buffer.write("\n")
    _normalization_sections(result, buffer)
    return buffer.getvalue()
