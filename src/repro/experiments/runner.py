"""Experiment runner: regenerate any figure of the paper's evaluation.

The runner draws the random instances of a scenario, runs every heuristic
(and, where the figure calls for them, the exact MIP and the optimal
one-to-one mapping) on the *same* instances, and collects the resulting
periods into one :class:`~repro.analysis.Series` per curve.  The output
:class:`ExperimentResult` renders the figure as a plain-text table or CSV
and computes the aggregate normalisation factors reported in Section 7.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..analysis.normalize import NormalizationReport, normalize_series
from ..analysis.stats import Series
from ..analysis.tables import series_table, series_to_csv
from ..exact.milp import solve_specialized_milp
from ..exact.one_to_one import optimal_one_to_one
from ..exceptions import ExperimentError, SolverError
from ..generators.scenarios import ScenarioConfig, sample_instance
from ..heuristics import get_heuristic
from ..simulation.rng import RandomStreamFactory
from .figures import FIGURES, FigureSpec

__all__ = ["ExperimentResult", "run_figure", "run_scenario"]

#: Label used for the exact MIP curve.
MIP_LABEL = "MIP"
#: Label used for the optimal one-to-one curve.
OTO_LABEL = "OtO"


@dataclass(slots=True)
class ExperimentResult:
    """Everything produced by one experiment run.

    Attributes
    ----------
    figure_id:
        Which figure was reproduced.
    scenario:
        The (possibly scaled-down) scenario that was actually run.
    series:
        ``{curve label: Series}`` of raw periods (ms).
    normalized:
        Same curves divided by the reference curve, when the figure calls
        for normalisation (Figure 11); ``None`` otherwise.
    seed:
        The root seed used for instance generation.
    elapsed_seconds:
        Wall-clock duration of the run.
    milp_failures:
        Number of (point, repetition) pairs where the MIP backend did not
        return a proven optimum (mirrors the paper's observation that the
        exact solver stops scaling around 15 tasks).
    """

    figure_id: str
    scenario: ScenarioConfig
    series: dict[str, Series]
    normalized: dict[str, Series] | None
    seed: int | None
    elapsed_seconds: float
    milp_failures: int = 0

    @property
    def x_name(self) -> str:
        """Name of the sweep variable ("n" or "p")."""
        return "n" if self.scenario.sweep == "tasks" else "p"

    def reported_series(self) -> dict[str, Series]:
        """The curves the figure actually shows (normalised when relevant)."""
        return self.normalized if self.normalized is not None else self.series

    def to_table(self, *, float_format: str = "{:.1f}") -> str:
        """Plain-text rendition of the figure."""
        return series_table(
            self.reported_series(), x_name=self.x_name, float_format=float_format
        )

    def to_csv(self) -> str:
        """CSV rendition of the figure (means plus spread columns)."""
        return series_to_csv(self.reported_series(), x_name=self.x_name)

    def normalization_report(self, reference: str) -> NormalizationReport:
        """Aggregate factors of every curve against ``reference``."""
        if reference not in self.series:
            raise ExperimentError(
                f"no series named {reference!r} in this experiment; available: "
                f"{sorted(self.series)}"
            )
        return NormalizationReport.from_series(self.series, reference)


def run_scenario(
    scenario: ScenarioConfig,
    *,
    seed: int | None = 0,
    include_milp: bool | None = None,
    include_one_to_one: bool | None = None,
    milp_time_limit: float = 30.0,
    figure_id: str = "custom",
    normalize_to: str | None = None,
) -> ExperimentResult:
    """Run one scenario and collect the per-curve period series.

    Parameters
    ----------
    scenario:
        The scenario to run (use :meth:`ScenarioConfig.scaled` to shrink
        the paper's full sweep for quick runs).
    seed:
        Root seed for reproducible instance generation.
    include_milp, include_one_to_one:
        Override the scenario's flags (useful to skip the expensive MIP).
    milp_time_limit:
        Per-instance time limit handed to the MIP backend.
    figure_id, normalize_to:
        Reporting metadata (filled automatically by :func:`run_figure`).
    """
    start = time.perf_counter()
    streams = RandomStreamFactory(seed)
    use_milp = scenario.include_milp if include_milp is None else include_milp
    use_oto = scenario.include_one_to_one if include_one_to_one is None else include_one_to_one

    series: dict[str, Series] = {name: Series(label=name) for name in scenario.heuristics}
    if use_milp:
        series[MIP_LABEL] = Series(label=MIP_LABEL)
    if use_oto:
        series[OTO_LABEL] = Series(label=OTO_LABEL)

    heuristics = {name: get_heuristic(name) for name in scenario.heuristics}
    milp_failures = 0

    for sweep_value in scenario.sweep_values:
        for repetition in range(scenario.repetitions):
            instance = sample_instance(scenario, sweep_value, repetition, streams)
            for name, heuristic in heuristics.items():
                rng = streams.stream(f"heuristic/{name}/{sweep_value}", repetition)
                result = heuristic.solve(instance, rng)
                series[name].add(sweep_value, result.period)
            if use_oto:
                try:
                    oto = optimal_one_to_one(instance)
                    series[OTO_LABEL].add(sweep_value, oto.period)
                except SolverError:
                    series[OTO_LABEL].add(sweep_value, float("nan"))
            if use_milp:
                milp = solve_specialized_milp(instance, time_limit=milp_time_limit)
                if milp.is_optimal:
                    series[MIP_LABEL].add(sweep_value, milp.period)
                else:
                    milp_failures += 1
                    series[MIP_LABEL].add(sweep_value, float("nan"))

    normalized: dict[str, Series] | None = None
    if normalize_to is not None:
        if normalize_to not in series:
            raise ExperimentError(
                f"cannot normalise to {normalize_to!r}: that curve was not produced"
            )
        reference = series[normalize_to]
        normalized = {
            label: normalize_series(curve, reference)
            for label, curve in series.items()
            if label != normalize_to
        }

    return ExperimentResult(
        figure_id=figure_id,
        scenario=scenario,
        series=series,
        normalized=normalized,
        seed=seed,
        elapsed_seconds=time.perf_counter() - start,
        milp_failures=milp_failures,
    )


def run_figure(
    figure_id: str,
    *,
    seed: int | None = 0,
    repetitions: int | None = None,
    max_points: int | None = None,
    include_milp: bool | None = None,
    include_one_to_one: bool | None = None,
    milp_time_limit: float = 30.0,
) -> ExperimentResult:
    """Reproduce one figure of the paper.

    Parameters
    ----------
    figure_id:
        One of :func:`repro.experiments.figures.figure_ids` ("fig5" ..
        "fig12").
    repetitions, max_points:
        Optional scaling-down of the paper's full sweep (fewer repetitions
        per point / fewer sweep points), for quick runs and benchmarks.
    """
    try:
        spec: FigureSpec = FIGURES[figure_id]
    except KeyError as exc:
        raise ExperimentError(
            f"unknown figure {figure_id!r}; known figures: {sorted(FIGURES)}"
        ) from exc
    scenario = spec.scenario.scaled(repetitions=repetitions, max_points=max_points)
    return run_scenario(
        scenario,
        seed=seed,
        include_milp=include_milp,
        include_one_to_one=include_one_to_one,
        milp_time_limit=milp_time_limit,
        figure_id=figure_id,
        normalize_to=spec.normalize_to,
    )
