"""Experiment engine: regenerate any figure of the paper's evaluation.

The engine draws the random instances of a scenario, resolves the
figure's curves to :mod:`~repro.experiments.providers` (heuristics, the
exact MIP, the optimal one-to-one mapping, local-search refinements),
and collects the resulting periods into one
:class:`~repro.analysis.Series` per curve.  The output
:class:`ExperimentResult` renders the figure as a plain-text table or
CSV and computes the aggregate normalisation factors of Section 7.

Block scheduling
----------------
The default engine (``engine="block"``) groups the ``R`` structurally
identical repetitions of each sweep point into one
:class:`~repro.batch.InstanceStack` and hands whole blocks to the curve
providers, which score each curve's ``R`` mappings in a single
vectorized pass instead of re-entering the scalar evaluator per cell.
Heuristics implementing the :class:`~repro.heuristics.BatchHeuristic`
protocol (H2/H3, the H4 family, H4ls) additionally *solve* the whole
block in one lock-step ``solve_batch`` call — both on the serial path
and inside each pool worker — so neither solving nor scoring re-enters
Python per repetition; heuristics without a batch kernel (H1) fall back
to the per-instance solve loop transparently.  The original per-cell
path of PR 1 is kept as ``engine="cells"`` — the bit-for-bit reference
the equivalence tests compare against.

Repetition blocks are independent, so the engine can fan the (sweep
point, curve) blocks out over a process pool (``workers=N``).  Every
block re-derives its random streams from the root seed through
:class:`~repro.simulation.rng.RandomStreamFactory` — whose label hashing
is process-independent — and results are folded back in the serial
iteration order, so a parallel run is bit-for-bit identical to the
serial one for the same seed.  The one caveat is the MIP curve: the
backend solves under a *wall-clock* time limit, so a cell that proves
optimality in a lightly loaded serial run may time out (and report NaN)
when ``workers`` oversubscribes the CPU.  Heuristic and one-to-one
curves are pure functions of the seed and carry the full guarantee.

Persistence
-----------
Pass ``store=ResultStore(path)`` to append every completed block to an
on-disk store the moment it finishes, and ``resume=True`` to skip the
blocks already stored under the same (figure, scenario hash, seed,
curve, sweep value) key — the engine then only computes the remainder,
which is what makes long campaigns interruptible (see ``microrepro
campaign`` / ``resume``).
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass

import numpy as np

from ..analysis.normalize import NormalizationReport, normalize_series
from ..backend import get_backend
from ..analysis.stats import Series
from ..analysis.tables import series_table, series_to_csv
from ..exact.milp import solve_specialized_milp
from ..exact.one_to_one import optimal_one_to_one
from ..exceptions import ExperimentError, SolverError
from ..generators.scenarios import ScenarioConfig, sample_instance
from ..heuristics import get_heuristic
from ..simulation.rng import RandomStreamFactory
from .figures import FIGURES, FigureSpec
from .providers import (
    CROSS_POINT_MAX_ROWS,
    MIP_LABEL,
    OTO_LABEL,
    CellBlock,
    resolve_curves,
    resolve_provider,
)
from .store import CellRecord, ResultStore, RunMeta

__all__ = [
    "ExperimentResult",
    "run_figure",
    "run_scenario",
    "execute_blocks",
    "MIP_LABEL",
    "OTO_LABEL",
]


@dataclass(slots=True)
class ExperimentResult:
    """Everything produced by one experiment run.

    Attributes
    ----------
    figure_id:
        Which figure was reproduced.
    scenario:
        The (possibly scaled-down) scenario that was actually run.
    series:
        ``{curve label: Series}`` of raw periods (ms).
    normalized:
        Same curves divided by the reference curve, when the figure calls
        for normalisation (Figure 11); ``None`` otherwise.
    seed:
        The root seed used for instance generation.
    elapsed_seconds:
        Wall-clock duration of the run.
    milp_failures:
        Number of (point, repetition) pairs where the MIP backend did not
        return a proven optimum (mirrors the paper's observation that the
        exact solver stops scaling around 15 tasks).
    """

    figure_id: str
    scenario: ScenarioConfig
    series: dict[str, Series]
    normalized: dict[str, Series] | None
    seed: int | None
    elapsed_seconds: float
    milp_failures: int = 0

    @property
    def x_name(self) -> str:
        """Name of the sweep variable ("n" or "p")."""
        return "n" if self.scenario.sweep == "tasks" else "p"

    def reported_series(self) -> dict[str, Series]:
        """The curves the figure actually shows (normalised when relevant)."""
        return self.normalized if self.normalized is not None else self.series

    def to_table(self, *, float_format: str = "{:.1f}") -> str:
        """Plain-text rendition of the figure."""
        return series_table(
            self.reported_series(), x_name=self.x_name, float_format=float_format
        )

    def to_csv(self) -> str:
        """CSV rendition of the figure (means plus spread columns)."""
        return series_to_csv(self.reported_series(), x_name=self.x_name)

    def normalization_report(self, reference: str) -> NormalizationReport:
        """Aggregate factors of every curve against ``reference``."""
        if reference not in self.series:
            raise ExperimentError(
                f"no series named {reference!r} in this experiment; available: "
                f"{sorted(self.series)}"
            )
        return NormalizationReport.from_series(self.series, reference)


def _evaluate_cell(
    scenario: ScenarioConfig,
    sweep_value: int,
    repetition: int,
    entropy,
    use_milp: bool,
    use_oto: bool,
    milp_time_limit: float,
    memoize: bool,
) -> tuple[dict[str, float], int]:
    """Run every curve of one (sweep point, repetition) cell.

    The per-cell reference path (PR 1's scalar engine, reachable through
    ``run_scenario(engine="cells")``).  Returns ``({curve label: period},
    milp_failures)``.  All randomness is re-derived from ``entropy``
    through the stream factory, so the result is a pure function of its
    arguments — the property that makes the process-pool path bit-for-bit
    identical to the serial one.  The exception is the MIP curve, whose
    wall-clock ``milp_time_limit`` makes timeout-induced NaNs
    load-dependent.
    """
    streams = RandomStreamFactory(np.random.SeedSequence(entropy))
    instance = sample_instance(
        scenario, sweep_value, repetition, streams, memoize=memoize
    )
    periods: dict[str, float] = {}
    for name in scenario.heuristics:
        rng = streams.stream(f"heuristic/{name}/{sweep_value}", repetition)
        periods[name] = get_heuristic(name).solve(instance, rng).period
    if use_oto:
        try:
            periods[OTO_LABEL] = optimal_one_to_one(instance).period
        except SolverError:
            periods[OTO_LABEL] = float("nan")
    milp_failures = 0
    if use_milp:
        milp = solve_specialized_milp(instance, time_limit=milp_time_limit)
        if milp.is_optimal:
            periods[MIP_LABEL] = milp.period
        else:
            milp_failures = 1
            periods[MIP_LABEL] = float("nan")
    return periods, milp_failures


def _evaluate_cell_args(args) -> tuple[dict[str, float], int]:
    """Tuple-unpacking adapter for ``ProcessPoolExecutor.map``."""
    return _evaluate_cell(*args)


def _evaluate_block_job(args) -> tuple[list[float], int]:
    """Worker entry point: sample one block and score one curve on it.

    Providers are re-resolved by label in the worker so jobs stay
    picklable; instance sampling honours ``memoize`` through the
    worker-local cache, so several curve jobs at the same sweep point
    re-draw each instance at most once per worker process.
    """
    scenario, sweep_value, label, entropy, milp_time_limit, memoize = args
    streams = RandomStreamFactory(np.random.SeedSequence(entropy))
    block = CellBlock.sample(scenario, sweep_value, streams, memoize=memoize)
    provider = resolve_provider(label, milp_time_limit=milp_time_limit)
    result = provider.evaluate_block(block)
    return result.values(), result.failures


def _stored_block(
    store: ResultStore | None,
    resume: bool,
    figure_id: str,
    scenario_hash: str,
    seed: int | None,
    label: str,
    sweep_value: int,
    repetitions: int,
) -> tuple[list[float], int] | None:
    """Reusable stored values for one block, or ``None`` if it must run.

    A record with at least as many repetitions serves a smaller run by
    slicing (repetition streams are independent of ``R``, see
    :meth:`CellRecord.sliced`).
    """
    if store is None or not resume or seed is None:
        return None
    record = store.get_cell(figure_id, scenario_hash, seed, label, sweep_value)
    if record is None or record.repetitions < repetitions:
        return None
    return record.sliced(repetitions)


def run_scenario(
    scenario: ScenarioConfig,
    *,
    seed: int | None = 0,
    include_milp: bool | None = None,
    include_one_to_one: bool | None = None,
    milp_time_limit: float = 30.0,
    figure_id: str = "custom",
    normalize_to: str | None = None,
    workers: int | None = None,
    memoize_instances: bool = False,
    engine: str = "block",
    extra_curves: tuple[str, ...] = (),
    store: ResultStore | None = None,
    resume: bool = False,
) -> ExperimentResult:
    """Run one scenario and collect the per-curve period series.

    Parameters
    ----------
    scenario:
        The scenario to run (use :meth:`ScenarioConfig.scaled` to shrink
        the paper's full sweep for quick runs).
    seed:
        Root seed for reproducible instance generation.
    include_milp, include_one_to_one:
        Override the scenario's flags (useful to skip the expensive MIP).
    milp_time_limit:
        Per-instance time limit handed to the MIP backend.
    figure_id, normalize_to:
        Reporting metadata (filled automatically by :func:`run_figure`).
    workers:
        Fan the (sweep point, curve) blocks out over a process pool of
        this size.  ``None`` or ``1`` runs serially in-process; any value
        produces bit-for-bit the same heuristic/one-to-one series as the
        serial run for the same seed (MIP cells can additionally time out
        under CPU oversubscription — see the module docstring).
    memoize_instances:
        Cache sampled instances under their (scenario, cell, seed) key.
        Honoured on the serial path *and*, per worker process, on the
        parallel path — each worker keeps its own cache, so curve jobs
        that share a sweep point re-draw each instance at most once per
        worker.  (PR 1's parallel path silently dropped the flag; both
        engines now honour it, with identical results either way since
        memoized instances are bit-identical.)
    engine:
        ``"block"`` (default) schedules whole repetition blocks through
        the curve providers and the vectorized
        :class:`~repro.batch.InstanceStack` pass; ``"cells"`` is the
        per-cell reference path, kept for equivalence testing.
    extra_curves:
        Additional curve labels resolved through
        :func:`~repro.experiments.providers.resolve_provider` (e.g.
        ``"H4ls"`` or ``"H2+ls"``).  Requires the block engine.
    store:
        A :class:`~repro.experiments.store.ResultStore`: every completed
        block is appended to it immediately, and the run header is saved
        on completion.  Requires the block engine and an explicit seed.
    resume:
        With ``store``, skip blocks whose results are already stored
        (same figure, scenario hash, seed, curve and sweep value) instead
        of recomputing them.
    """
    if engine not in ("block", "cells"):
        raise ExperimentError(f"unknown engine {engine!r}; use 'block' or 'cells'")
    if engine == "cells" and (store is not None or resume or extra_curves):
        raise ExperimentError(
            "the per-cell reference engine supports neither result stores nor "
            "extra curves; use engine='block'"
        )
    if store is not None and seed is None:
        raise ExperimentError("a result store requires an explicit seed (got None)")

    start = time.perf_counter()
    streams = RandomStreamFactory(seed)
    # Resolve the effective entropy up front: with seed=None a random one
    # is drawn here once, so serial and parallel cells share it.
    entropy = streams.entropy
    use_milp = scenario.include_milp if include_milp is None else include_milp
    use_oto = (
        scenario.include_one_to_one if include_one_to_one is None else include_one_to_one
    )

    if engine == "cells":
        series, milp_failures = _run_cells(
            scenario, entropy, use_milp, use_oto, milp_time_limit, workers,
            memoize_instances,
        )
    else:
        series, milp_failures = _run_blocks(
            scenario, entropy, use_milp, use_oto, milp_time_limit, workers,
            memoize_instances, extra_curves, figure_id, seed, store, resume,
        )

    normalized: dict[str, Series] | None = None
    if normalize_to is not None:
        if normalize_to not in series:
            raise ExperimentError(
                f"cannot normalise to {normalize_to!r}: that curve was not produced"
            )
        reference = series[normalize_to]
        normalized = {
            label: normalize_series(curve, reference)
            for label, curve in series.items()
            if label != normalize_to
        }

    result = ExperimentResult(
        figure_id=figure_id,
        scenario=scenario,
        series=series,
        normalized=normalized,
        seed=seed,
        elapsed_seconds=time.perf_counter() - start,
        milp_failures=milp_failures,
    )
    if store is not None:
        store.put_meta(
            RunMeta(
                figure_id=figure_id,
                scenario_hash=scenario.stable_hash(),
                seed=seed,
                scenario=scenario.to_dict(),
                curves=list(series),
                normalize_to=normalize_to,
                elapsed_seconds=result.elapsed_seconds,
                backend=get_backend().name,
            )
        )
        store.flush()
    return result


def execute_blocks(
    scenario: ScenarioConfig,
    entropy,
    pending: list[tuple[int, str]],
    provider_by_label: dict[str, "object"],
    record,
    *,
    milp_time_limit: float = 30.0,
    workers: int | None = None,
    memoize: bool = False,
) -> None:
    """Compute a set of (sweep value, curve label) blocks, in any subset.

    The shared execution core of the block engine: :func:`run_scenario`
    feeds it a figure's full grid, the distributed shard worker
    (:mod:`repro.campaign.worker`) exactly its shard's units.  Each
    completed block is handed to ``record(sweep_value, label, values,
    failures)`` — on the parallel path in completion order, so callers
    that need a deterministic layout must fold afterwards (series
    folding, or the store's key-addressed records).

    ``provider_by_label`` supplies the resolved providers for the serial
    path; the process-pool path re-resolves providers by label in each
    worker (jobs must stay picklable), which is why every curve label
    must round-trip through
    :func:`~repro.experiments.providers.resolve_provider`.
    """
    if workers is not None and workers > 1 and pending:
        job_args = [
            (scenario, sweep_value, label, entropy, milp_time_limit, memoize)
            for sweep_value, label in pending
        ]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_evaluate_block_job, args): key
                for key, args in zip(pending, job_args)
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                # Record blocks as they complete so an interrupt loses at
                # most the blocks in flight.
                for future in done:
                    sweep_value, label = futures[future]
                    values, failures = future.result()
                    record(sweep_value, label, values, failures)
    else:
        by_point: dict[int, list[str]] = {}
        for sweep_value, label in pending:
            by_point.setdefault(sweep_value, []).append(label)
        streams = RandomStreamFactory(np.random.SeedSequence(entropy))
        # Chunk consecutive points with the same predicted (n, m) so a
        # provider can stack them across sweep points into one kernel
        # pass (types sweeps share the chain across points; tasks sweeps
        # chunk per point).  Sampling is label-keyed in the stream
        # factory, so sampling a chunk up front draws exactly the blocks
        # the per-point loop would.  Providers re-verify the true
        # structural signature before stacking, so the prediction only
        # affects grouping efficiency, never results.
        chunks: list[list[int]] = []
        current: list[int] = []
        current_key: tuple[int, int] | None = None
        rows = 0
        for sweep_value in by_point:
            n, _, m = scenario.dimensions_at(sweep_value)
            key = (n, m)
            if current and (
                key != current_key
                or rows + scenario.repetitions > CROSS_POINT_MAX_ROWS
            ):
                chunks.append(current)
                current, rows = [], 0
            current_key = key
            current.append(sweep_value)
            rows += scenario.repetitions
        if current:
            chunks.append(current)
        for chunk in chunks:
            # One sampling pass serves every curve of every chunked point.
            blocks = {
                sweep_value: CellBlock.sample(
                    scenario, sweep_value, streams, memoize=memoize
                )
                for sweep_value in chunk
            }
            chunk_labels: list[str] = []
            for sweep_value in chunk:
                for label in by_point[sweep_value]:
                    if label not in chunk_labels:
                        chunk_labels.append(label)
            for label in chunk_labels:
                points = [v for v in chunk if label in by_point[v]]
                results = provider_by_label[label].evaluate_blocks(
                    [blocks[v] for v in points]
                )
                for sweep_value, result in zip(points, results):
                    record(sweep_value, label, result.values(), result.failures)


def _run_blocks(
    scenario: ScenarioConfig,
    entropy,
    use_milp: bool,
    use_oto: bool,
    milp_time_limit: float,
    workers: int | None,
    memoize: bool,
    extra_curves: tuple[str, ...],
    figure_id: str,
    seed: int | None,
    store: ResultStore | None,
    resume: bool,
) -> tuple[dict[str, Series], int]:
    """The block-scheduled engine: one (sweep point, curve) unit at a time."""
    providers = resolve_curves(
        scenario,
        use_milp=use_milp,
        use_oto=use_oto,
        milp_time_limit=milp_time_limit,
        extra_curves=extra_curves,
    )
    labels = [provider.label for provider in providers]
    scenario_hash = scenario.stable_hash()
    repetitions = scenario.repetitions

    # Partition the (sweep point, curve) grid into already-stored blocks
    # and blocks that still need computing.
    outcomes: dict[tuple[int, str], tuple[list[float], int]] = {}
    pending: list[tuple[int, str]] = []
    for sweep_value in scenario.sweep_values:
        for label in labels:
            stored = _stored_block(
                store, resume, figure_id, scenario_hash, seed, label,
                sweep_value, repetitions,
            )
            if stored is not None:
                outcomes[(sweep_value, label)] = stored
            else:
                pending.append((sweep_value, label))

    def record(sweep_value: int, label: str, values: list[float], failures: int) -> None:
        outcomes[(sweep_value, label)] = (values, failures)
        if store is not None:
            store.put_cell(
                CellRecord(
                    figure_id=figure_id,
                    scenario_hash=scenario_hash,
                    seed=seed,
                    curve=label,
                    sweep_value=int(sweep_value),
                    repetitions=repetitions,
                    values=values,
                    failures=failures,
                )
            )

    execute_blocks(
        scenario,
        entropy,
        pending,
        dict(zip(labels, providers)),
        record,
        milp_time_limit=milp_time_limit,
        workers=workers,
        memoize=memoize,
    )

    # Fold in the fixed (sweep value, curve) order so series contents do
    # not depend on worker scheduling or resume state.
    series: dict[str, Series] = {label: Series(label=label) for label in labels}
    milp_failures = 0
    for sweep_value in scenario.sweep_values:
        for label in labels:
            values, failures = outcomes[(sweep_value, label)]
            series[label].extend(sweep_value, values)
            milp_failures += failures
    return series, milp_failures


def _run_cells(
    scenario: ScenarioConfig,
    entropy,
    use_milp: bool,
    use_oto: bool,
    milp_time_limit: float,
    workers: int | None,
    memoize: bool,
) -> tuple[dict[str, Series], int]:
    """PR 1's per-cell reference engine (kept for equivalence testing)."""
    series: dict[str, Series] = {
        name: Series(label=name) for name in scenario.heuristics
    }
    if use_milp:
        series[MIP_LABEL] = Series(label=MIP_LABEL)
    if use_oto:
        series[OTO_LABEL] = Series(label=OTO_LABEL)

    cells = [
        (sweep_value, repetition)
        for sweep_value in scenario.sweep_values
        for repetition in range(scenario.repetitions)
    ]
    if workers is not None and workers > 1:
        # PR 1 hardcoded memoize=False here, silently dropping
        # run_scenario(workers=N, memoize_instances=True); the flag is now
        # honoured through each worker's process-local instance cache
        # (results are unaffected — memoized instances are identical).
        job_args = [
            (scenario, sweep_value, repetition, entropy, use_milp, use_oto,
             milp_time_limit, memoize)
            for sweep_value, repetition in cells
        ]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            chunksize = max(1, len(job_args) // (workers * 4))
            outcomes = list(pool.map(_evaluate_cell_args, job_args, chunksize=chunksize))
    else:
        outcomes = [
            _evaluate_cell(
                scenario, sweep_value, repetition, entropy, use_milp, use_oto,
                milp_time_limit, memoize,
            )
            for sweep_value, repetition in cells
        ]

    # Fold the per-cell results back in the serial iteration order, so the
    # series contents do not depend on worker scheduling.
    milp_failures = 0
    for (sweep_value, _repetition), (periods, cell_failures) in zip(cells, outcomes):
        milp_failures += cell_failures
        for label, value in periods.items():
            series[label].add(sweep_value, value)
    return series, milp_failures


def run_figure(
    figure_id: str,
    *,
    seed: int | None = 0,
    repetitions: int | None = None,
    max_points: int | None = None,
    include_milp: bool | None = None,
    include_one_to_one: bool | None = None,
    milp_time_limit: float = 30.0,
    workers: int | None = None,
    memoize_instances: bool = False,
    engine: str = "block",
    include_optional: bool = False,
    store: ResultStore | None = None,
    resume: bool = False,
) -> ExperimentResult:
    """Reproduce one figure of the paper.

    Parameters
    ----------
    figure_id:
        One of :func:`repro.experiments.figures.figure_ids` ("fig5" ..
        "fig12").
    repetitions, max_points:
        Optional scaling-down of the paper's full sweep (fewer repetitions
        per point / fewer sweep points), for quick runs and benchmarks.
    workers:
        Size of the block process pool; ``None``/``1`` runs serially
        with identical results for the heuristic and one-to-one curves
        (see :func:`run_scenario` for the MIP time-limit caveat).
    memoize_instances:
        Cache sampled instances per process (worth enabling on parallel
        block runs, where several curve jobs share each sweep point's
        instances — see :func:`run_scenario`).
    engine:
        ``"block"`` (default) or the per-cell reference path ``"cells"``.
    include_optional:
        Also run the figure's optional curves (e.g. the H4ls refinement
        on Figure 6); block engine only.
    store, resume:
        Persist completed blocks to a
        :class:`~repro.experiments.store.ResultStore` / skip the blocks
        it already holds (see :func:`run_scenario`).
    """
    try:
        spec: FigureSpec = FIGURES[figure_id]
    except KeyError as exc:
        raise ExperimentError(
            f"unknown figure {figure_id!r}; known figures: {sorted(FIGURES)}"
        ) from exc
    scenario = spec.scenario.scaled(repetitions=repetitions, max_points=max_points)
    return run_scenario(
        scenario,
        seed=seed,
        include_milp=include_milp,
        include_one_to_one=include_one_to_one,
        milp_time_limit=milp_time_limit,
        figure_id=figure_id,
        normalize_to=spec.normalize_to,
        workers=workers,
        memoize_instances=memoize_instances,
        engine=engine,
        extra_curves=spec.optional_curves if include_optional else (),
        store=store,
        resume=resume,
    )
