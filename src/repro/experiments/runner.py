"""Experiment runner: regenerate any figure of the paper's evaluation.

The runner draws the random instances of a scenario, runs every heuristic
(and, where the figure calls for them, the exact MIP and the optimal
one-to-one mapping) on the *same* instances, and collects the resulting
periods into one :class:`~repro.analysis.Series` per curve.  The output
:class:`ExperimentResult` renders the figure as a plain-text table or CSV
and computes the aggregate normalisation factors reported in Section 7.

Repetitions are independent, so the runner can fan them out over a
process pool (``workers=N``).  Every (sweep point, repetition) cell
re-derives its random streams from the root seed through
:class:`~repro.simulation.rng.RandomStreamFactory` — whose label hashing
is process-independent — and results are folded back in the serial
iteration order, so a parallel run is bit-for-bit identical to the
serial one for the same seed.  The one caveat is the MIP curve: the
backend solves under a *wall-clock* time limit, so a cell that proves
optimality in a lightly loaded serial run may time out (and report NaN)
when ``workers`` oversubscribes the CPU.  Heuristic and one-to-one
curves are pure functions of the seed and carry the full guarantee.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..analysis.normalize import NormalizationReport, normalize_series
from ..analysis.stats import Series
from ..analysis.tables import series_table, series_to_csv
from ..exact.milp import solve_specialized_milp
from ..exact.one_to_one import optimal_one_to_one
from ..exceptions import ExperimentError, SolverError
from ..generators.scenarios import ScenarioConfig, sample_instance
from ..heuristics import get_heuristic
from ..simulation.rng import RandomStreamFactory
from .figures import FIGURES, FigureSpec

__all__ = ["ExperimentResult", "run_figure", "run_scenario"]

#: Label used for the exact MIP curve.
MIP_LABEL = "MIP"
#: Label used for the optimal one-to-one curve.
OTO_LABEL = "OtO"


@dataclass(slots=True)
class ExperimentResult:
    """Everything produced by one experiment run.

    Attributes
    ----------
    figure_id:
        Which figure was reproduced.
    scenario:
        The (possibly scaled-down) scenario that was actually run.
    series:
        ``{curve label: Series}`` of raw periods (ms).
    normalized:
        Same curves divided by the reference curve, when the figure calls
        for normalisation (Figure 11); ``None`` otherwise.
    seed:
        The root seed used for instance generation.
    elapsed_seconds:
        Wall-clock duration of the run.
    milp_failures:
        Number of (point, repetition) pairs where the MIP backend did not
        return a proven optimum (mirrors the paper's observation that the
        exact solver stops scaling around 15 tasks).
    """

    figure_id: str
    scenario: ScenarioConfig
    series: dict[str, Series]
    normalized: dict[str, Series] | None
    seed: int | None
    elapsed_seconds: float
    milp_failures: int = 0

    @property
    def x_name(self) -> str:
        """Name of the sweep variable ("n" or "p")."""
        return "n" if self.scenario.sweep == "tasks" else "p"

    def reported_series(self) -> dict[str, Series]:
        """The curves the figure actually shows (normalised when relevant)."""
        return self.normalized if self.normalized is not None else self.series

    def to_table(self, *, float_format: str = "{:.1f}") -> str:
        """Plain-text rendition of the figure."""
        return series_table(
            self.reported_series(), x_name=self.x_name, float_format=float_format
        )

    def to_csv(self) -> str:
        """CSV rendition of the figure (means plus spread columns)."""
        return series_to_csv(self.reported_series(), x_name=self.x_name)

    def normalization_report(self, reference: str) -> NormalizationReport:
        """Aggregate factors of every curve against ``reference``."""
        if reference not in self.series:
            raise ExperimentError(
                f"no series named {reference!r} in this experiment; available: "
                f"{sorted(self.series)}"
            )
        return NormalizationReport.from_series(self.series, reference)


def _evaluate_cell(
    scenario: ScenarioConfig,
    sweep_value: int,
    repetition: int,
    entropy,
    use_milp: bool,
    use_oto: bool,
    milp_time_limit: float,
    memoize: bool,
) -> tuple[dict[str, float], int]:
    """Run every curve of one (sweep point, repetition) cell.

    Returns ``({curve label: period}, milp_failures)``.  All randomness
    is re-derived from ``entropy`` through the stream factory, so the
    result is a pure function of its arguments — the property that makes
    the process-pool path bit-for-bit identical to the serial one.  The
    exception is the MIP curve, whose wall-clock ``milp_time_limit``
    makes timeout-induced NaNs load-dependent.
    """
    streams = RandomStreamFactory(np.random.SeedSequence(entropy))
    instance = sample_instance(
        scenario, sweep_value, repetition, streams, memoize=memoize
    )
    periods: dict[str, float] = {}
    for name in scenario.heuristics:
        rng = streams.stream(f"heuristic/{name}/{sweep_value}", repetition)
        periods[name] = get_heuristic(name).solve(instance, rng).period
    if use_oto:
        try:
            periods[OTO_LABEL] = optimal_one_to_one(instance).period
        except SolverError:
            periods[OTO_LABEL] = float("nan")
    milp_failures = 0
    if use_milp:
        milp = solve_specialized_milp(instance, time_limit=milp_time_limit)
        if milp.is_optimal:
            periods[MIP_LABEL] = milp.period
        else:
            milp_failures = 1
            periods[MIP_LABEL] = float("nan")
    return periods, milp_failures


def _evaluate_cell_args(args) -> tuple[dict[str, float], int]:
    """Tuple-unpacking adapter for ``ProcessPoolExecutor.map``."""
    return _evaluate_cell(*args)


def run_scenario(
    scenario: ScenarioConfig,
    *,
    seed: int | None = 0,
    include_milp: bool | None = None,
    include_one_to_one: bool | None = None,
    milp_time_limit: float = 30.0,
    figure_id: str = "custom",
    normalize_to: str | None = None,
    workers: int | None = None,
    memoize_instances: bool = False,
) -> ExperimentResult:
    """Run one scenario and collect the per-curve period series.

    Parameters
    ----------
    scenario:
        The scenario to run (use :meth:`ScenarioConfig.scaled` to shrink
        the paper's full sweep for quick runs).
    seed:
        Root seed for reproducible instance generation.
    include_milp, include_one_to_one:
        Override the scenario's flags (useful to skip the expensive MIP).
    milp_time_limit:
        Per-instance time limit handed to the MIP backend.
    figure_id, normalize_to:
        Reporting metadata (filled automatically by :func:`run_figure`).
    workers:
        Fan the (sweep point, repetition) cells out over a process pool
        of this size.  ``None`` or ``1`` runs serially in-process; any
        value produces bit-for-bit the same heuristic/one-to-one series
        as the serial run for the same seed (MIP cells can additionally
        time out under CPU oversubscription — see the module docstring).
    memoize_instances:
        Cache sampled instances under their (scenario, cell, seed) key
        (serial path only).  Worth turning on when several runs in one
        process share a scenario and seed — e.g. repeated ``run_figure``
        calls in a benchmark loop; each cell is drawn once per run, so
        a single run gains nothing and the default keeps memory flat.
    """
    start = time.perf_counter()
    streams = RandomStreamFactory(seed)
    # Resolve the effective entropy up front: with seed=None a random one
    # is drawn here once, so serial and parallel cells share it.
    entropy = streams.entropy
    use_milp = scenario.include_milp if include_milp is None else include_milp
    use_oto = scenario.include_one_to_one if include_one_to_one is None else include_one_to_one

    series: dict[str, Series] = {name: Series(label=name) for name in scenario.heuristics}
    if use_milp:
        series[MIP_LABEL] = Series(label=MIP_LABEL)
    if use_oto:
        series[OTO_LABEL] = Series(label=OTO_LABEL)

    cells = [
        (sweep_value, repetition)
        for sweep_value in scenario.sweep_values
        for repetition in range(scenario.repetitions)
    ]
    if workers is not None and workers > 1:
        job_args = [
            (scenario, sweep_value, repetition, entropy, use_milp, use_oto, milp_time_limit, False)
            for sweep_value, repetition in cells
        ]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            chunksize = max(1, len(job_args) // (workers * 4))
            outcomes = list(pool.map(_evaluate_cell_args, job_args, chunksize=chunksize))
    else:
        outcomes = [
            _evaluate_cell(
                scenario, sweep_value, repetition, entropy, use_milp, use_oto,
                milp_time_limit, memoize_instances,
            )
            for sweep_value, repetition in cells
        ]

    # Fold the per-cell results back in the serial iteration order, so the
    # series contents do not depend on worker scheduling.
    milp_failures = 0
    for (sweep_value, _repetition), (periods, cell_failures) in zip(cells, outcomes):
        milp_failures += cell_failures
        for label, value in periods.items():
            series[label].add(sweep_value, value)

    normalized: dict[str, Series] | None = None
    if normalize_to is not None:
        if normalize_to not in series:
            raise ExperimentError(
                f"cannot normalise to {normalize_to!r}: that curve was not produced"
            )
        reference = series[normalize_to]
        normalized = {
            label: normalize_series(curve, reference)
            for label, curve in series.items()
            if label != normalize_to
        }

    return ExperimentResult(
        figure_id=figure_id,
        scenario=scenario,
        series=series,
        normalized=normalized,
        seed=seed,
        elapsed_seconds=time.perf_counter() - start,
        milp_failures=milp_failures,
    )


def run_figure(
    figure_id: str,
    *,
    seed: int | None = 0,
    repetitions: int | None = None,
    max_points: int | None = None,
    include_milp: bool | None = None,
    include_one_to_one: bool | None = None,
    milp_time_limit: float = 30.0,
    workers: int | None = None,
) -> ExperimentResult:
    """Reproduce one figure of the paper.

    Parameters
    ----------
    figure_id:
        One of :func:`repro.experiments.figures.figure_ids` ("fig5" ..
        "fig12").
    repetitions, max_points:
        Optional scaling-down of the paper's full sweep (fewer repetitions
        per point / fewer sweep points), for quick runs and benchmarks.
    workers:
        Size of the repetition process pool; ``None``/``1`` runs serially
        with identical results for the heuristic and one-to-one curves
        (see :func:`run_scenario` for the MIP time-limit caveat).
    """
    try:
        spec: FigureSpec = FIGURES[figure_id]
    except KeyError as exc:
        raise ExperimentError(
            f"unknown figure {figure_id!r}; known figures: {sorted(FIGURES)}"
        ) from exc
    scenario = spec.scenario.scaled(repetitions=repetitions, max_points=max_points)
    return run_scenario(
        scenario,
        seed=seed,
        include_milp=include_milp,
        include_one_to_one=include_one_to_one,
        milp_time_limit=milp_time_limit,
        figure_id=figure_id,
        normalize_to=spec.normalize_to,
        workers=workers,
    )
