"""Reproduction of the paper's evaluation section (Figures 5-12)."""

from .figures import FIGURES, FigureSpec, figure_ids
from .reporting import figure_report, summary_line
from .runner import ExperimentResult, run_figure, run_scenario

__all__ = [
    "FIGURES",
    "FigureSpec",
    "figure_ids",
    "figure_report",
    "summary_line",
    "ExperimentResult",
    "run_figure",
    "run_scenario",
]
