"""Reproduction of the paper's evaluation section (Figures 5-12).

The experiment layer is built around three pieces:

* :mod:`~repro.experiments.providers` — pluggable *curve providers*
  (heuristics, exact baselines, local-search refinements) that score
  whole repetition blocks through the vectorized
  :class:`~repro.batch.InstanceStack` pass;
* :mod:`~repro.experiments.runner` — the block-scheduled engine
  (:func:`run_figure` / :func:`run_scenario`, serial or process-parallel,
  bit-for-bit reproducible from the seed);
* :mod:`~repro.experiments.store` — the append-only
  :class:`~repro.experiments.store.ResultStore` that makes long
  campaigns persistent, interruptible and resumable.
"""

from .figures import FIGURES, FigureSpec, figure_ids
from .providers import (
    BlockResult,
    CellBlock,
    CurveProvider,
    HeuristicProvider,
    LocalSearchProvider,
    MilpProvider,
    OneToOneProvider,
    available_providers,
    register_provider,
    resolve_curves,
    resolve_provider,
)
from .reporting import (
    aggregate_report,
    aggregate_results,
    aggregate_seeds,
    campaign_report,
    figure_report,
    summary_line,
)
from .runner import ExperimentResult, execute_blocks, run_figure, run_scenario
from .store import CellRecord, MergeReport, ResultStore, RunMeta

__all__ = [
    "FIGURES",
    "FigureSpec",
    "figure_ids",
    "figure_report",
    "summary_line",
    "campaign_report",
    "aggregate_report",
    "aggregate_results",
    "aggregate_seeds",
    "ExperimentResult",
    "run_figure",
    "run_scenario",
    "execute_blocks",
    "BlockResult",
    "CellBlock",
    "CurveProvider",
    "HeuristicProvider",
    "LocalSearchProvider",
    "MilpProvider",
    "OneToOneProvider",
    "available_providers",
    "register_provider",
    "resolve_curves",
    "resolve_provider",
    "CellRecord",
    "MergeReport",
    "ResultStore",
    "RunMeta",
]
