"""Persistent, resumable store for experiment results.

A :class:`ResultStore` is a directory holding an **append-only**
JSON-lines file (``results.jsonl``) plus a byte-offset index
(``index.json``).  Every completed ``(figure, scenario hash, seed,
curve, sweep value)`` block lands as one line the moment it finishes, so
an interrupted campaign loses at most the block in flight;
``run_figure(..., store=..., resume=True)`` then skips every stored
block and only computes the remainder.

The append/scan/index machinery itself is format-agnostic and lives in
:class:`JsonlStore`: a directory with one append-only JSONL file of
``{"kind": ..., "data": {...}}`` records plus a byte-offset index over
the kinds a subclass declares.  :class:`ResultStore` builds the
experiment store on it (kinds ``cell`` and ``meta``); the solve
service's persistent cache tier
(:class:`repro.service.cache.SolveCacheStore`) reuses the same base for
its response records.

Record kinds
------------
``cell``
    One curve's periods over the repetitions of one sweep point
    (:class:`CellRecord`).  The primary unit of resumption.
``meta``
    One experiment run's header (:class:`RunMeta`): the full scenario
    config, seed, curve order and reporting options — everything needed
    to rebuild an :class:`~repro.experiments.runner.ExperimentResult`
    from its cells (:meth:`ResultStore.load_result`).

The index maps record keys to byte offsets and remembers the prefix
length it covers; on open, any lines appended after the last index write
(e.g. by a run that was killed) are recovered by scanning the tail; a
crash-truncated final line is recovered when its JSON is complete (only
the newline was lost) and ignored otherwise.  Records are append-only:
re-putting a key appends a new line and the index points at the newest
one.

Append-only cell records are also what makes stores *mergeable*:
:meth:`ResultStore.merge` unions the shard stores of a distributed
campaign back into one (see :mod:`repro.campaign`), with key-level
conflict detection and idempotent re-merge.
"""

from __future__ import annotations

import json
import math
import os
import threading
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING

from ..analysis.stats import Series
from ..exceptions import ExperimentError
from ..generators.scenarios import ScenarioConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .runner import ExperimentResult

__all__ = ["JsonlStore", "CellRecord", "RunMeta", "ResultStore", "MergeReport"]

#: How many appended records may accumulate before the index is rewritten.
_INDEX_EVERY = 64


@dataclass(frozen=True, slots=True)
class CellRecord:
    """One stored (figure, scenario, seed, curve, sweep point) block.

    ``values`` holds the per-repetition periods in repetition order —
    the order the engine and the per-cell runner both produce — so a
    stored block with ``repetitions >= R`` can serve a run that needs
    only its first ``R`` repetitions.
    """

    figure_id: str
    scenario_hash: str
    seed: int
    curve: str
    sweep_value: int
    repetitions: int
    values: list[float]
    failures: int = 0

    def __post_init__(self) -> None:
        if len(self.values) != self.repetitions:
            raise ExperimentError(
                f"cell record carries {len(self.values)} values for "
                f"{self.repetitions} repetitions"
            )

    @property
    def key(self) -> tuple[str, str, int, str, int]:
        """The record's identity within a store."""
        return (
            self.figure_id,
            self.scenario_hash,
            self.seed,
            self.curve,
            self.sweep_value,
        )

    def sliced(self, repetitions: int) -> tuple[list[float], int]:
        """``(values, failures)`` restricted to the first ``repetitions``.

        A record serving a run with fewer repetitions recounts its
        failures from the slice's NaNs — exact for the MIP curve, whose
        NaNs are precisely its unproven repetitions (the only curve that
        reports failures).  Requires ``repetitions <= self.repetitions``.
        """
        if repetitions > self.repetitions:
            raise ExperimentError(
                f"cell record holds {self.repetitions} repetitions, "
                f"{repetitions} requested"
            )
        values = self.values[:repetitions]
        if repetitions == self.repetitions:
            return values, self.failures
        failures = (
            sum(1 for v in values if math.isnan(v)) if self.failures else 0
        )
        return values, failures


@dataclass(frozen=True, slots=True)
class RunMeta:
    """Header of one experiment run (everything but the cell data)."""

    figure_id: str
    scenario_hash: str
    seed: int
    scenario: dict
    curves: list[str]
    normalize_to: str | None = None
    elapsed_seconds: float = 0.0
    #: Kernel backend the run was computed with (informational — results
    #: are bit-for-bit backend-independent, so shards solved on different
    #: backends still merge).
    backend: str | None = None

    @property
    def key(self) -> tuple[str, str, int]:
        """The run's identity within a store."""
        return (self.figure_id, self.scenario_hash, self.seed)


def _key_str(parts: tuple) -> str:
    return "|".join(str(part) for part in parts)


def _values_equal(left: list[float], right: list[float]) -> bool:
    """Elementwise equality treating NaN as equal to NaN.

    Cell values are bit-for-bit reproducible floats except for the MIP
    curve's timeout NaNs; two stores that both recorded "no proven
    optimum" for a repetition agree, which plain ``==`` would deny.
    """
    if len(left) != len(right):
        return False
    return all(
        a == b or (math.isnan(a) and math.isnan(b)) for a, b in zip(left, right)
    )


def _cells_equal(left: CellRecord, right: CellRecord) -> bool:
    """Whether two records of the same key carry identical results."""
    return (
        left.repetitions == right.repetitions
        and left.failures == right.failures
        and _values_equal(left.values, right.values)
    )


def _metas_compatible(left: RunMeta, right: RunMeta) -> bool:
    """Same-run headers may differ only in ``elapsed_seconds``/``backend``.

    Shards of one distributed campaign each record their own wall-clock
    and may have solved on different kernel backends (every backend is
    bit-for-bit identical), but must agree on everything that defines
    the run (scenario, curve order, normalisation).
    """
    return replace(left, elapsed_seconds=0.0, backend=None) == replace(
        right, elapsed_seconds=0.0, backend=None
    )


@dataclass(slots=True)
class MergeReport:
    """What one :meth:`ResultStore.merge` call did.

    Attributes
    ----------
    sources:
        Number of source stores merged.
    cells_added, cells_skipped:
        New cell records appended / identical records already present.
    metas_added, metas_updated, metas_skipped:
        New run headers / headers rewritten with a larger
        ``elapsed_seconds`` / headers already present.
    """

    sources: int = 0
    cells_added: int = 0
    cells_skipped: int = 0
    metas_added: int = 0
    metas_updated: int = 0
    metas_skipped: int = 0

    def summary(self) -> str:
        """One-line report for the CLI."""
        return (
            f"merged {self.sources} store(s): {self.cells_added} cell(s) added, "
            f"{self.cells_skipped} identical skipped; {self.metas_added} run "
            f"header(s) added, {self.metas_updated} updated"
        )


@dataclass(slots=True)
class _MergePlan:
    """Staged writes of one merge (nothing touches disk until it is clean)."""

    cells: dict[str, CellRecord] = field(default_factory=dict)
    metas: dict[str, RunMeta] = field(default_factory=dict)
    conflicts: list[str] = field(default_factory=list)
    report: MergeReport = field(default_factory=MergeReport)


#: Exceptions that mark a record line (or an index entry) as unusable.
_PARSE_ERRORS = (KeyError, TypeError, ValueError, ExperimentError)


class JsonlStore:
    """Append-only JSONL records plus a byte-offset index, in a directory.

    The reusable persistence core shared by :class:`ResultStore` and the
    solve service's cache tier.  A store directory holds one append-only
    JSON-lines file of ``{"kind": ..., "data": {...}}`` records and an
    ``index.json`` mapping record keys to byte offsets per kind.
    Subclasses declare the record kinds they index (:attr:`KINDS`) and
    how a record's key is derived from its payload (:meth:`_key_of`).

    Guarantees carried by the base:

    * records are append-only and flushed per write, so concurrent
      readers and an interrupted writer always see a consistent prefix;
      re-putting a key appends a new line and the index points at the
      newest one;
    * on open, lines appended after the last index write are recovered
      by scanning the tail; a crash-truncated final line is recovered
      when its JSON survived intact (only the newline lost) and ignored
      otherwise;
    * a **stale or corrupt index** — offsets that point into the middle
      of records, at records of another key, or past EOF (e.g. an
      ``index.json`` copied from another store, or a records file
      rewritten underneath it) — is detected on first use and rebuilt
      from the records file instead of surfacing as a parse error;
    * one *instance* may be shared across threads: reads, writes and
      :meth:`compact` serialise on an internal lock, so an appender
      thread racing a compaction never strands its record in the
      swapped-out file.

    One store must not be written by several *processes* at once.
    """

    #: Record kinds this store indexes; anything else is ignored on scan.
    KINDS: tuple[str, ...] = ()
    #: ``index.json`` field name per kind (defaults to the kind itself).
    INDEX_NAMES: dict[str, str] = {}
    #: Name of the append-only records file inside the store directory.
    RECORDS_FILE = "results.jsonl"

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        if not self.path.exists():  # tolerate read-only existing stores
            self.path.mkdir(parents=True, exist_ok=True)
        self._records_path = self.path / self.RECORDS_FILE
        self._index_path = self.path / "index.json"
        self._index: dict[str, dict[str, int]] = {kind: {} for kind in self.KINDS}
        self._indexed_end = 0
        self._unindexed = 0
        #: The records file ends in a torn (newline-less) line from an
        #: interrupted write; the next append must start on a fresh line.
        self._tail_torn = False
        #: The on-disk index lags the in-memory one (new appends, or a
        #: tail scan found records the stored index misses).
        self._index_dirty = False
        #: Serialises every index/file mutation so one instance may be
        #: shared across threads — above all an appender racing
        #: :meth:`compact`, whose file swap would otherwise strand bytes
        #: the appender just wrote in the replaced-away inode.
        #: Reentrant because reads heal (:meth:`_rebuild`) and writes
        #: auto-flush inside already-locked regions.  Separate *store
        #: instances* are still single-writer (see the class docstring).
        self._lock = threading.RLock()
        self._load()

    # -- subclass interface -------------------------------------------------------
    def _key_of(self, kind: str, data: dict) -> str:
        """The index key of one record's payload (raise on malformed data)."""
        raise NotImplementedError  # pragma: no cover - abstract

    def _index_name(self, kind: str) -> str:
        return self.INDEX_NAMES.get(kind, kind)

    # -- loading ----------------------------------------------------------------
    def _load(self) -> None:
        for index in self._index.values():
            index.clear()
        self._indexed_end = 0
        self._tail_torn = False
        self._index_dirty = False
        if self._index_path.exists():
            try:
                raw = json.loads(self._index_path.read_text(encoding="utf-8"))
                end = int(raw["end"])
                size = (
                    self._records_path.stat().st_size
                    if self._records_path.exists()
                    else 0
                )
                if 0 <= end <= size:
                    loaded = {
                        kind: {
                            key: int(offset)
                            for key, offset in raw[self._index_name(kind)].items()
                        }
                        for kind in self.KINDS
                    }
                    for kind, entries in loaded.items():
                        self._index[kind].update(entries)
                    self._indexed_end = end
            except _PARSE_ERRORS:
                # Corrupt index file: fall back to a full scan.
                for index in self._index.values():
                    index.clear()
                self._indexed_end = 0
        self._scan_tail()

    def _scan_tail(self) -> None:
        """Index every complete record appended after the stored index."""
        if not self._records_path.exists():
            return
        with open(self._records_path, "rb") as handle:
            handle.seek(self._indexed_end)
            offset = self._indexed_end
            for line in handle:
                if not line.endswith(b"\n"):
                    # Torn final write of an interrupted run: remember it
                    # so the next append starts on a fresh line instead of
                    # merging into (and losing) both records on a rescan.
                    # A kill can also truncate *only* the trailing newline
                    # — the record itself is complete JSON and is
                    # recovered rather than dropped (a strict prefix of a
                    # JSON object never parses, so this cannot resurrect
                    # a half-written record).  The record stays outside
                    # the indexed prefix (``_indexed_end`` is not
                    # advanced): its line is still open, and the next
                    # append or rescan re-derives it from the tail.
                    self._tail_torn = True
                    self._index_record(line, offset)
                    break
                self._index_record(line, offset)
                offset += len(line)
                self._index_dirty = True
            self._indexed_end = offset

    def _index_record(self, line: bytes, offset: int) -> None:
        """Register one scanned line's key, ignoring foreign/corrupt lines."""
        try:
            record = json.loads(line)
            kind = record["kind"]
            if kind in self._index:
                self._index[kind][self._key_of(kind, record["data"])] = offset
        except _PARSE_ERRORS:
            pass

    def _rebuild(self) -> None:
        """Re-derive the whole index from the records file.

        Invoked when a lookup finds its offset unusable — the on-disk
        index was stale (another store's, or older than a rewrite of the
        records file).  The records file itself stays the single source
        of truth, so a full scan restores every record that is really
        there; the refreshed index is persisted on the next flush.
        """
        for index in self._index.values():
            index.clear()
        self._indexed_end = 0
        self._tail_torn = False
        self._scan_tail()
        self._index_dirty = True

    # -- reading ----------------------------------------------------------------
    def _read(self, offset: int) -> dict:
        with open(self._records_path, "rb") as handle:
            handle.seek(offset)
            return json.loads(handle.readline())

    def _get(self, kind: str, key: str) -> dict | None:
        """The newest payload stored under ``key``, or ``None``.

        An offset that reads back as anything but a ``kind`` record with
        this key means the index is stale; the index is then rebuilt from
        the records file and the lookup retried once.
        """
        with self._lock:
            offset = self._index[kind].get(key)
            if offset is None:
                return None
            try:
                payload = self._read(offset)
                if payload["kind"] == kind:
                    data = payload["data"]
                    if self._key_of(kind, data) == key:
                        return data
            except _PARSE_ERRORS:
                pass
            self._rebuild()
            offset = self._index[kind].get(key)
            if offset is None:
                return None
            return self._read(offset)["data"]

    def _payloads(self, kind: str) -> list[tuple[str, dict]]:
        """Every indexed ``(key, payload)`` of a kind, in key order.

        Bulk reads (``cells()``, ``runs()``, the merge scan) would pay
        one open/seek/close per record through :meth:`_get`; at campaign
        scale that is tens of thousands of syscall round-trips per store.
        Like :meth:`_get`, a record that does not read back as its key
        triggers one index rebuild and retry.
        """
        with self._lock:
            try:
                return self._scan_payloads(kind)
            except _PARSE_ERRORS:
                self._rebuild()
                return self._scan_payloads(kind)

    def _scan_payloads(self, kind: str) -> list[tuple[str, dict]]:
        index = self._index[kind]
        if not index:
            return []
        with open(self._records_path, "rb") as handle:
            payloads = []
            for key, offset in sorted(index.items()):
                handle.seek(offset)
                payload = json.loads(handle.readline())
                if payload["kind"] != kind or self._key_of(kind, payload["data"]) != key:
                    raise ExperimentError(
                        f"stale index entry for {kind} record {key!r}"
                    )
                payloads.append((key, payload["data"]))
        return payloads

    # -- writing ----------------------------------------------------------------
    def _append(self, kind: str, data: dict) -> int:
        # A torn final line (interrupted writer) must be closed first, or
        # this record would merge into it and be dropped by any future
        # recovery scan.
        prefix = b"\n" if self._tail_torn else b""
        line = (
            json.dumps({"kind": kind, "data": data}, allow_nan=True) + "\n"
        ).encode("utf-8")
        with open(self._records_path, "ab") as handle:
            start = handle.tell()
            handle.write(prefix + line)
        self._tail_torn = False
        offset = start + len(prefix)  # where the record's JSON begins
        self._indexed_end = offset + len(line)
        self._unindexed += 1
        self._index_dirty = True
        return offset

    def _put(self, kind: str, key: str, data: dict) -> None:
        """Append one record and point the index at it (last write wins)."""
        with self._lock:
            offset = self._append(kind, data)
            self._index[kind][key] = offset
            self._maybe_flush()

    def _maybe_flush(self) -> None:
        """Periodic index rewrite — call only *after* the new record's key
        is registered, or a crash right after the flush would persist an
        ``end`` past a record the index does not know about."""
        if self._unindexed >= _INDEX_EVERY:
            self.flush()

    # -- compaction ---------------------------------------------------------------
    def _live_snapshot(self) -> list[tuple[int, str, str]]:
        """Every indexed ``(offset, kind, key)`` in offset order.

        ``list(...)`` pins each per-kind dict before iterating — cheap
        insurance against a caller touching the index mid-sweep even
        though :meth:`compact` already holds the instance lock.
        """
        return sorted(
            (offset, kind, key)
            for kind, index in self._index.items()
            for key, offset in list(index.items())
        )

    def compact(self) -> int:
        """Rewrite the records file keeping only the newest record per key.

        Append-only logs grow without bound under re-puts (every re-put
        of a key leaves its older lines dead on disk); long-lived users
        — the solve service's persistent cache above all — call this to
        reclaim them.  Live records are written to a temporary file in
        their current offset order (so relative append recency is
        preserved), then atomically swapped in with ``os.replace``; a
        crash at any point leaves either the old file or the new one,
        never a mix.  The in-memory index is rewritten to the new
        offsets and persisted.  Returns the number of bytes reclaimed.

        Holds the instance lock for the whole rewrite: an appender
        thread sharing this instance blocks until the swap is done
        rather than writing into the about-to-be-replaced file.
        """
        with self._lock:
            live = self._live_snapshot()
            try:
                lines = self._live_lines(live)
            except _PARSE_ERRORS:
                # Stale index (same failure mode _get heals): rebuild from
                # the records file and compact what is really there.
                self._rebuild()
                live = self._live_snapshot()
                lines = self._live_lines(live)
            before = (
                self._records_path.stat().st_size if self._records_path.exists() else 0
            )
            tmp = self._records_path.parent / (self._records_path.name + ".tmp")
            offsets: list[tuple[str, str, int]] = []
            position = 0
            with open(tmp, "wb") as handle:
                for (_, kind, key), line in zip(live, lines):
                    offsets.append((kind, key, position))
                    handle.write(line)
                    position += len(line)
            os.replace(tmp, self._records_path)
            # The per-kind dicts are aliased by subclasses; mutate in place.
            for index in self._index.values():
                index.clear()
            for kind, key, offset in offsets:
                self._index[kind][key] = offset
            self._indexed_end = position
            self._tail_torn = False
            self._index_dirty = True
            self.flush()
            return before - position

    def _live_lines(self, live: list[tuple[int, str, str]]) -> list[bytes]:
        """The indexed records' raw lines, validated against their keys."""
        if not live:
            return []
        lines = []
        with open(self._records_path, "rb") as handle:
            for offset, kind, key in live:
                handle.seek(offset)
                line = handle.readline()
                record = json.loads(line)
                if record["kind"] != kind or self._key_of(kind, record["data"]) != key:
                    raise ExperimentError(
                        f"stale index entry for {kind} record {key!r}"
                    )
                if not line.endswith(b"\n"):
                    line += b"\n"  # close a torn-but-complete final record
                lines.append(line)
        return lines

    def flush(self) -> None:
        """Persist the in-memory index next to the records file.

        A no-op when the on-disk index is already current, so read-only
        usage (``microrepro export`` on a shipped store) never writes.
        """
        with self._lock:
            if not self._index_dirty:
                self._unindexed = 0
                return
            payload = {"end": self._indexed_end}
            for kind in self.KINDS:
                payload[self._index_name(kind)] = self._index[kind]
            tmp = self._index_path.with_suffix(".json.tmp")
            tmp.write_text(json.dumps(payload), encoding="utf-8")
            tmp.replace(self._index_path)
            self._unindexed = 0
            self._index_dirty = False

    def close(self) -> None:
        """Flush the index (the records file is already on disk)."""
        self.flush()

    def __enter__(self) -> "JsonlStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ResultStore(JsonlStore):
    """Append-only on-disk store of experiment cells and run headers.

    Parameters
    ----------
    path:
        Directory of the store (created if missing).

    Notes
    -----
    The store keeps only byte offsets in memory; record payloads are read
    back on demand.  Durability, tail recovery and stale-index rebuild
    come from :class:`JsonlStore`; this class contributes the record
    schema (:class:`CellRecord` / :class:`RunMeta`), the
    :class:`~repro.experiments.runner.ExperimentResult` round-trip and
    shard-store merging.
    """

    KINDS = ("cell", "meta")
    #: Index field names predate the generic base; keeping them means a
    #: PR 2-era store opens without a rescan.
    INDEX_NAMES = {"cell": "cells", "meta": "meta"}

    def __init__(self, path: str | os.PathLike):
        super().__init__(path)
        # Aliases onto the generic per-kind index (same dict objects).
        self._cells = self._index["cell"]
        self._meta = self._index["meta"]

    def _key_of(self, kind: str, data: dict) -> str:
        if kind == "cell":
            return _key_str(CellRecord(**data).key)
        return _key_str(RunMeta(**data).key)

    # -- cells ------------------------------------------------------------------
    def put_cell(self, record: CellRecord) -> None:
        """Append one completed block (last write wins on re-put)."""
        self._put("cell", _key_str(record.key), asdict(record))

    def get_cell(
        self,
        figure_id: str,
        scenario_hash: str,
        seed: int,
        curve: str,
        sweep_value: int,
    ) -> CellRecord | None:
        """The stored block for a key, or ``None``."""
        data = self._get(
            "cell", _key_str((figure_id, scenario_hash, seed, curve, sweep_value))
        )
        if data is None:
            return None
        return CellRecord(**data)

    def has_cell(
        self,
        figure_id: str,
        scenario_hash: str,
        seed: int,
        curve: str,
        sweep_value: int,
    ) -> bool:
        """True when a block is stored under the key."""
        return (
            _key_str((figure_id, scenario_hash, seed, curve, sweep_value))
            in self._cells
        )

    def __len__(self) -> int:
        return len(self._cells)

    # -- run headers -------------------------------------------------------------
    def put_meta(self, meta: RunMeta) -> None:
        """Append one run header (last write wins on re-put)."""
        self._put("meta", _key_str(meta.key), asdict(meta))

    def get_meta(
        self, figure_id: str, scenario_hash: str, seed: int
    ) -> RunMeta | None:
        """The stored run header for a key, or ``None``."""
        data = self._get("meta", _key_str((figure_id, scenario_hash, seed)))
        if data is None:
            return None
        return RunMeta(**data)

    def runs(self) -> list[RunMeta]:
        """Every stored run header, in key order."""
        return [RunMeta(**data) for _, data in self._payloads("meta")]

    # -- ExperimentResult round-trip ----------------------------------------------
    def save_result(self, result: "ExperimentResult") -> None:
        """Store a completed run: its header plus one cell per curve/point.

        Per-cell MIP failures are recovered from the NaN count of the MIP
        curve (the runner sets NaN exactly on unproven repetitions).
        """
        if result.seed is None:
            raise ExperimentError(
                "storing an experiment requires an explicit seed (got None)"
            )
        scenario = result.scenario
        scenario_hash = scenario.stable_hash()
        from .providers import MIP_LABEL

        for curve, series in result.series.items():
            for sweep_value in series.x_values:
                values = [float(v) for v in series.samples[sweep_value]]
                failures = (
                    sum(1 for v in values if math.isnan(v))
                    if curve == MIP_LABEL
                    else 0
                )
                self.put_cell(
                    CellRecord(
                        figure_id=result.figure_id,
                        scenario_hash=scenario_hash,
                        seed=result.seed,
                        curve=curve,
                        sweep_value=int(sweep_value),
                        repetitions=len(values),
                        values=values,
                        failures=failures,
                    )
                )
        self.put_meta(
            RunMeta(
                figure_id=result.figure_id,
                scenario_hash=scenario_hash,
                seed=result.seed,
                scenario=scenario.to_dict(),
                curves=list(result.series),
                normalize_to=(
                    None
                    if result.normalized is None
                    else next(
                        (
                            label
                            for label in result.series
                            if label not in result.normalized
                        ),
                        None,
                    )
                ),
                elapsed_seconds=result.elapsed_seconds,
            )
        )
        self.flush()

    def load_result(
        self,
        figure_id: str,
        *,
        scenario_hash: str | None = None,
        seed: int | None = None,
    ) -> "ExperimentResult":
        """Rebuild an :class:`ExperimentResult` from stored records.

        ``scenario_hash`` / ``seed`` narrow the lookup when several runs
        of the same figure share the store; with one match they can be
        omitted.
        """
        from ..analysis.normalize import normalize_series
        from .runner import ExperimentResult

        matches = [
            meta
            for meta in self.runs()
            if meta.figure_id == figure_id
            and (scenario_hash is None or meta.scenario_hash == scenario_hash)
            and (seed is None or meta.seed == seed)
        ]
        if not matches:
            raise ExperimentError(
                f"no stored run of {figure_id!r}"
                + (f" with seed {seed}" if seed is not None else "")
                + f" in {self.path}"
            )
        if len(matches) > 1:
            raise ExperimentError(
                f"{len(matches)} stored runs match {figure_id!r}; disambiguate "
                "with scenario_hash= and/or seed="
            )
        meta = matches[0]
        scenario = ScenarioConfig.from_dict(meta.scenario)
        series: dict[str, Series] = {}
        milp_failures = 0
        for curve in meta.curves:
            curve_series = Series(label=curve)
            for sweep_value in scenario.sweep_values:
                record = self.get_cell(
                    meta.figure_id, meta.scenario_hash, meta.seed, curve, sweep_value
                )
                if record is None:
                    raise ExperimentError(
                        f"store is missing cell ({curve!r}, {sweep_value}) of "
                        f"{figure_id!r}; was the run interrupted? resume it first"
                    )
                values, failures = record.sliced(scenario.repetitions)
                curve_series.extend(sweep_value, values)
                milp_failures += failures
            series[curve] = curve_series
        normalized = None
        if meta.normalize_to is not None:
            reference = series[meta.normalize_to]
            normalized = {
                label: normalize_series(curve_series, reference)
                for label, curve_series in series.items()
                if label != meta.normalize_to
            }
        return ExperimentResult(
            figure_id=meta.figure_id,
            scenario=scenario,
            series=series,
            normalized=normalized,
            seed=meta.seed,
            elapsed_seconds=meta.elapsed_seconds,
            milp_failures=milp_failures,
        )

    def cells(self) -> list[CellRecord]:
        """Every stored cell (newest record per key), in key order."""
        return [CellRecord(**data) for _, data in self._payloads("cell")]

    # -- merging -----------------------------------------------------------------
    def merge(self, *stores: "ResultStore") -> MergeReport:
        """Union other stores' records into this one (the shard-merge core).

        Cell records are matched by key: keys absent here are appended,
        identical records (same values bit for bit, NaN matching NaN) are
        skipped — so re-merging an already-merged shard is a no-op — and a
        key carrying *different* values anywhere (against this store or
        between two sources) is a hard error listing every offending cell.
        Run headers must agree on everything but ``elapsed_seconds``,
        which keeps the per-shard maximum.

        The merge is two-phase: every source is checked before anything is
        written, so a conflicting merge leaves this store untouched.
        Records land in sorted key order, making the merged byte stream
        independent of source completion times (only of source *order*,
        which callers should keep stable).
        """
        plan = _MergePlan()
        plan.report.sources = len(stores)
        # Preload this store's records once: staging otherwise pays one
        # open/seek/close per overlapping key, which dominates the
        # conflict scan on an idempotent re-merge.
        mine_cells = {
            key: CellRecord(**data) for key, data in self._payloads("cell")
        }
        mine_metas = {key: RunMeta(**data) for key, data in self._payloads("meta")}
        for store in stores:
            if store.path.resolve() == self.path.resolve():
                raise ExperimentError(f"cannot merge a store into itself: {self.path}")
            for record in store.cells():
                self._stage_cell(plan, record, mine_cells, source=store)
            for meta in store.runs():
                self._stage_meta(plan, meta, mine_metas, source=store)
        if plan.conflicts:
            shown = plan.conflicts[:10]
            more = len(plan.conflicts) - len(shown)
            listing = "\n  - ".join(shown)
            raise ExperimentError(
                f"store merge aborted, {len(plan.conflicts)} conflicting record(s) "
                f"(nothing was written):\n  - {listing}"
                + (f"\n  ... and {more} more" if more else "")
            )
        for _, record in sorted(plan.cells.items()):
            self.put_cell(record)
        for _, meta in sorted(plan.metas.items()):
            self.put_meta(meta)
        self.flush()
        return plan.report

    def _stage_cell(
        self,
        plan: _MergePlan,
        record: CellRecord,
        mine_cells: dict[str, CellRecord],
        *,
        source: "ResultStore",
    ) -> None:
        key = _key_str(record.key)
        staged = plan.cells.get(key)
        existing = staged if staged is not None else mine_cells.get(key)
        if existing is None:
            plan.cells[key] = record
            plan.report.cells_added += 1
        elif _cells_equal(existing, record):
            plan.report.cells_skipped += 1
        else:
            plan.conflicts.append(
                f"cell {key}: {source.path} disagrees with previously merged values"
            )

    def _stage_meta(
        self,
        plan: _MergePlan,
        meta: RunMeta,
        mine_metas: dict[str, RunMeta],
        *,
        source: "ResultStore",
    ) -> None:
        key = _key_str(meta.key)
        staged = plan.metas.get(key)
        existing = staged if staged is not None else mine_metas.get(key)
        if existing is None:
            plan.metas[key] = meta
            plan.report.metas_added += 1
        elif not _metas_compatible(existing, meta):
            plan.conflicts.append(
                f"run header {key}: {source.path} disagrees on the scenario, curve "
                "order or normalisation"
            )
        elif meta.elapsed_seconds > existing.elapsed_seconds:
            # Keep the slowest shard's wall-clock (idempotent re-merge:
            # max() is monotone, so a second pass changes nothing).
            plan.metas[key] = replace(existing, elapsed_seconds=meta.elapsed_seconds)
            if staged is None:
                plan.report.metas_updated += 1
        else:
            plan.report.metas_skipped += 1

    # -- catalogue ----------------------------------------------------------------
    def catalog(self) -> list[dict]:
        """One summary row per stored run (for ``microrepro export``)."""
        rows = []
        for meta in self.runs():
            scenario = ScenarioConfig.from_dict(meta.scenario)
            expected = len(meta.curves) * len(scenario.sweep_values)
            stored = sum(
                1
                for curve in meta.curves
                for sweep_value in scenario.sweep_values
                if self.has_cell(
                    meta.figure_id, meta.scenario_hash, meta.seed, curve, sweep_value
                )
            )
            rows.append(
                {
                    "figure": meta.figure_id,
                    "scenario_hash": meta.scenario_hash,
                    "seed": meta.seed,
                    "curves": len(meta.curves),
                    "points": len(scenario.sweep_values),
                    "cells": f"{stored}/{expected}",
                    "complete": stored == expected,
                }
            )
        return rows
