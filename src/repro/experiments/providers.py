"""Pluggable curve providers for the block-scheduled experiment engine.

PR 1's runner hardcoded the curve set of every figure: ``_evaluate_cell``
knew about heuristics, the exact MIP and the optimal one-to-one mapping,
and re-entered Python once per (sweep point, repetition) cell.  This
module splits that into *curve providers* discovered through a registry
mirroring :mod:`repro.heuristics.base`: a figure (or a CLI flag) names
its curves, the engine resolves each name to a provider, and each
provider scores one whole **block** — the ``R`` structurally identical
repetitions of one sweep point, stacked into a
:class:`~repro.batch.InstanceStack` — at a time.

Built-in providers
------------------
* :class:`HeuristicProvider` — any registered heuristic; solves the
  ``R`` mappings in one lock-step ``solve_batch`` call when the
  heuristic implements :class:`~repro.heuristics.BatchHeuristic`
  (falling back to the per-instance loop otherwise) and scores them in
  a single vectorized stack pass (bit-for-bit identical to ``R``
  sequential solve + scalar evaluation calls);
* :class:`LocalSearchProvider` — best-single-move refinement of any base
  heuristic's mapping (curve label ``"<base>+ls"``);
* :class:`MilpProvider` — the exact specialized MIP (label ``"MIP"``);
* :class:`OneToOneProvider` — the optimal one-to-one mapping (``"OtO"``).

Randomness contract: every provider derives its per-repetition streams
from the block's :class:`~repro.simulation.rng.RandomStreamFactory` with
the same labels the per-cell runner used, so the block engine reproduces
the per-cell series bit for bit and stays process-independent.
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from ..batch import InstanceStack
from ..core.instance import ProblemInstance
from ..exact.milp import solve_specialized_milp
from ..exact.one_to_one import optimal_one_to_one
from ..exceptions import ExperimentError, ReproError, SolverError
from ..generators.scenarios import ScenarioConfig, sample_instance
from ..heuristics import get_heuristic
from ..heuristics.base import batch_solve_min_repetitions, solve_stack
from ..heuristics.local_search import refine_specialized, refine_specialized_batch
from ..simulation.rng import RandomStreamFactory

__all__ = [
    "MIP_LABEL",
    "OTO_LABEL",
    "LOCAL_SEARCH_SUFFIX",
    "CROSS_POINT_MAX_ROWS",
    "CellBlock",
    "BlockResult",
    "block_signature",
    "CurveProvider",
    "HeuristicProvider",
    "LocalSearchProvider",
    "MilpProvider",
    "OneToOneProvider",
    "register_provider",
    "available_providers",
    "resolve_provider",
    "resolve_curves",
]

#: Label used for the exact MIP curve.
MIP_LABEL = "MIP"
#: Label used for the optimal one-to-one curve.
OTO_LABEL = "OtO"
#: Curve-label suffix resolved to a :class:`LocalSearchProvider`.
LOCAL_SEARCH_SUFFIX = "+ls"
# The batch/per-instance crossover moved to repro.heuristics.base when the
# routing became provider-agnostic (the solve service's micro-batcher uses
# the same solve_stack entry and the crossover is now calibrated per
# heuristic; see repro.heuristics.base.batch_solve_min_repetitions).

#: Row cap for one cross-point stacked solve.  Signature-aligned blocks
#: are concatenated up to this many repetitions per kernel pass; beyond
#: it the intermediate (rows, n, m) probe tensors start to crowd cache
#: for no extra amortization.
CROSS_POINT_MAX_ROWS = 512


def block_signature(block: "CellBlock") -> tuple:
    """Structural identity of a block's instances.

    Two blocks with equal signatures (same precedence edges, task count
    and platform size) can be stacked into one
    :class:`~repro.batch.InstanceStack` — the same check
    ``InstanceStack.from_instances`` enforces, exposed here so the
    engine can group sweep points *across* blocks before solving.  Type
    vectors are deliberately excluded: period evaluation ignores them
    and the batch solvers carry them per row.
    """
    first = block.instances[0]
    return (
        tuple(sorted(first.application.graph.edges)),
        first.num_tasks,
        first.num_machines,
    )


def _aligned_chunks(
    blocks: Sequence["CellBlock"], max_rows: int | None = None
) -> list[list["CellBlock"]]:
    """Group blocks by signature, then cap each chunk's total rows.

    Order-preserving within a signature; a single block deeper than the
    cap still forms its own (oversized) chunk.
    """
    cap = CROSS_POINT_MAX_ROWS if max_rows is None else max_rows
    groups: dict[tuple, list[CellBlock]] = {}
    for block in blocks:
        groups.setdefault(block_signature(block), []).append(block)
    chunks: list[list[CellBlock]] = []
    for group in groups.values():
        chunk: list[CellBlock] = []
        rows = 0
        for block in group:
            if chunk and rows + block.repetitions > cap:
                chunks.append(chunk)
                chunk, rows = [], 0
            chunk.append(block)
            rows += block.repetitions
        chunks.append(chunk)
    return chunks


def _split_periods(chunk, periods):
    """Slice a chunk's concatenated ``(rows,)`` periods back per block."""
    offset = 0
    for block in chunk:
        yield block, periods[offset : offset + block.repetitions]
        offset += block.repetitions


@dataclass(frozen=True, slots=True)
class CellBlock:
    """The ``R`` repetitions of one sweep point, sampled and stacked.

    Attributes
    ----------
    scenario:
        The scenario being run.
    sweep_value:
        The sweep point (``n`` or ``p``).
    instances:
        The ``R`` sampled instances, in repetition order.  Providers that
        need type information (heuristics, exact solvers) work on these.
    stack:
        The same instances as an :class:`~repro.batch.InstanceStack`
        (types relaxed — repetitions share the chain graph, not the type
        vectors), used to score ``R`` mappings in one vectorized pass.
    streams:
        The experiment's stream factory; providers derive their
        per-repetition RNGs from it.
    """

    scenario: ScenarioConfig
    sweep_value: int
    instances: tuple[ProblemInstance, ...]
    stack: InstanceStack
    streams: RandomStreamFactory

    @classmethod
    def sample(
        cls,
        scenario: ScenarioConfig,
        sweep_value: int,
        streams: RandomStreamFactory,
        *,
        memoize: bool = False,
    ) -> "CellBlock":
        """Draw the block's instances (identical to the per-cell runner's)."""
        instances = tuple(
            sample_instance(scenario, sweep_value, repetition, streams, memoize=memoize)
            for repetition in range(scenario.repetitions)
        )
        stack = InstanceStack.from_instances(instances, require_uniform_types=False)
        return cls(
            scenario=scenario,
            sweep_value=sweep_value,
            instances=instances,
            stack=stack,
            streams=streams,
        )

    @property
    def repetitions(self) -> int:
        """Block depth ``R``."""
        return len(self.instances)


@dataclass(frozen=True, slots=True)
class BlockResult:
    """One curve's scores over a block.

    Attributes
    ----------
    label:
        Curve label (series key).
    periods:
        ``(R,)`` array of periods, NaN where the backend produced none.
    failures:
        Number of repetitions where an exact backend failed to prove
        optimality (feeds ``ExperimentResult.milp_failures``).
    """

    label: str
    periods: np.ndarray
    failures: int = 0

    def values(self) -> list[float]:
        """The periods as plain floats (JSON-ready, repetition order)."""
        return [float(v) for v in self.periods]


class CurveProvider(abc.ABC):
    """One curve of a figure: scores whole repetition blocks.

    Subclasses set :attr:`label` (the series key) and implement
    :meth:`evaluate_block`.  Providers must be resolvable by label in a
    fresh process (see :func:`resolve_provider`) so the engine can fan
    blocks out over a process pool.
    """

    #: Curve label; unique within one experiment run.
    label: str = ""

    @abc.abstractmethod
    def evaluate_block(self, block: CellBlock) -> BlockResult:
        """Score every repetition of ``block`` for this curve."""

    def evaluate_blocks(self, blocks: Sequence[CellBlock]) -> list[BlockResult]:
        """Score several blocks; results in input order.

        The default is a plain per-block loop.  Providers whose kernels
        are row-independent (the heuristic family) override this to
        stack signature-aligned blocks into one solve + one evaluation
        pass — bit-for-bit identical, one kernel entry instead of one
        per sweep point.
        """
        return [self.evaluate_block(block) for block in blocks]

    def configure(self, *, milp_time_limit: float | None = None) -> "CurveProvider":
        """Apply engine-level options; the default ignores them all."""
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(label={self.label!r})"


class HeuristicProvider(CurveProvider):
    """Curve provider wrapping one registered heuristic.

    When the heuristic implements the
    :class:`~repro.heuristics.BatchHeuristic` protocol (the greedy H4
    family, the binary-search H2/H3, H4ls), the whole block is solved in
    one lock-step ``solve_batch`` call; otherwise (randomized heuristics
    such as H1, or third-party heuristics without a batch kernel) the
    mappings are produced per instance exactly as before.  Either way the
    block's periods come from one vectorized stack pass, and both paths
    are bit-for-bit identical to ``R`` sequential solve + evaluate calls.

    Parameters
    ----------
    name:
        Registered heuristic name (also the curve label).
    batch:
        ``None`` (default) batch-solves blocks of at least
        :data:`BATCH_SOLVE_MIN_REPETITIONS` repetitions — below the
        crossover, array-op overhead makes lock-step slower than the
        plain loop.  ``True``/``False`` force one path (tests,
        benchmarks); results are identical either way.
    """

    def __init__(self, name: str, *, batch: bool | None = None):
        self._heuristic = get_heuristic(name)
        self._batch = batch
        # Keep the *requested* spelling: it is both the series key and the
        # RNG stream label, which the per-cell runner derived from the
        # scenario's declared name.
        self.label = name

    def _use_batch_rows(self, rows: int) -> bool:
        if self._batch is not None:
            return self._batch
        return rows >= batch_solve_min_repetitions(
            getattr(self._heuristic, "name", None)
        )

    def _use_batch(self, block: CellBlock) -> bool:
        return self._use_batch_rows(block.repetitions)

    def solve_block(self, block: CellBlock) -> np.ndarray:
        """The ``(R, n)`` assignment array of the heuristic over the block.

        Routing (lock-step ``solve_batch`` above the depth crossover,
        per-instance loop below it or for heuristics without a kernel)
        lives in :func:`repro.heuristics.base.solve_stack`, the same
        entry the solve service's micro-batcher uses; per-repetition RNG
        streams keep the per-cell runner's labels.
        """
        return solve_stack(
            self._heuristic,
            block.instances,
            lambda repetition: block.streams.stream(
                f"heuristic/{self.label}/{block.sweep_value}", repetition
            ),
            batch=self._use_batch(block),
        )

    def solve_blocks(self, chunk: Sequence[CellBlock]) -> np.ndarray:
        """Concatenated assignments over signature-aligned blocks.

        One ``solve_stack`` entry for ``sum(R)`` rows; the batch/loop
        crossover is decided on the *total* depth, so shallow sweep
        points that would each fall below the per-heuristic threshold
        still ride the lock-step kernels together.  Every row keeps its
        own block's RNG stream label, so results are bit-for-bit the
        per-block ones.
        """
        instances = [inst for block in chunk for inst in block.instances]
        sources = [
            (block, repetition)
            for block in chunk
            for repetition in range(block.repetitions)
        ]

        def stream(row: int):
            block, repetition = sources[row]
            return block.streams.stream(
                f"heuristic/{self.label}/{block.sweep_value}", repetition
            )

        return solve_stack(
            self._heuristic,
            instances,
            stream,
            batch=self._use_batch_rows(len(instances)),
        )

    def evaluate_block(self, block: CellBlock) -> BlockResult:
        periods = block.stack.periods(self.solve_block(block))
        return BlockResult(label=self.label, periods=periods)

    def evaluate_blocks(self, blocks: Sequence[CellBlock]) -> list[BlockResult]:
        out: dict[int, BlockResult] = {}
        for chunk in _aligned_chunks(blocks):
            if len(chunk) == 1:
                out[id(chunk[0])] = self.evaluate_block(chunk[0])
                continue
            instances = [inst for block in chunk for inst in block.instances]
            stack = InstanceStack.from_instances(
                instances, require_uniform_types=False
            )
            periods = stack.periods(self.solve_blocks(chunk))
            for block, block_periods in _split_periods(chunk, periods):
                out[id(block)] = BlockResult(
                    label=self.label, periods=block_periods
                )
        return [out[id(block)] for block in blocks]


class LocalSearchProvider(CurveProvider):
    """Best-single-move refinement of a base heuristic's mapping.

    The curve labelled ``"<base>+ls"`` runs the base heuristic per
    repetition, descends with
    :func:`repro.heuristics.local_search.refine_specialized`, and keeps
    the better of seed and refined mapping per instance (so the curve is
    never above the base's).
    """

    def __init__(
        self, base: str = "H4w", label: str | None = None, *, batch: bool | None = None
    ):
        self._base = HeuristicProvider(base, batch=batch)
        self.label = label if label is not None else f"{base}{LOCAL_SEARCH_SUFFIX}"

    @property
    def base_label(self) -> str:
        """Label of the refined base heuristic."""
        return self._base.label

    def evaluate_block(self, block: CellBlock) -> BlockResult:
        seeds = self._base.solve_block(block)
        if self._base._use_batch(block):
            # One lock-step descent across the whole block (bit-for-bit
            # the per-repetition refine_specialized loop below).
            refined, _ = refine_specialized_batch(block.instances, seeds)
        else:
            refined = np.empty_like(seeds)
            for repetition, instance in enumerate(block.instances):
                mapping, _ = refine_specialized(instance, seeds[repetition])
                refined[repetition] = mapping.as_array
        periods = np.minimum(
            block.stack.periods(refined), block.stack.periods(seeds)
        )
        return BlockResult(label=self.label, periods=periods)

    def evaluate_blocks(self, blocks: Sequence[CellBlock]) -> list[BlockResult]:
        out: dict[int, BlockResult] = {}
        for chunk in _aligned_chunks(blocks):
            if len(chunk) == 1:
                out[id(chunk[0])] = self.evaluate_block(chunk[0])
                continue
            instances = [inst for block in chunk for inst in block.instances]
            seeds = self._base.solve_blocks(chunk)
            if self._base._use_batch_rows(len(instances)):
                refined, _ = refine_specialized_batch(instances, seeds)
            else:
                refined = np.empty_like(seeds)
                for row, instance in enumerate(instances):
                    mapping, _ = refine_specialized(instance, seeds[row])
                    refined[row] = mapping.as_array
            stack = InstanceStack.from_instances(
                instances, require_uniform_types=False
            )
            periods = np.minimum(stack.periods(refined), stack.periods(seeds))
            for block, block_periods in _split_periods(chunk, periods):
                out[id(block)] = BlockResult(
                    label=self.label, periods=block_periods
                )
        return [out[id(block)] for block in blocks]


class MilpProvider(CurveProvider):
    """Exact specialized MIP baseline (label ``"MIP"``).

    The backend solves under a wall-clock time limit, so this provider
    stays per-instance; a repetition that does not prove optimality
    contributes NaN and counts as a failure.
    """

    label = MIP_LABEL

    def __init__(self, time_limit: float = 30.0):
        self.time_limit = time_limit

    def configure(self, *, milp_time_limit: float | None = None) -> "MilpProvider":
        if milp_time_limit is not None:
            self.time_limit = milp_time_limit
        return self

    def evaluate_block(self, block: CellBlock) -> BlockResult:
        periods = np.full(block.repetitions, np.nan, dtype=np.float64)
        failures = 0
        for repetition, instance in enumerate(block.instances):
            result = solve_specialized_milp(instance, time_limit=self.time_limit)
            if result.is_optimal:
                periods[repetition] = result.period
            else:
                failures += 1
        return BlockResult(label=self.label, periods=periods, failures=failures)


class OneToOneProvider(CurveProvider):
    """Optimal one-to-one mapping baseline (label ``"OtO"``)."""

    label = OTO_LABEL

    def evaluate_block(self, block: CellBlock) -> BlockResult:
        periods = np.full(block.repetitions, np.nan, dtype=np.float64)
        for repetition, instance in enumerate(block.instances):
            try:
                periods[repetition] = optimal_one_to_one(instance).period
            except SolverError:
                pass
        return BlockResult(label=self.label, periods=periods)


# -- registry -----------------------------------------------------------------------

_REGISTRY: dict[str, Callable[[], CurveProvider]] = {}


def register_provider(factory: Callable[[], CurveProvider]) -> Callable[[], CurveProvider]:
    """Register a no-argument provider factory under its instance label.

    Usable as a class decorator on :class:`CurveProvider` subclasses with
    a fixed label, mirroring
    :func:`repro.heuristics.base.register_heuristic`.
    """
    instance = factory()
    key = instance.label.lower()
    if not key:
        raise ReproError("curve provider must define a non-empty label")
    if key in _REGISTRY:
        raise ReproError(f"curve provider {instance.label!r} is already registered")
    _REGISTRY[key] = factory
    return factory


register_provider(MilpProvider)
register_provider(OneToOneProvider)


def available_providers() -> list[str]:
    """Labels of the explicitly registered providers, in registration order."""
    return [factory().label for factory in _REGISTRY.values()]


def resolve_provider(
    label: str, *, milp_time_limit: float | None = None
) -> CurveProvider:
    """Resolve a curve label to a configured provider.

    Resolution order: explicitly registered providers (``"MIP"``,
    ``"OtO"``, user registrations), then registered heuristics, then the
    ``"<base>+ls"`` local-search convention.
    """
    key = label.lower()
    if key in _REGISTRY:
        return _REGISTRY[key]().configure(milp_time_limit=milp_time_limit)
    try:
        get_heuristic(label)
    except ReproError:
        pass
    else:
        return HeuristicProvider(label)
    if key.endswith(LOCAL_SEARCH_SUFFIX):
        base = label[: -len(LOCAL_SEARCH_SUFFIX)]
        try:
            return LocalSearchProvider(base, label=label)
        except ReproError as exc:
            raise ExperimentError(
                f"cannot resolve curve {label!r}: unknown base heuristic {base!r}"
            ) from exc
    from ..heuristics import available_heuristics

    raise ExperimentError(
        f"unknown curve {label!r}; known providers: {available_providers()}, "
        f"heuristics: {available_heuristics()}, plus '<heuristic>{LOCAL_SEARCH_SUFFIX}'"
    )


def resolve_curves(
    scenario: ScenarioConfig,
    *,
    use_milp: bool,
    use_oto: bool,
    milp_time_limit: float = 30.0,
    extra_curves: Sequence[str] = (),
) -> list[CurveProvider]:
    """The ordered provider list of one experiment run.

    Order matches the per-cell runner's series layout: the scenario's
    heuristics, any extra curves, then MIP and OtO when enabled.
    Duplicate labels are an error — every series key must be unique, and
    labels are compared case-insensitively because provider resolution
    is (``"h4w"`` and ``"H4w"`` would be the same curve under different
    RNG stream labels).
    """
    declared = {name.lower() for name in scenario.heuristics}
    labels = list(scenario.heuristics) + [
        label for label in extra_curves if label.lower() not in declared
    ]
    providers = [
        resolve_provider(label, milp_time_limit=milp_time_limit) for label in labels
    ]
    if use_milp:
        providers.append(MilpProvider(time_limit=milp_time_limit))
    if use_oto:
        providers.append(OneToOneProvider())
    seen: set[str] = set()
    for provider in providers:
        key = provider.label.lower()
        if key in seen:
            raise ExperimentError(
                f"duplicate curve label {provider.label!r} in this experiment"
            )
        seen.add(key)
    return providers
