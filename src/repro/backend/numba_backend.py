"""Optional numba kernel backend (``pip install -e .[numba]``).

JIT-compiled loop kernels mirroring :mod:`repro.backend.numpy_backend`
operation for operation — same elementwise arithmetic, same accumulation
order — so results stay bit-for-bit identical to the numpy reference
(and therefore to the scalar path).  The wins come from fusing the
probe's ``(R, m, m)`` candidate tensor into a running max and from
replacing ``np.add.at`` (notoriously slow in numpy) with plain loops.

All kernels compile with ``cache=True`` so the JIT cost is paid once per
machine (CI caches the numba cache directory between runs).  Importing
this module without a working numba raises
:class:`~repro.backend.BackendUnavailableError`; the registry then falls
back to numpy with a single warning.
"""

from __future__ import annotations

import numpy as np

from . import BackendUnavailableError

__all__ = ["make_backend"]


def _compile_kernels():
    """Import numba and build the jitted kernel set; raises if unavailable."""
    try:
        from numba import njit
    except Exception as exc:  # pragma: no cover - requires a broken install
        raise BackendUnavailableError(f"cannot import numba: {exc}") from exc

    @njit(cache=True)
    def propagate_x(order, succ, f_used):
        R, n = f_used.shape
        x = np.ones((R, n), dtype=np.float64)
        for idx in range(order.shape[0]):
            task = order[idx]
            s = succ[task]
            if s < 0:
                for r in range(R):
                    x[r, task] = 1.0 / (1.0 - f_used[r, task])
            else:
                for r in range(R):
                    x[r, task] = x[r, s] / (1.0 - f_used[r, task])
        return x

    @njit(cache=True)
    def scatter_periods(assignments, contributions, num_machines):
        R, n = assignments.shape
        periods = np.zeros((R, num_machines), dtype=np.float64)
        for r in range(R):
            for i in range(n):
                periods[r, assignments[r, i]] += contributions[r, i]
        return periods

    @njit(cache=True)
    def scatter_add_rows(out, cols, vals):
        R, k = cols.shape
        for r in range(R):
            for j in range(k):
                out[r, cols[r, j]] += vals[r, j]

    @njit(cache=True)
    def critical_mask(machine_periods, rel_tol):
        R, m = machine_periods.shape
        mask = np.empty((R, m), dtype=np.bool_)
        for r in range(R):
            top = machine_periods[r, 0]
            for u in range(1, m):
                if machine_periods[r, u] > top:
                    top = machine_periods[r, u]
            cutoff = top * (1.0 - rel_tol)
            positive = top > 0.0
            for u in range(m):
                mask[r, u] = (machine_periods[r, u] >= cutoff) and positive
        return mask

    @njit(cache=True)
    def probe_candidates(base, rest, ratios, x_task, w_task):
        R, m = base.shape
        out = np.empty((R, m), dtype=np.float64)
        for r in range(R):
            for v in range(m):
                ratio = ratios[r, v]
                # Same op order as the numpy reference: the diagonal term
                # is (x * ratio) * w added onto base + rest * ratio.
                diag_add = (x_task[r] * ratio) * w_task[r, v]
                best = base[r, 0] + rest[r, 0] * ratio
                if v == 0:
                    best += diag_add
                for u in range(1, m):
                    c = base[r, u] + rest[r, u] * ratio
                    if u == v:
                        c += diag_add
                    if c > best:
                        best = c
                out[r, v] = best
        return out

    @njit(cache=True)
    def first_feasible(order, feasible):
        R, m = order.shape
        chosen = np.empty(R, dtype=np.int64)
        for r in range(R):
            # Default to the most preferred machine, matching numpy's
            # argmax-of-all-False convention for infeasible rows.
            chosen[r] = order[r, 0]
            for j in range(m):
                u = order[r, j]
                if feasible[r, u]:
                    chosen[r] = u
                    break
        return chosen

    return (
        propagate_x,
        scatter_periods,
        scatter_add_rows,
        critical_mask,
        probe_candidates,
        first_feasible,
    )


def _smoke(kernels) -> None:
    """One tiny end-to-end compile/run so a broken toolchain fails at load."""
    propagate_x, scatter_periods, scatter_add_rows, critical_mask, probe, first = kernels
    order = np.array([1, 0], dtype=np.int64)
    succ = np.array([1, -1], dtype=np.int64)
    f_used = np.array([[0.1, 0.2]], dtype=np.float64)
    x = propagate_x(order, succ, f_used)
    assignments = np.array([[0, 1]], dtype=np.int64)
    periods = scatter_periods(assignments, x, 2)
    scatter_add_rows(periods, assignments, x)
    critical_mask(periods, 1e-9)
    probe(
        periods,
        periods,
        np.ones((1, 2), dtype=np.float64),
        np.ones(1, dtype=np.float64),
        np.ones((1, 2), dtype=np.float64),
    )
    first(np.array([[1, 0]], dtype=np.int64), np.array([[True, False]]))


def make_backend():
    """The numba :class:`~repro.backend.KernelBackend`, or raise."""
    from . import KernelBackend

    kernels = _compile_kernels()
    try:
        _smoke(kernels)
    except Exception as exc:  # pragma: no cover - requires a broken toolchain
        raise BackendUnavailableError(f"numba kernels fail to compile: {exc}") from exc
    propagate_x, scatter_periods, scatter_add_rows, critical_mask, probe, first = kernels
    return KernelBackend(
        name="numba",
        propagate_x=propagate_x,
        scatter_periods=scatter_periods,
        scatter_add_rows=scatter_add_rows,
        critical_mask=critical_mask,
        probe_candidates=probe,
        first_feasible=first,
    )
