"""Pure-numpy kernel backend — the default and the bit-for-bit reference.

These functions are the hot kernels previously inlined in
:mod:`repro.batch.evaluation`, :mod:`repro.batch.incremental` and
:mod:`repro.heuristics.binary_search`, extracted verbatim: every other
backend must reproduce their operation and accumulation order exactly
(see the :class:`~repro.backend.KernelBackend` contract).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "propagate_x",
    "scatter_periods",
    "scatter_add_rows",
    "critical_mask",
    "probe_candidates",
    "first_feasible",
    "make_backend",
]


def propagate_x(order: np.ndarray, succ: np.ndarray, f_used: np.ndarray) -> np.ndarray:
    """Backward ``x`` recursion vectorized over rows.

    ``f_used[r, i]`` is the failure rate of task ``i`` under row ``r``'s
    assignment; ``order`` is the reverse topological task order and
    ``succ[t]`` the successor of ``t`` (-1 at a sink).  Returns ``x`` of
    the same shape as ``f_used``.
    """
    x = np.ones_like(f_used)
    for task in order:
        s = succ[task]
        if s < 0:
            x[:, task] = 1.0 / (1.0 - f_used[:, task])
        else:
            x[:, task] = x[:, s] / (1.0 - f_used[:, task])
    return x


def scatter_periods(
    assignments: np.ndarray, contributions: np.ndarray, num_machines: int
) -> np.ndarray:
    """Row-wise segment sum of task contributions into machine periods.

    ``np.add.at`` visits the tasks of each row in ascending order — the
    same accumulation order as the scalar kernel, keeping results
    bit-for-bit identical.
    """
    rows = np.arange(assignments.shape[0])[:, np.newaxis]
    periods = np.zeros((assignments.shape[0], num_machines), dtype=np.float64)
    np.add.at(periods, (rows, assignments), contributions)
    return periods


def scatter_add_rows(out: np.ndarray, cols: np.ndarray, vals: np.ndarray) -> None:
    """In-place row-wise scatter-add: ``out[r, cols[r, k]] += vals[r, k]``.

    Visits ``k`` ascending per row (row-major ``np.add.at`` order), the
    accumulation order the incremental probes rely on.
    """
    rows = np.arange(out.shape[0])[:, np.newaxis]
    np.add.at(out, (rows, cols), vals)


def critical_mask(machine_periods: np.ndarray, rel_tol: float) -> np.ndarray:
    """Boolean ``(R, m)`` mask of machines attaining each row's maximum."""
    top = machine_periods.max(axis=1, keepdims=True)
    return (machine_periods >= top * (1.0 - rel_tol)) & (top > 0.0)


def probe_candidates(
    base: np.ndarray,
    rest: np.ndarray,
    ratios: np.ndarray,
    x_task: np.ndarray,
    w_task: np.ndarray,
) -> np.ndarray:
    """Fused single-move candidate probe; ``(R, m)`` periods per destination.

    Entry ``[r, v]`` is ``max_u(base[r, u] + rest[r, u] * ratios[r, v])``
    with ``(x_task[r] * ratios[r, v]) * w_task[r, v]`` added at the moved
    task's destination ``u == v`` — exactly the candidate tensor the
    incremental evaluators used to materialise, reduced over its last
    axis.
    """
    m = base.shape[1]
    candidates = (
        base[:, np.newaxis, :] + rest[:, np.newaxis, :] * ratios[:, :, np.newaxis]
    )
    diag = np.arange(m)
    candidates[:, diag, diag] += x_task[:, np.newaxis] * ratios * w_task
    return candidates.max(axis=2)


def first_feasible(order: np.ndarray, feasible: np.ndarray) -> np.ndarray:
    """Per row, the first machine of the preference order that is feasible.

    ``order`` is an ``(R, m)`` permutation (most preferred first);
    ``feasible`` an ``(R, m)`` boolean mask indexed by machine.  Rows
    with no feasible machine return ``order[r, 0]`` (the argmax of an
    all-False row) — callers mask those rows out via their own
    ``feasible.any`` bookkeeping.
    """
    feasible_ordered = np.take_along_axis(feasible, order, axis=1)
    first = np.argmax(feasible_ordered, axis=1)
    return np.take_along_axis(order, first[:, np.newaxis], axis=1)[:, 0]


def make_backend():
    """The numpy :class:`~repro.backend.KernelBackend` (always available)."""
    from . import KernelBackend

    return KernelBackend(
        name="numpy",
        propagate_x=propagate_x,
        scatter_periods=scatter_periods,
        scatter_add_rows=scatter_add_rows,
        critical_mask=critical_mask,
        probe_candidates=probe_candidates,
        first_feasible=first_feasible,
    )
