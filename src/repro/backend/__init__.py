"""Runtime-selected kernel backends for the hot batch loops.

The batch modules (:mod:`repro.batch.evaluation`,
:mod:`repro.batch.incremental`) and the batched bisection driver
(:mod:`repro.heuristics.binary_search`) spend essentially all of their
time in a handful of inner kernels: the backward ``x`` propagation, the
row-wise scatter-add of task contributions into machine periods, the
single-move candidate probe, and the first-feasible machine selection of
the greedy placement.  This package puts those kernels behind a small
registry so they can be swapped at runtime:

* ``numpy`` — the default, extracted behavior-identically from the
  previously inlined code; always available.
* ``numba`` — optional JIT-compiled kernels (``pip install -e
  .[numba]``) with ``cache=True``; selecting it without numba installed
  falls back to numpy with a single warning.

Selection order: explicit :func:`set_backend` (the CLI's ``--backend``
flag) > the ``REPRO_BACKEND`` environment variable > auto-detection
(numba when importable and functional, numpy otherwise).

Every backend is held to the same bit-for-bit contract as the original
inlined kernels: identical operation order, identical accumulation
order, so batch results stay bit-for-bit equal to the scalar reference
path regardless of the backend in use (enforced by the parametrized
equivalence suite in ``tests/unit/test_backend.py``).
"""

from __future__ import annotations

import os
import warnings
from collections.abc import Callable
from dataclasses import dataclass

from ..exceptions import ReproError

__all__ = [
    "KernelBackend",
    "BackendUnavailableError",
    "register_backend",
    "registered_backends",
    "available_backends",
    "get_backend",
    "set_backend",
    "use_backend",
    "activate_backend",
    "backend_info",
    "BACKEND_ENV_VAR",
    "AUTO_BACKEND",
]

#: Environment variable consulted when no backend was set programmatically.
BACKEND_ENV_VAR = "REPRO_BACKEND"
#: Pseudo-name that resolves to the fastest functional backend.
AUTO_BACKEND = "auto"


class BackendUnavailableError(ReproError):
    """A backend's factory cannot produce a working kernel set."""


@dataclass(frozen=True, slots=True)
class KernelBackend:
    """The kernel set one backend provides.

    Every function must be a drop-in for the numpy reference in
    :mod:`repro.backend.numpy_backend` — same signatures, same dtypes,
    same operation and accumulation order (the bit-for-bit contract).

    Attributes
    ----------
    name:
        Registry name ("numpy", "numba", ...).
    propagate_x:
        ``(order, succ, f_used) -> x`` — backward expected-product
        recursion over an ``(R, n)`` stack; ``order`` is the reverse
        topological task order, ``succ[t]`` the successor of ``t`` or -1.
    scatter_periods:
        ``(assignments, contributions, num_machines) -> periods`` —
        row-wise segment sum of ``(R, n)`` task contributions into
        ``(R, m)`` machine periods, tasks visited in ascending order.
    scatter_add_rows:
        ``(out, cols, vals) -> None`` — in-place row-wise scatter-add of
        ``(R, k)`` values into an ``(R, m)`` accumulator (the
        ``np.add.at`` pattern of the incremental probes).
    critical_mask:
        ``(machine_periods, rel_tol) -> mask`` — boolean ``(R, m)`` mask
        of machines attaining each row's maximum period.
    probe_candidates:
        ``(base, rest, ratios, x_task, w_task) -> (R, m)`` — the fused
        single-move candidate probe: per row ``r`` and destination ``v``,
        the max over machines ``u`` of ``base[r, u] + rest[r, u] *
        ratios[r, v]`` with ``(x_task[r] * ratios[r, v]) * w_task[r, v]``
        added at ``u == v``.  Compiled backends fuse the max instead of
        materialising the ``(R, m, m)`` candidate tensor.
    first_feasible:
        ``(order, feasible) -> chosen`` — per row, the first machine of
        the ``(R, m)`` preference permutation whose ``feasible`` entry is
        true (``order[r, 0]`` when no machine is feasible, matching the
        numpy argmax-of-all-False convention).
    """

    name: str
    propagate_x: Callable
    scatter_periods: Callable
    scatter_add_rows: Callable
    critical_mask: Callable
    probe_candidates: Callable
    first_feasible: Callable


_FACTORIES: dict[str, Callable[[], KernelBackend]] = {}
_INSTANCES: dict[str, KernelBackend] = {}
_ACTIVE: KernelBackend | None = None
_EXPLICIT: str | None = None
_WARNED: set[str] = set()


def register_backend(name: str, factory: Callable[[], KernelBackend]) -> None:
    """Register a backend factory under ``name``.

    The factory is called lazily on first use and may raise
    :class:`BackendUnavailableError` (e.g. a missing optional
    dependency); resolution then falls back to numpy.
    """
    key = name.lower()
    if key in _FACTORIES:
        raise ReproError(f"kernel backend {name!r} is already registered")
    _FACTORIES[key] = factory


def registered_backends() -> list[str]:
    """Every registered backend name, loadable or not."""
    return list(_FACTORIES)


def _load(name: str) -> KernelBackend:
    """Instantiate (and cache) one backend; raises if it cannot load."""
    if name not in _INSTANCES:
        _INSTANCES[name] = _FACTORIES[name]()
    return _INSTANCES[name]


def available_backends() -> list[str]:
    """The registered backends whose factories actually load here.

    ``numpy`` is always included; ``numba`` only when the import (and a
    smoke compilation) succeeds — this is what the parametrized
    equivalence tests iterate over.
    """
    names = []
    for name in _FACTORIES:
        try:
            _load(name)
        except BackendUnavailableError:
            continue
        names.append(name)
    return names


def _resolve(name: str) -> KernelBackend:
    key = name.lower()
    if key == AUTO_BACKEND:
        # Auto-detect: prefer the compiled backend when it loads, without
        # warning on the (expected) numpy-only installs.
        try:
            return _load("numba")
        except BackendUnavailableError:
            return _load("numpy")
    if key not in _FACTORIES:
        raise ReproError(
            f"unknown kernel backend {name!r}; registered: {registered_backends()}"
        )
    try:
        return _load(key)
    except BackendUnavailableError as exc:
        if key not in _WARNED:
            _WARNED.add(key)
            warnings.warn(
                f"kernel backend {name!r} is unavailable ({exc}); "
                "falling back to the numpy backend",
                RuntimeWarning,
                stacklevel=3,
            )
        return _load("numpy")


def get_backend(name: str | None = None) -> KernelBackend:
    """The active kernel backend (or the one named ``name``).

    Without ``name``, resolves once per process in selection order —
    :func:`set_backend` > ``REPRO_BACKEND`` > auto-detect — and caches
    the result; :func:`set_backend` invalidates the cache.
    """
    global _ACTIVE
    if name is not None:
        return _resolve(name)
    if _ACTIVE is None:
        requested = _EXPLICIT or os.environ.get(BACKEND_ENV_VAR) or AUTO_BACKEND
        _ACTIVE = _resolve(requested)
    return _ACTIVE


def set_backend(name: str | None) -> KernelBackend:
    """Select the process-wide backend; ``None`` resets to auto-detect.

    Returns the backend now active.  An unavailable explicit choice
    (e.g. ``"numba"`` without numba installed) warns once and activates
    the numpy fallback, mirroring ``REPRO_BACKEND`` handling.
    """
    global _ACTIVE, _EXPLICIT
    _EXPLICIT = name
    _ACTIVE = None
    return get_backend()


class use_backend:
    """Context manager pinning the active backend (tests, benchmarks)."""

    def __init__(self, name: str | None):
        self._name = name
        self._previous: str | None = None

    def __enter__(self) -> KernelBackend:
        self._previous = _EXPLICIT
        return set_backend(self._name)

    def __exit__(self, *exc_info) -> None:
        set_backend(self._previous)


class activate_backend:
    """Temporarily install a :class:`KernelBackend` *instance* as active.

    The seam the tracing instrumentation uses to swap in a span-timed
    wrapper of the current backend for the duration of one solve
    (:mod:`repro.obs.instrument`).  Unlike :func:`use_backend` it takes
    an instance, not a registry name, so wrappers never pollute the
    registry.  Concurrent activations on different threads may briefly
    see each other's instance; that is harmless for wrappers that keep
    the wrapped kernels' bit-for-bit behaviour (the only supported use).
    """

    __slots__ = ("_backend", "_previous")

    def __init__(self, backend: KernelBackend):
        self._backend = backend
        self._previous: KernelBackend | None = None

    def __enter__(self) -> KernelBackend:
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self._backend
        return self._backend

    def __exit__(self, *exc_info) -> None:
        global _ACTIVE
        _ACTIVE = self._previous


def numba_status() -> tuple[bool, str | None]:
    """``(available, version)`` of the optional numba dependency."""
    try:
        import numba
    except Exception:  # pragma: no cover - exercised via sys.modules patching
        return False, None
    return True, getattr(numba, "__version__", None)


def backend_info() -> dict:
    """Active backend description for ``/stats`` and run metadata."""
    available, version = numba_status()
    return {
        "name": get_backend().name,
        "registered": registered_backends(),
        "numba": {"available": available, "version": version},
    }


def _register_builtins() -> None:
    from . import numpy_backend

    register_backend("numpy", numpy_backend.make_backend)

    def _numba_factory() -> KernelBackend:
        from . import numba_backend

        return numba_backend.make_backend()

    register_backend("numba", _numba_factory)


_register_builtins()
