"""microrepro — throughput optimization for failure-prone micro-factories.

Reproduction of *Benoit, Dobrila, Nicod, Philippe, "Throughput
optimization for micro-factories subject to task and machine failures"*
(INRIA RR-7479 / IPPS 2010 line of work).

The package is organised as follows:

* :mod:`repro.core` — the formal model: typed in-tree applications,
  machine platforms, per-(task, machine) transient failure rates, the
  three mapping rules (one-to-one / specialized / general) and the
  period / throughput objective;
* :mod:`repro.batch` — vectorized batch evaluation of many mappings at
  once, instance stacks for scenario sweeps, and incremental
  re-evaluation under single-task moves;
* :mod:`repro.heuristics` — the paper's six polynomial heuristics
  (H1, H2, H3, H4, H4w, H4f) plus extra baselines;
* :mod:`repro.exact` — exact solvers: the optimal one-to-one mapping
  (Theorem 1 / Figure 9), the Section-6.1 MIP, a from-scratch
  branch-and-bound and an exhaustive oracle;
* :mod:`repro.simulation` — a discrete-event micro-factory simulator with
  stochastic transient failures (the Python equivalent of the paper's C++
  simulator);
* :mod:`repro.generators` — random instances with the paper's parameter
  distributions;
* :mod:`repro.analysis` / :mod:`repro.experiments` — statistics and the
  runners that regenerate Figures 5-12;
* :mod:`repro.cli` — the ``microrepro`` command-line interface.

Quickstart
----------
>>> import numpy as np
>>> from repro import linear_chain, Platform, FailureModel, ProblemInstance
>>> from repro.heuristics import get_heuristic
>>> app = linear_chain(6, num_types=2)
>>> rng = np.random.default_rng(0)
>>> w = rng.uniform(100, 1000, size=(2, 4))[list(app.types), :]
>>> f = rng.uniform(0.005, 0.02, size=(6, 4))
>>> instance = ProblemInstance(app, Platform(w), FailureModel(f))
>>> result = get_heuristic("H4w").solve(instance)
>>> result.period > 0
True
"""

from ._version import __version__
from .core import (
    Application,
    FailureModel,
    Mapping,
    MappingEvaluation,
    MappingRule,
    Platform,
    ProblemInstance,
    Task,
    TypeAssignment,
    evaluate,
    expected_products,
    in_tree,
    linear_chain,
    machine_periods,
    period,
    required_inputs,
    throughput,
)
from .exceptions import (
    InfeasibleProblemError,
    InvalidApplicationError,
    InvalidFailureModelError,
    InvalidInstanceError,
    InvalidMappingError,
    InvalidPlatformError,
    MappingRuleViolation,
    ReproError,
    SimulationError,
    SolverError,
)

__all__ = [
    "__version__",
    "Application",
    "FailureModel",
    "Mapping",
    "MappingEvaluation",
    "MappingRule",
    "Platform",
    "ProblemInstance",
    "Task",
    "TypeAssignment",
    "evaluate",
    "expected_products",
    "in_tree",
    "linear_chain",
    "machine_periods",
    "period",
    "required_inputs",
    "throughput",
    "InfeasibleProblemError",
    "InvalidApplicationError",
    "InvalidFailureModelError",
    "InvalidInstanceError",
    "InvalidMappingError",
    "InvalidPlatformError",
    "MappingRuleViolation",
    "ReproError",
    "SimulationError",
    "SolverError",
]
