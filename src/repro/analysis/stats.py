"""Statistics over experiment repetitions.

Every point of a paper figure is an average over 30 (or 100) random
repetitions.  This module provides a small, dependency-light statistics
layer: per-point summaries (mean, standard deviation, confidence
interval) and series containers keyed by the sweep variable.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np
from scipy import stats as _scipy_stats

__all__ = ["PointSummary", "Series", "summarize", "paired_ratio"]


@dataclass(frozen=True, slots=True)
class PointSummary:
    """Summary statistics of one experimental point (one x value).

    Attributes
    ----------
    count:
        Number of valid (finite) samples.
    mean, std, minimum, maximum:
        Usual summary statistics over the valid samples.
    ci_low, ci_high:
        95% Student confidence interval on the mean (equal to the mean when
        fewer than two samples are available).
    """

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float

    def as_dict(self) -> dict:
        """Plain-dict representation."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
        }


def summarize(samples: Iterable[float], *, confidence: float = 0.95) -> PointSummary:
    """Summarise a collection of samples, ignoring NaN / infinite values."""
    values = np.asarray([float(v) for v in samples], dtype=np.float64)
    values = values[np.isfinite(values)]
    if values.size == 0:
        nan = float("nan")
        return PointSummary(0, nan, nan, nan, nan, nan, nan)
    mean = float(values.mean())
    std = float(values.std(ddof=1)) if values.size > 1 else 0.0
    if values.size > 1 and std > 0.0:
        sem = std / math.sqrt(values.size)
        t_crit = float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, df=values.size - 1))
        half_width = t_crit * sem
    else:
        half_width = 0.0
    return PointSummary(
        count=int(values.size),
        mean=mean,
        std=std,
        minimum=float(values.min()),
        maximum=float(values.max()),
        ci_low=mean - half_width,
        ci_high=mean + half_width,
    )


def paired_ratio(numerators: Sequence[float], denominators: Sequence[float]) -> PointSummary:
    """Summary of the per-repetition ratio ``numerator / denominator``.

    Used to normalise a heuristic against the exact optimum computed on the
    *same* instance (Figure 11): the mean of paired ratios, not the ratio
    of means.
    """
    if len(numerators) != len(denominators):
        raise ValueError("numerators and denominators must have the same length")
    ratios = []
    for num, den in zip(numerators, denominators):
        if not (math.isfinite(num) and math.isfinite(den)) or den <= 0:
            continue
        ratios.append(num / den)
    return summarize(ratios)


@dataclass(slots=True)
class Series:
    """A named series of per-x sample collections (one curve of a figure).

    Attributes
    ----------
    label:
        Curve label ("H4w", "MIP", ...).
    x_values:
        Sweep values, in plotting order.
    samples:
        ``samples[x]`` is the list of per-repetition measurements at ``x``.
    """

    label: str
    x_values: list[int] = field(default_factory=list)
    samples: dict[int, list[float]] = field(default_factory=dict)

    def add(self, x: int, value: float) -> None:
        """Record one measurement at sweep value ``x``."""
        if x not in self.samples:
            self.samples[x] = []
            self.x_values.append(x)
        self.samples[x].append(float(value))

    def extend(self, x: int, values: Iterable[float]) -> None:
        """Record several measurements at sweep value ``x``."""
        for value in values:
            self.add(x, value)

    def point(self, x: int) -> PointSummary:
        """Summary of the measurements at ``x``."""
        return summarize(self.samples.get(x, ()))

    def means(self) -> list[float]:
        """Mean value at every sweep point, in order."""
        return [self.point(x).mean for x in self.x_values]

    def as_rows(self) -> list[dict]:
        """One dict per sweep point: ``{"x", "label", ...summary...}``."""
        rows = []
        for x in self.x_values:
            row = {"x": x, "label": self.label}
            row.update(self.point(x).as_dict())
            rows.append(row)
        return rows
