"""Statistics, normalisation and table rendering for experiment results."""

from .normalize import NormalizationReport, normalize_series, overall_factor
from .stats import PointSummary, Series, paired_ratio, summarize
from .tables import format_table, series_table, series_to_csv

__all__ = [
    "NormalizationReport",
    "normalize_series",
    "overall_factor",
    "PointSummary",
    "Series",
    "paired_ratio",
    "summarize",
    "format_table",
    "series_table",
    "series_to_csv",
]
