"""Plain-text and CSV rendering of experiment results.

Matplotlib is not available in the offline reproduction environment, so
every figure of the paper is regenerated as a *table*: one row per sweep
value, one column per curve (heuristic / exact baseline).  The same data
can be exported as CSV for external plotting.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Mapping, Sequence

from .stats import Series

__all__ = ["series_table", "series_to_csv", "format_table", "catalog_table"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, float_format: str = "{:.1f}"
) -> str:
    """Render an aligned plain-text table.

    Floats are formatted with ``float_format``; other values use ``str``.
    """
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    text_rows = [[fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[index]) for index, cell in enumerate(cells))

    separator = "  ".join("-" * width for width in widths)
    output = [line(list(headers)), separator]
    output.extend(line(row) for row in text_rows)
    return "\n".join(output)


def catalog_table(rows: Sequence[Mapping[str, object]]) -> str:
    """Aligned table of uniform dict rows (e.g. a result-store catalogue).

    Column order follows the first row's key order; missing keys render
    empty.  Used by ``microrepro export`` to list the runs a store holds.
    """
    if not rows:
        return "(empty)"
    headers = list(rows[0])
    body = [[row.get(header, "") for header in headers] for row in rows]
    return format_table(headers, body)


def _collect_x_values(series_by_label: Mapping[str, Series]) -> list[int]:
    x_values: list[int] = []
    for series in series_by_label.values():
        for x in series.x_values:
            if x not in x_values:
                x_values.append(x)
    return sorted(x_values)


def series_table(
    series_by_label: Mapping[str, Series],
    *,
    x_name: str = "n",
    float_format: str = "{:.1f}",
) -> str:
    """Plain-text table with one column per series (mean values)."""
    labels = list(series_by_label)
    headers = [x_name] + labels
    rows: list[list[object]] = []
    for x in _collect_x_values(series_by_label):
        row: list[object] = [x]
        for label in labels:
            summary = series_by_label[label].point(x)
            row.append(summary.mean if summary.count else float("nan"))
        rows.append(row)
    return format_table(headers, rows, float_format=float_format)


def series_to_csv(
    series_by_label: Mapping[str, Series],
    *,
    x_name: str = "n",
    include_spread: bool = True,
) -> str:
    """CSV export of the series (mean and, optionally, std / CI columns)."""
    labels = list(series_by_label)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    header = [x_name]
    for label in labels:
        header.append(f"{label}_mean")
        if include_spread:
            header.extend([f"{label}_std", f"{label}_ci_low", f"{label}_ci_high", f"{label}_count"])
    writer.writerow(header)
    for x in _collect_x_values(series_by_label):
        row: list[object] = [x]
        for label in labels:
            summary = series_by_label[label].point(x)
            row.append(f"{summary.mean:.6f}" if summary.count else "")
            if include_spread:
                if summary.count:
                    row.extend(
                        [
                            f"{summary.std:.6f}",
                            f"{summary.ci_low:.6f}",
                            f"{summary.ci_high:.6f}",
                            summary.count,
                        ]
                    )
                else:
                    row.extend(["", "", "", 0])
        writer.writerow(row)
    return buffer.getvalue()
