"""Normalisation of heuristic results against exact baselines.

Figure 11 of the paper plots each heuristic's period divided by the MIP
optimum on the same instance, and Section 7 reports aggregate factors
(H2 = 1.73x, H3 = 1.58x, H4w = 1.33x the MIP; 1.84 / 1.75 / 1.28 the
optimal one-to-one mapping).  The helpers here compute those paired
ratios from raw experiment records.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass

from .stats import PointSummary, Series, paired_ratio

__all__ = ["normalize_series", "overall_factor", "NormalizationReport"]


def normalize_series(series: Series, reference: Series) -> Series:
    """Per-repetition ratio of ``series`` to ``reference`` at every x value.

    Both series must have been built from the *same* instances in the same
    repetition order (which the experiment runner guarantees); repetitions
    where the reference is missing or non-finite are dropped.
    """
    result = Series(label=f"{series.label}/{reference.label}")
    for x in series.x_values:
        numerators = series.samples.get(x, [])
        denominators = reference.samples.get(x, [])
        count = min(len(numerators), len(denominators))
        for index in range(count):
            num, den = numerators[index], denominators[index]
            if not (math.isfinite(num) and math.isfinite(den)) or den <= 0:
                continue
            result.add(x, num / den)
    return result


def overall_factor(series: Series, reference: Series) -> PointSummary:
    """Aggregate paired ratio over *all* sweep points and repetitions.

    This is the "H4w is at a factor of 1.33 from the optimal" style number
    reported in Sections 7.2–7.4.
    """
    numerators: list[float] = []
    denominators: list[float] = []
    for x in series.x_values:
        nums = series.samples.get(x, [])
        dens = reference.samples.get(x, [])
        count = min(len(nums), len(dens))
        numerators.extend(nums[:count])
        denominators.extend(dens[:count])
    return paired_ratio(numerators, denominators)


@dataclass(frozen=True, slots=True)
class NormalizationReport:
    """Normalisation factors of several heuristics against one reference.

    Attributes
    ----------
    reference:
        Label of the reference series (e.g. ``"MIP"`` or ``"OtO"``).
    factors:
        ``{heuristic label: PointSummary of the paired ratios}``.
    """

    reference: str
    factors: dict[str, PointSummary]

    def factor(self, label: str) -> float:
        """Mean normalisation factor of one heuristic."""
        return self.factors[label].mean

    def as_rows(self) -> list[dict]:
        """One dict per heuristic, sorted by increasing factor."""
        rows = []
        for label, summary in sorted(self.factors.items(), key=lambda kv: kv[1].mean):
            row = {"label": label, "reference": self.reference}
            row.update(summary.as_dict())
            rows.append(row)
        return rows

    @classmethod
    def from_series(
        cls, series_by_label: Mapping[str, Series], reference_label: str
    ) -> "NormalizationReport":
        """Build the report from a dict of series containing the reference."""
        reference = series_by_label[reference_label]
        factors = {
            label: overall_factor(series, reference)
            for label, series in series_by_label.items()
            if label != reference_label
        }
        return cls(reference=reference_label, factors=factors)
