"""Extensions beyond the paper's core contribution.

* :mod:`repro.extensions.splitting` — the paper's stated future work:
  dividing a task's workload across several machines of its type (LP-based
  optimal split, fractional mappings, specialized-period lower bound);
* :mod:`repro.extensions.reconfiguration` — an explicit reconfiguration
  cost model for *general* mappings, quantifying the paper's argument that
  re-tooling costs make them impractical.
"""

from .reconfiguration import (
    ReconfigurationAwareHeuristic,
    ReconfigurationModel,
    machine_periods_with_reconfiguration,
    period_with_reconfiguration,
    specialization_break_even,
)
from .splitting import (
    FractionalMapping,
    SplitResult,
    dedication_from_mapping,
    optimal_split_for_dedication,
    split_specialized_mapping,
    splitting_lower_bound,
)

__all__ = [
    "ReconfigurationAwareHeuristic",
    "ReconfigurationModel",
    "machine_periods_with_reconfiguration",
    "period_with_reconfiguration",
    "specialization_break_even",
    "FractionalMapping",
    "SplitResult",
    "dedication_from_mapping",
    "optimal_split_for_dedication",
    "split_specialized_mapping",
    "splitting_lower_bound",
]
