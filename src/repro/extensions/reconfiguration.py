"""General mappings with explicit reconfiguration costs.

The paper dismisses *general* mappings (a machine processing several task
types) "because of the unaffordable reconfiguration costs": a robotic cell
must be re-tooled between operations of different types.  This module
makes that argument quantitative:

* :func:`period_with_reconfiguration` evaluates a general mapping when
  switching a machine between types costs ``setup_time`` per switch and
  per produced unit of output (a machine cycling through ``k`` types pays
  ``k`` switches per period when ``k >= 2``, none when it is specialized);
* :class:`ReconfigurationAwareHeuristic` is a greedy general-mapping
  heuristic in the spirit of H4 whose machine scores include the setup
  penalty — with a zero setup time it may mix types freely, with a large
  one it naturally degenerates to a specialized mapping;
* :func:`specialization_break_even` computes, for an instance and a
  mapping pair (one general, one specialized), the setup time above which
  the specialized mapping wins — i.e. the justification of the paper's
  focus on specialized mappings, as a number.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.instance import ProblemInstance
from ..core.mapping import Mapping
from ..core.period import expected_products
from ..exceptions import InfeasibleProblemError, ReproError
from ..heuristics.base import Heuristic, backward_task_order

__all__ = [
    "ReconfigurationModel",
    "period_with_reconfiguration",
    "machine_periods_with_reconfiguration",
    "ReconfigurationAwareHeuristic",
    "specialization_break_even",
]


@dataclass(frozen=True, slots=True)
class ReconfigurationModel:
    """Cost model for switching a machine between task types.

    Attributes
    ----------
    setup_time:
        Time (same unit as ``w``) needed to reconfigure a machine from one
        type to another.
    switches_per_period:
        How many reconfigurations a machine running ``k >= 2`` distinct
        types pays per produced output.  The default ``"cycle"`` charges
        ``k`` switches (the machine cycles through its types once per
        period); ``"amortized"`` charges ``k - 1`` (a one-off re-tooling
        order amortised over the cycle).
    """

    setup_time: float
    policy: str = "cycle"

    def __post_init__(self) -> None:
        if self.setup_time < 0:
            raise ReproError("setup_time must be non-negative")
        if self.policy not in ("cycle", "amortized"):
            raise ReproError(f"unknown reconfiguration policy {self.policy!r}")

    def switches(self, num_types_on_machine: int) -> int:
        """Number of setups charged per period for a machine running ``k`` types."""
        if num_types_on_machine <= 1:
            return 0
        if self.policy == "cycle":
            return num_types_on_machine
        return num_types_on_machine - 1


def machine_periods_with_reconfiguration(
    instance: ProblemInstance,
    mapping: Mapping,
    model: ReconfigurationModel,
) -> np.ndarray:
    """Per-machine periods including reconfiguration overheads."""
    x = expected_products(instance, mapping)
    w = instance.processing_times
    periods = np.zeros(instance.num_machines)
    types_on_machine: dict[int, set[int]] = {}
    for task, machine in enumerate(mapping):
        periods[machine] += x[task] * w[task, machine]
        types_on_machine.setdefault(machine, set()).add(instance.type_of(task))
    for machine, types in types_on_machine.items():
        periods[machine] += model.setup_time * model.switches(len(types))
    return periods


def period_with_reconfiguration(
    instance: ProblemInstance,
    mapping: Mapping,
    model: ReconfigurationModel,
) -> float:
    """Application period of a general mapping under reconfiguration costs."""
    return float(machine_periods_with_reconfiguration(instance, mapping, model).max())


class ReconfigurationAwareHeuristic(Heuristic):
    """Greedy general-mapping heuristic with a setup-time penalty.

    Walks the tasks sinks-first (like H4) and assigns every task to the
    machine minimising ``accu_u + x_i(u) * w[i, u] + setup penalty``, where
    the penalty is the *increase* in reconfiguration cost caused by adding
    the task's type to the machine's current type set.  No type-dedication
    constraint is enforced — this is a *general* mapping.
    """

    name = "H4-reconfig"

    def __init__(self, model: ReconfigurationModel):
        self.model = model

    def check_feasible(self, instance: ProblemInstance) -> None:
        if instance.num_machines < 1:
            raise InfeasibleProblemError("at least one machine is required")

    def solve_mapping(self, instance, rng=None):
        order = backward_task_order(instance)
        n, m = instance.num_tasks, instance.num_machines
        assignment = np.full(n, -1, dtype=np.int64)
        x = np.zeros(n)
        accumulated = np.zeros(m)
        types_on_machine: list[set[int]] = [set() for _ in range(m)]
        app = instance.application

        for task in order:
            succ = app.successor(task)
            demand = 1.0 if succ is None else float(x[succ])
            task_type = instance.type_of(task)

            def score(machine: int) -> tuple[float, int]:
                x_task = demand / (1.0 - instance.f(task, machine))
                work = x_task * instance.w(task, machine)
                current_types = types_on_machine[machine]
                before = self.model.switches(len(current_types))
                after = self.model.switches(len(current_types | {task_type}))
                penalty = self.model.setup_time * (after - before)
                return (float(accumulated[machine] + work + penalty), machine)

            best = min(range(m), key=score)
            x_task = demand / (1.0 - instance.f(task, best))
            x[task] = x_task
            before = self.model.switches(len(types_on_machine[best]))
            types_on_machine[best].add(task_type)
            after = self.model.switches(len(types_on_machine[best]))
            accumulated[best] += x_task * instance.w(task, best) + self.model.setup_time * (
                after - before
            )
            assignment[task] = best

        return Mapping(assignment, m), 1, {"policy": self.model.policy}

    def solve(self, instance, rng=None):
        # Override to evaluate with the reconfiguration-aware period rather
        # than the plain specialized evaluation of the base class.
        from ..core.period import evaluate as plain_evaluate
        from .reconfiguration import period_with_reconfiguration  # self-import for clarity

        self.check_feasible(instance)
        mapping, iterations, metadata = self.solve_mapping(instance, rng)
        evaluation = plain_evaluate(instance, mapping)
        metadata = dict(metadata)
        metadata["period_with_reconfiguration"] = period_with_reconfiguration(
            instance, mapping, self.model
        )
        from ..heuristics.base import HeuristicResult

        return HeuristicResult(
            heuristic=self.name,
            mapping=mapping,
            evaluation=evaluation,
            iterations=iterations,
            metadata=metadata,
        )


def specialization_break_even(
    instance: ProblemInstance,
    general_mapping: Mapping,
    specialized_mapping: Mapping,
    *,
    policy: str = "cycle",
    tolerance: float = 1e-6,
    max_setup: float = 1e9,
) -> float:
    """Setup time above which the specialized mapping beats the general one.

    Returns the smallest setup time ``s`` such that
    ``period_with_reconfiguration(general, s) >= period(specialized)``
    (the specialized mapping pays no reconfiguration by definition).
    Returns ``0.0`` when the specialized mapping is already at least as
    good without any setup cost, and ``inf`` when the general mapping wins
    for every setup time up to ``max_setup`` (only possible if it is
    actually specialized itself).
    """
    from ..core.period import period as plain_period

    specialized_period = plain_period(instance, specialized_mapping)
    zero = ReconfigurationModel(0.0, policy)
    if period_with_reconfiguration(instance, general_mapping, zero) >= specialized_period:
        return 0.0

    low, high = 0.0, 1.0
    while (
        period_with_reconfiguration(
            instance, general_mapping, ReconfigurationModel(high, policy)
        )
        < specialized_period
    ):
        high *= 2.0
        if high > max_setup:
            return float("inf")
    while high - low > tolerance * max(1.0, high):
        mid = (low + high) / 2.0
        mid_period = period_with_reconfiguration(
            instance, general_mapping, ReconfigurationModel(mid, policy)
        )
        if mid_period >= specialized_period:
            high = mid
        else:
            low = mid
    return high
