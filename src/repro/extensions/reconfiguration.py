"""General mappings with explicit reconfiguration costs.

The paper dismisses *general* mappings (a machine processing several task
types) "because of the unaffordable reconfiguration costs": a robotic cell
must be re-tooled between operations of different types.  This module
makes that argument quantitative:

* :func:`period_with_reconfiguration` evaluates a general mapping when
  switching a machine between types costs ``setup_time`` per switch and
  per produced unit of output (a machine cycling through ``k`` types pays
  ``k`` switches per period when ``k >= 2``, none when it is specialized);
* :class:`ReconfigurationAwareHeuristic` is a greedy general-mapping
  heuristic in the spirit of H4 whose machine scores include the setup
  penalty — with a zero setup time it may mix types freely, with a large
  one it naturally degenerates to a specialized mapping;
* :func:`specialization_break_even` computes, for an instance and a
  mapping pair (one general, one specialized), the setup time above which
  the specialized mapping wins — i.e. the justification of the paper's
  focus on specialized mappings, as a number.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.instance import ProblemInstance
from ..core.mapping import Mapping
from ..core.period import expected_products
from ..exceptions import InfeasibleProblemError, ReproError
from ..heuristics.base import Heuristic, backward_task_order

__all__ = [
    "ReconfigurationModel",
    "period_with_reconfiguration",
    "machine_periods_with_reconfiguration",
    "ReconfigurationAwareHeuristic",
    "specialization_break_even",
]


@dataclass(frozen=True, slots=True)
class ReconfigurationModel:
    """Cost model for switching a machine between task types.

    Attributes
    ----------
    setup_time:
        Time (same unit as ``w``) needed to reconfigure a machine from one
        type to another.
    switches_per_period:
        How many reconfigurations a machine running ``k >= 2`` distinct
        types pays per produced output.  The default ``"cycle"`` charges
        ``k`` switches (the machine cycles through its types once per
        period); ``"amortized"`` charges ``k - 1`` (a one-off re-tooling
        order amortised over the cycle).
    """

    setup_time: float
    policy: str = "cycle"

    def __post_init__(self) -> None:
        if self.setup_time < 0:
            raise ReproError("setup_time must be non-negative")
        if self.policy not in ("cycle", "amortized"):
            raise ReproError(f"unknown reconfiguration policy {self.policy!r}")

    def switches(self, num_types_on_machine: int) -> int:
        """Number of setups charged per period for a machine running ``k`` types."""
        if num_types_on_machine <= 1:
            return 0
        if self.policy == "cycle":
            return num_types_on_machine
        return num_types_on_machine - 1


def machine_periods_with_reconfiguration(
    instance: ProblemInstance,
    mapping: Mapping,
    model: ReconfigurationModel,
) -> np.ndarray:
    """Per-machine periods including reconfiguration overheads."""
    x = expected_products(instance, mapping)
    w = instance.processing_times
    periods = np.zeros(instance.num_machines)
    types_on_machine: dict[int, set[int]] = {}
    for task, machine in enumerate(mapping):
        periods[machine] += x[task] * w[task, machine]
        types_on_machine.setdefault(machine, set()).add(instance.type_of(task))
    for machine, types in types_on_machine.items():
        periods[machine] += model.setup_time * model.switches(len(types))
    return periods


def period_with_reconfiguration(
    instance: ProblemInstance,
    mapping: Mapping,
    model: ReconfigurationModel,
) -> float:
    """Application period of a general mapping under reconfiguration costs."""
    return float(machine_periods_with_reconfiguration(instance, mapping, model).max())


class ReconfigurationAwareHeuristic(Heuristic):
    """Greedy general-mapping heuristic with a setup-time penalty.

    Walks the tasks sinks-first (like H4) and assigns every task to the
    machine minimising ``accu_u + x_i(u) * w[i, u] + setup penalty``, where
    the penalty is the *increase* in reconfiguration cost caused by adding
    the task's type to the machine's current type set.  No type-dedication
    constraint is enforced — this is a *general* mapping.
    """

    name = "H4-reconfig"

    def __init__(self, model: ReconfigurationModel):
        self.model = model

    def check_feasible(self, instance: ProblemInstance) -> None:
        if instance.num_machines < 1:
            raise InfeasibleProblemError("at least one machine is required")

    def _switches_vector(self, num_types: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`ReconfigurationModel.switches` over machine counts."""
        if self.model.policy == "cycle":
            return np.where(num_types >= 2, num_types, 0)
        return np.where(num_types >= 2, num_types - 1, 0)

    def solve_mapping(self, instance, rng=None):
        order = backward_task_order(instance)
        n, m = instance.num_tasks, instance.num_machines
        assignment = np.full(n, -1, dtype=np.int64)
        x = np.zeros(n)
        accumulated = np.zeros(m)
        #: runs_type[u, j] — machine u already runs a task of type j
        runs_type = np.zeros((m, instance.num_types), dtype=bool)
        type_counts = np.zeros(m, dtype=np.int64)
        w = instance.processing_times
        f = instance.failure_rates
        app = instance.application

        for task in order:
            succ = app.successor(task)
            demand = 1.0 if succ is None else float(x[succ])
            task_type = instance.type_of(task)

            # Score every machine at once: expected work plus the marginal
            # reconfiguration penalty of adding this task's type.
            x_candidates = demand / (1.0 - f[task, :])
            work = x_candidates * w[task, :]
            counts_after = type_counts + np.where(runs_type[:, task_type], 0, 1)
            penalty = self.model.setup_time * (
                self._switches_vector(counts_after) - self._switches_vector(type_counts)
            )
            # np.argmin keeps the lowest machine index among ties, matching
            # the old (score, machine) selection.
            best = int(np.argmin(accumulated + work + penalty))

            x[task] = x_candidates[best]
            if not runs_type[best, task_type]:
                runs_type[best, task_type] = True
                type_counts[best] += 1
            accumulated[best] += work[best] + penalty[best]
            assignment[task] = best

        return Mapping(assignment, m), 1, {"policy": self.model.policy}

    def solve(self, instance, rng=None):
        # Override to evaluate with the reconfiguration-aware period rather
        # than the plain specialized evaluation of the base class.
        from ..core.period import evaluate as plain_evaluate
        from .reconfiguration import period_with_reconfiguration  # self-import for clarity

        self.check_feasible(instance)
        mapping, iterations, metadata = self.solve_mapping(instance, rng)
        evaluation = plain_evaluate(instance, mapping)
        metadata = dict(metadata)
        metadata["period_with_reconfiguration"] = period_with_reconfiguration(
            instance, mapping, self.model
        )
        from ..heuristics.base import HeuristicResult

        return HeuristicResult(
            heuristic=self.name,
            mapping=mapping,
            evaluation=evaluation,
            iterations=iterations,
            metadata=metadata,
        )


def specialization_break_even(
    instance: ProblemInstance,
    general_mapping: Mapping,
    specialized_mapping: Mapping,
    *,
    policy: str = "cycle",
    tolerance: float = 1e-6,
    max_setup: float = 1e9,
) -> float:
    """Setup time above which the specialized mapping beats the general one.

    Returns the smallest setup time ``s`` such that
    ``period_with_reconfiguration(general, s) >= period(specialized)``
    (the specialized mapping pays no reconfiguration by definition).
    Returns ``0.0`` when the specialized mapping is already at least as
    good without any setup cost, and ``inf`` when the general mapping wins
    for every setup time up to ``max_setup`` (only possible if it is
    actually specialized itself).
    """
    from ..core.period import period as plain_period

    specialized_period = plain_period(instance, specialized_mapping)
    zero = ReconfigurationModel(0.0, policy)
    if period_with_reconfiguration(instance, general_mapping, zero) >= specialized_period:
        return 0.0

    low, high = 0.0, 1.0
    while (
        period_with_reconfiguration(
            instance, general_mapping, ReconfigurationModel(high, policy)
        )
        < specialized_period
    ):
        high *= 2.0
        if high > max_setup:
            return float("inf")
    while high - low > tolerance * max(1.0, high):
        mid = (low + high) / 2.0
        mid_period = period_with_reconfiguration(
            instance, general_mapping, ReconfigurationModel(mid, policy)
        )
        if mid_period >= specialized_period:
            high = mid
        else:
            low = mid
    return high
