"""Workload splitting across machines — the paper's "future work" extension.

The conclusion of the paper suggests the following extension: *"an
interesting problem would be to consider that the instances of a same task
can be computed by several machines.  Thus, the workload of a task would be
divided and the throughput could be improved."*

This module implements that extension for specialized platforms:

* a :class:`FractionalMapping` assigns, for every task, a *rate* of
  executions to each machine dedicated to the task's type (instead of a
  single machine);
* for a **fixed dedication of machines to types**, the split that maximises
  the throughput is the solution of a linear program: with ``a[i, u]`` the
  attempt rate of task ``Ti`` on machine ``Mu`` (attempts per time unit),

  - flow conservation along the chain / in-tree: the rate of *successful*
    completions of ``Ti`` must cover the attempt rate of its successor
    (and the target throughput ``T`` for sink tasks), i.e.
    ``sum_u a[i, u] * (1 - f[i, u]) >= sum_u a[succ(i), u]`` and
    ``sum_u a[sink, u] * (1 - f[sink, u]) >= T``;
  - machine capacity: ``sum_i a[i, u] * w[i, u] <= 1`` for every machine;
  - type compatibility: ``a[i, u] = 0`` unless ``Mu`` is dedicated to
    ``t(i)``;

  and the objective is to maximise ``T``.  The optimal period of the split
  mapping is ``1 / T``.
* :func:`optimal_split_for_dedication` solves that LP (HiGHS through
  ``scipy.optimize.linprog``); :func:`split_specialized_mapping` derives
  the machine dedication from any specialized mapping (e.g. a heuristic's
  output) and re-optimises the split, which can only improve the period.

The LP view also yields a simple lower bound on any specialized mapping's
period (:func:`splitting_lower_bound`), useful to gauge how much of the
heuristics' gap to the MIP comes from *grouping* versus *indivisibility*.
"""

from __future__ import annotations

from collections.abc import Mapping as MappingABC
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
from scipy.optimize import linprog

from ..core.instance import ProblemInstance
from ..core.mapping import Mapping, MappingRule
from ..exceptions import InfeasibleProblemError, SolverError

__all__ = [
    "FractionalMapping",
    "SplitResult",
    "optimal_split_for_dedication",
    "split_specialized_mapping",
    "splitting_lower_bound",
    "dedication_from_mapping",
]


@dataclass(frozen=True, slots=True)
class FractionalMapping:
    """A division of every task's workload across machines.

    Attributes
    ----------
    rates:
        ``(n, m)`` array; ``rates[i, u]`` is the attempt rate (executions
        per time unit) of task ``Ti`` on machine ``Mu`` in steady state.
    throughput:
        Finished products per time unit achieved by these rates.
    """

    rates: np.ndarray
    throughput: float

    @property
    def period(self) -> float:
        """Inverse throughput (time per finished product)."""
        return float("inf") if self.throughput <= 0 else 1.0 / self.throughput

    def shares(self) -> np.ndarray:
        """Per-task share of the workload handled by each machine.

        ``shares[i, u]`` is the fraction of task ``Ti``'s attempts routed to
        machine ``Mu`` (rows sum to 1 for tasks with a positive rate).
        """
        totals = self.rates.sum(axis=1, keepdims=True)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(totals > 0, self.rates / totals, 0.0)

    def machine_utilisation(self, instance: ProblemInstance) -> np.ndarray:
        """Fraction of each machine's time spent processing (<= 1)."""
        return (self.rates * instance.processing_times).sum(axis=0)

    def tasks_split(self, tol: float = 1e-9) -> list[int]:
        """Tasks whose workload is actually divided over >= 2 machines."""
        return [
            i
            for i in range(self.rates.shape[0])
            if int((self.rates[i] > tol).sum()) >= 2
        ]


@dataclass(frozen=True, slots=True)
class SplitResult:
    """Outcome of the split-mapping optimisation.

    Attributes
    ----------
    fractional:
        The optimal fractional mapping.
    dedication:
        ``{machine index: type index}`` used for the optimisation.
    baseline_period:
        Period of the unsplit mapping the dedication was derived from
        (``nan`` when the dedication was given directly).
    """

    fractional: FractionalMapping
    dedication: dict[int, int]
    baseline_period: float = float("nan")

    @property
    def period(self) -> float:
        """Period of the split mapping."""
        return self.fractional.period

    @property
    def throughput(self) -> float:
        """Throughput of the split mapping."""
        return self.fractional.throughput

    @property
    def improvement(self) -> float:
        """Relative period reduction versus the unsplit baseline.

        ``0.15`` means the split mapping's period is 15% shorter.  ``nan``
        when no baseline is available.
        """
        if not np.isfinite(self.baseline_period) or self.baseline_period <= 0:
            return float("nan")
        return 1.0 - self.period / self.baseline_period


def dedication_from_mapping(instance: ProblemInstance, mapping: Mapping) -> dict[int, int]:
    """Machine -> type dedication implied by a specialized mapping."""
    mapping.validate(instance, MappingRule.SPECIALIZED)
    dedication: dict[int, int] = {}
    for task, machine in enumerate(mapping):
        dedication[machine] = instance.type_of(task)
    return dedication


def _validate_dedication(instance: ProblemInstance, dedication: MappingABC) -> dict[int, int]:
    cleaned: dict[int, int] = {}
    for machine, type_index in dedication.items():
        machine = int(machine)
        type_index = int(type_index)
        if not 0 <= machine < instance.num_machines:
            raise InfeasibleProblemError(f"machine index {machine} outside the platform")
        if not 0 <= type_index < instance.num_types:
            raise InfeasibleProblemError(f"type index {type_index} outside the instance")
        cleaned[machine] = type_index
    used_types = set(instance.type_of(i) for i in range(instance.num_tasks))
    covered = set(cleaned.values())
    missing = used_types - covered
    if missing:
        raise InfeasibleProblemError(
            f"no machine is dedicated to type(s) {sorted(missing)}; every used type "
            "needs at least one machine"
        )
    return cleaned


def optimal_split_for_dedication(
    instance: ProblemInstance, dedication: MappingABC
) -> SplitResult:
    """Maximise the throughput for a fixed machine->type dedication.

    Parameters
    ----------
    instance:
        The problem instance (linear chain or in-tree application).
    dedication:
        ``{machine index: type index}``; machines absent from the dict are
        left unused.  Every type used by some task must own at least one
        machine.

    Returns
    -------
    SplitResult
        With the optimal attempt rates and throughput.

    Notes
    -----
    Variables: ``a[i, u]`` for every *compatible* (task, machine) pair plus
    the throughput ``T``; the LP maximises ``T`` under flow conservation
    and unit machine capacity.
    """
    dedication = _validate_dedication(instance, dedication)
    n, m = instance.num_tasks, instance.num_machines
    w = instance.processing_times
    f = instance.failure_rates
    app = instance.application

    # Enumerate compatible (task, machine) variables.
    pairs: list[tuple[int, int]] = []
    index_of: dict[tuple[int, int], int] = {}
    for i in range(n):
        for u, dedicated_type in dedication.items():
            if dedicated_type == instance.type_of(i):
                index_of[(i, u)] = len(pairs)
                pairs.append((i, u))
    if not pairs:
        raise InfeasibleProblemError("the dedication leaves every task without a machine")
    num_rate_vars = len(pairs)
    t_index = num_rate_vars  # throughput variable

    # Objective: maximise T  ->  minimise -T.
    c = np.zeros(num_rate_vars + 1)
    c[t_index] = -1.0

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    upper: list[float] = []
    row = 0

    def add(r: int, col: int, val: float) -> None:
        rows.append(r)
        cols.append(col)
        vals.append(val)

    # Flow conservation: for every task i,
    #   sum_u a[succ, u]  (or T for sinks)  -  sum_u a[i, u] (1 - f[i, u]) <= 0
    for i in range(n):
        succ = app.successor(i)
        for (task, machine), var in index_of.items():
            if task == i:
                add(row, var, -(1.0 - f[i, machine]))
            elif succ is not None and task == succ:
                add(row, var, 1.0)
        if succ is None:
            add(row, t_index, 1.0)
        upper.append(0.0)
        row += 1

    # Machine capacity: sum_i a[i, u] * w[i, u] <= 1 for every dedicated machine.
    for u in dedication:
        for (task, machine), var in index_of.items():
            if machine == u:
                add(row, var, float(w[task, u]))
        upper.append(1.0)
        row += 1

    matrix = sp.csr_matrix((vals, (rows, cols)), shape=(row, num_rate_vars + 1))
    bounds = [(0.0, None)] * (num_rate_vars + 1)

    result = linprog(
        c,
        A_ub=matrix,
        b_ub=np.asarray(upper),
        bounds=bounds,
        method="highs",
    )
    if not result.success or result.x is None:
        raise SolverError(f"splitting LP failed: {result.message}")

    rates = np.zeros((n, m))
    for (task, machine), var in index_of.items():
        rates[task, machine] = max(0.0, float(result.x[var]))
    throughput = float(result.x[t_index])
    return SplitResult(
        fractional=FractionalMapping(rates=rates, throughput=throughput),
        dedication=dict(dedication),
    )


def split_specialized_mapping(
    instance: ProblemInstance, mapping: Mapping
) -> SplitResult:
    """Re-optimise an existing specialized mapping by splitting workloads.

    The machine->type dedication of ``mapping`` is kept; only the division
    of each task's products across the machines of its type is optimised.
    The resulting period is never worse than the unsplit mapping's period.
    """
    from ..core.period import period as analytic_period

    dedication = dedication_from_mapping(instance, mapping)
    result = optimal_split_for_dedication(instance, dedication)
    return SplitResult(
        fractional=result.fractional,
        dedication=result.dedication,
        baseline_period=analytic_period(instance, mapping),
    )


def splitting_lower_bound(instance: ProblemInstance) -> float:
    """A lower bound on the period of *any* specialized mapping.

    Obtained by letting every machine process every task of any type (the
    most permissive dedication imaginable) and splitting optimally.  Since
    real specialized mappings are restricted to integral assignments and a
    single type per machine, no specialized mapping can beat this bound.
    """
    if not instance.supports_specialized():
        raise InfeasibleProblemError(
            f"specialized mappings need m >= p; got m={instance.num_machines}, "
            f"p={instance.num_types}"
        )
    n, m = instance.num_tasks, instance.num_machines
    w = instance.processing_times
    f = instance.failure_rates
    app = instance.application

    num_rate_vars = n * m
    t_index = num_rate_vars
    c = np.zeros(num_rate_vars + 1)
    c[t_index] = -1.0

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    upper: list[float] = []
    row = 0

    def var(i: int, u: int) -> int:
        return i * m + u

    for i in range(n):
        succ = app.successor(i)
        for u in range(m):
            rows.append(row)
            cols.append(var(i, u))
            vals.append(-(1.0 - f[i, u]))
            if succ is not None:
                rows.append(row)
                cols.append(var(succ, u))
                vals.append(1.0)
        if succ is None:
            rows.append(row)
            cols.append(t_index)
            vals.append(1.0)
        upper.append(0.0)
        row += 1

    for u in range(m):
        for i in range(n):
            rows.append(row)
            cols.append(var(i, u))
            vals.append(float(w[i, u]))
        upper.append(1.0)
        row += 1

    matrix = sp.csr_matrix((vals, (rows, cols)), shape=(row, num_rate_vars + 1))
    result = linprog(
        c,
        A_ub=matrix,
        b_ub=np.asarray(upper),
        bounds=[(0.0, None)] * (num_rate_vars + 1),
        method="highs",
    )
    if not result.success or result.x is None:
        raise SolverError(f"splitting lower-bound LP failed: {result.message}")
    throughput = float(result.x[t_index])
    return float("inf") if throughput <= 0 else 1.0 / throughput
