"""Asyncio HTTP front end of the solve service.

A deliberately small, dependency-free HTTP/1.1 server on
``asyncio.start_server`` (the container ships no async HTTP framework).
All routes live under the **versioned** ``/v1/`` prefix; the original
unversioned paths (``/solve``, ``/stats``, ``/healthz``) survive as
aliases that answer identically plus a ``Deprecation: true`` header:

``POST /v1/solve``
    One solve request (see :mod:`repro.service.requests` for the
    schema).  The connection parks in the micro-batcher until its group
    flushes; the response body carries the mapping, its period and the
    cache/batch markers.  Under load the service answers **429** with a
    ``Retry-After`` header instead of queueing without bound, and a
    request carrying ``options.deadline_ms`` that cannot be answered in
    time gets a **504** (the solve itself still completes and lands in
    the cache, so the retry is cheap).
``POST /v1/session`` / ``POST /v1/session/{id}/event`` /
``GET /v1/session/{id}`` / ``DELETE /v1/session/{id}``
    Long-lived replanning sessions (see :mod:`repro.service.sessions`):
    create one over a solve-request payload, apply platform deltas
    (machine failed / recovered) and get the incrementally replanned
    mapping back, read state, close.  Idle sessions expire.
``GET /v1/stats``
    Live counters: request/cache/batcher/session stats plus latency
    aggregates and p50/p95/p99 percentiles over fixed-size reservoirs,
    and a ``metrics`` snapshot of the unified registry.
``GET /v1/metrics``
    The same registry in Prometheus text exposition format
    (:meth:`repro.obs.metrics.MetricsRegistry.render`), for scraping.
``GET /v1/healthz``
    Liveness probe (also used by the CLI/smoke to await readiness).

Keep-alive is supported, so a client can stream many requests over one
connection.  Every response carries an ``X-Request-Id`` header — the
client's, echoed, when it sent a well-formed one, else generated — so
coalesced and micro-batched requests stay attributable to the group
solve that served them (the id is recorded on the request's root span
when tracing is on; see :mod:`repro.obs.trace`).  Every error status
(400/404/429/500/504) carries one uniform envelope — ``{"error":
{"code", "message"[, "retry_after_seconds"]}}`` — instead of tearing
the connection down.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import math
import re
import time

from .._version import __version__
from ..backend import backend_info
from ..exceptions import ReproError, ServiceOverloadedError
from ..live.replanner import Replanner
from ..obs.metrics import LatencyReservoir, MetricsRegistry
from ..obs.trace import configure as configure_tracing
from ..obs.trace import request_id_or_new, span, trace_path
from .batcher import DEFAULT_MAX_BATCH, DEFAULT_WINDOW_SECONDS, MicroBatcher
from .cache import SolveCache
from .pool import SolveWorkerPool
from .requests import (
    SessionRequest,
    normalize_event,
    normalize_request,
    normalize_session_request,
)
from .sessions import DEFAULT_MAX_SESSIONS, DEFAULT_SESSION_TTL, SessionManager

__all__ = ["LatencyReservoir", "ServiceStats", "SolveService", "serve"]

#: Largest accepted request body (a solve request is a few hundred bytes;
#: anything bigger is garbage or abuse).
MAX_BODY_BYTES = 1 << 20
#: Largest accepted request line + header section.
MAX_HEADER_BYTES = 1 << 14

#: Unversioned routes kept as deprecated aliases of their /v1 versions.
LEGACY_ALIASES = ("/solve", "/stats", "/healthz")

#: ``/v1/session/{id}`` and ``/v1/session/{id}/event`` (already stripped
#: of the version prefix when matched).
_SESSION_ROUTE = re.compile(r"/session/([A-Za-z0-9_-]+)(/event)?")


class ServiceStats:
    """Request-level counters of one service process.

    Uptime is measured on the monotonic clock — ``time.time()`` would
    make ``uptime_seconds`` jump (or go negative) across an NTP step —
    while ``started_at_unix`` keeps the human-readable wall-clock start.

    Registry-backed since the unified telemetry layer landed: every
    counter is a :class:`~repro.obs.metrics.MetricsRegistry` series
    (shared with ``GET /v1/metrics``), and the historical attributes
    read from it — ``/v1/stats`` and the exposition endpoint can never
    disagree.
    """

    __slots__ = (
        "started_monotonic",
        "started_at_unix",
        "reservoir",
        "_solved",
        "_errors",
        "_shed",
        "_deadline",
        "_latency",
        "_latency_max",
    )

    def __init__(self, registry: MetricsRegistry | None = None):
        registry = registry if registry is not None else MetricsRegistry()
        self.started_monotonic = time.monotonic()
        self.started_at_unix = time.time()
        self.reservoir = LatencyReservoir()
        self._solved = registry.counter(
            "repro_service_requests_total", "Solve requests answered 200."
        )
        self._errors = registry.counter(
            "repro_service_errors_total",
            "Requests answered with an error envelope (4xx/5xx, 429/504 aside).",
        )
        self._shed = registry.counter(
            "repro_service_shed_total",
            "Requests shed by admission control (HTTP 429).",
        )
        self._deadline = registry.counter(
            "repro_service_deadline_exceeded_total",
            "Requests whose deadline expired before the solve (HTTP 504).",
        )
        self._latency = registry.histogram(
            "repro_service_latency_seconds", "End-to-end solve latency."
        )
        self._latency_max = registry.gauge(
            "repro_service_latency_max_seconds", "Largest solve latency seen."
        )

    @property
    def solved(self) -> int:
        return self._solved.value

    @property
    def errors(self) -> int:
        return self._errors.value

    @property
    def shed(self) -> int:
        return self._shed.value

    @property
    def deadline_exceeded(self) -> int:
        return self._deadline.value

    @property
    def latency_seconds(self) -> float:
        return self._latency.sum

    @property
    def latency_max_seconds(self) -> float:
        return self._latency_max.value

    def note_error(self) -> None:
        self._errors.inc()

    def note_shed(self) -> None:
        self._shed.inc()

    def note_deadline(self) -> None:
        self._deadline.inc()

    def record(self, elapsed: float) -> None:
        self._solved.inc()
        self._latency.observe(elapsed)
        self._latency_max.max(elapsed)
        self.reservoir.add(elapsed)

    def as_dict(self) -> dict:
        mean = self.latency_seconds / self.solved if self.solved else 0.0
        return {
            "uptime_seconds": round(time.monotonic() - self.started_monotonic, 3),
            "started_at_unix": round(self.started_at_unix, 3),
            "solved": self.solved,
            "errors": self.errors,
            "shed": self.shed,
            "deadline_exceeded": self.deadline_exceeded,
            "latency_mean_ms": round(mean * 1000.0, 3),
            "latency_max_ms": round(self.latency_max_seconds * 1000.0, 3),
            "latency_p50_ms": round(self.reservoir.percentile(0.50) * 1000.0, 3),
            "latency_p95_ms": round(self.reservoir.percentile(0.95) * 1000.0, 3),
            "latency_p99_ms": round(self.reservoir.percentile(0.99) * 1000.0, 3),
        }


class SolveService:
    """One solve-service instance: micro-batcher + cache + HTTP server.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks a free port (``self.port`` holds
        the effective one after :meth:`start`).
    window, max_batch, batch:
        Micro-batcher knobs (see
        :class:`~repro.service.batcher.MicroBatcher`).
    cache_dir:
        Directory of the persistent cache tier, or ``None`` for an
        in-memory-only cache.
    cache_capacity:
        LRU size of the memory tier; ``<= 0`` together with
        ``cache_dir=None`` disables caching entirely.
    cache_max_bytes:
        Size bound of the persistent tier's append log; exceeding it
        triggers compaction and LRU-ordered eviction
        (see :class:`~repro.service.cache.SolveCacheStore`).
    workers:
        ``> 0`` solves groups in that many worker *processes*
        (:class:`~repro.service.pool.SolveWorkerPool`), escaping the
        GIL; ``0`` (default) keeps solves on the in-process thread
        executor.
    max_pending:
        Admission-control bound on unresolved requests; beyond it new
        requests are shed with HTTP 429 + ``Retry-After``.  ``None``
        disables shedding.
    retry_after:
        Seconds advertised in the 429 ``Retry-After`` header.
    session_ttl:
        Idle expiry of live replanning sessions, in seconds.
    max_sessions:
        Bound on concurrently open sessions; creating one beyond it is
        shed with HTTP 429.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        window: float = DEFAULT_WINDOW_SECONDS,
        max_batch: int = DEFAULT_MAX_BATCH,
        batch: bool | None = None,
        cache_dir: str | None = None,
        cache_capacity: int = 1024,
        cache_max_bytes: int | None = None,
        workers: int = 0,
        max_pending: int | None = None,
        retry_after: float = 1.0,
        session_ttl: float = DEFAULT_SESSION_TTL,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
    ):
        self.host = host
        self.port = port
        self.retry_after = float(retry_after)
        #: One registry for every layer of this process — the single
        #: source of truth behind ``/v1/stats`` and ``GET /v1/metrics``.
        self.registry = MetricsRegistry()
        self.cache: SolveCache | None = (
            SolveCache.open(
                cache_dir,
                capacity=cache_capacity,
                max_bytes=cache_max_bytes,
                registry=self.registry,
            )
            if cache_dir is not None or cache_capacity > 0
            else None
        )
        self.pool: SolveWorkerPool | None = (
            SolveWorkerPool(workers) if workers else None
        )
        self.batcher = MicroBatcher(
            window=window,
            max_batch=max_batch,
            batch=batch,
            cache=self.cache,
            pool=self.pool,
            max_pending=max_pending,
            registry=self.registry,
        )
        self.stats = ServiceStats(self.registry)
        self.sessions = SessionManager(
            ttl=session_ttl, max_sessions=max_sessions, registry=self.registry
        )
        self.registry.gauge(
            "repro_backend_info",
            "Active kernel backend (value is always 1).",
            labels=("name",),
        ).labels(name=backend_info()["name"]).set(1)
        self.registry.gauge(
            "repro_service_workers", "Solve worker processes attached."
        ).set(workers)
        self._server: asyncio.Server | None = None
        self._sweeper: asyncio.Task | None = None

    # -- lifecycle ---------------------------------------------------------------
    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.host}:{self.port}"

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        # With port=0 the kernel picked one; expose the effective port.
        self.port = self._server.sockets[0].getsockname()[1]
        self._sweeper = asyncio.get_running_loop().create_task(
            self.sessions.run_sweeper()
        )

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI entry point)."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain in-flight work, close.

        In-flight groups are flushed and *waited for* (the batcher's
        ``aclose``), so a solve that a client is still parked on
        completes and is answered instead of being dropped mid-flight.
        The drain runs before ``wait_closed`` because (since 3.12)
        ``wait_closed`` itself waits for connection handlers — which are
        exactly the coroutines parked on the batcher.
        """
        if self._sweeper is not None:
            self._sweeper.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._sweeper
            self._sweeper = None
        if self._server is not None:
            self._server.close()
        await self.batcher.aclose()
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None
        if self.pool is not None:
            self.pool.shutdown()
        if self.cache is not None:
            self.cache.close()

    # -- request handling --------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await _read_request(reader)
                if request is None:
                    break
                method, target, headers, body = request
                request_id = request_id_or_new(headers.get("x-request-id"))
                with span(
                    "http.request",
                    method=method,
                    path=target.split("?", 1)[0],
                    request_id=request_id,
                ) as request_span:
                    status, payload, extra_headers = await self._dispatch(
                        method, target, body
                    )
                    request_span.set(status=status)
                extra_headers = dict(extra_headers or {})
                # Echoed (or generated) on every response, so a client —
                # including one whose request was coalesced into another
                # group member's solve — can join its logs to the trace.
                extra_headers["X-Request-Id"] = request_id
                keep_alive = headers.get("connection", "keep-alive") != "close"
                await _write_response(
                    writer,
                    status,
                    payload,
                    keep_alive=keep_alive,
                    headers=extra_headers,
                )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover - teardown race
                pass

    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, dict, dict | None]:
        path = target.split("?", 1)[0]
        if path in LEGACY_ALIASES:
            # Unversioned alias of the /v1 route: same answer, flagged
            # deprecated so callers can migrate on their own schedule.
            status, payload, headers = await self._route(method, path, path, body)
            headers = dict(headers or {})
            headers["Deprecation"] = "true"
            return status, payload, headers
        if path == "/v1" or path.startswith("/v1/"):
            return await self._route(method, path[3:] or "/", path, body)
        self.stats.note_error()
        return _error(404, "not_found", f"no such endpoint: {method} {path}")

    async def _route(
        self, method: str, route: str, path: str, body: bytes
    ) -> tuple[int, dict, dict | None]:
        """Answer one version-stripped route (``path`` only for messages)."""
        if route == "/solve" and method == "POST":
            return await self._solve(body)
        if route == "/stats" and method == "GET":
            return 200, self.stats_payload(), None
        if route == "/metrics" and method == "GET":
            # Prometheus text exposition; _write_response sends str
            # payloads as text/plain instead of JSON.
            return 200, self.metrics_text(), None
        if route == "/healthz" and method == "GET":
            return 200, {"status": "ok", "version": __version__, "api": "v1"}, None
        if route == "/session" and method == "POST":
            return await self._session_create(body)
        match = _SESSION_ROUTE.fullmatch(route)
        if match is not None:
            session_id, is_event = match.group(1), match.group(2) is not None
            if is_event and method == "POST":
                return await self._session_event(session_id, body)
            if not is_event and method == "GET":
                return self._session_state(session_id)
            if not is_event and method == "DELETE":
                return self._session_close(session_id)
        self.stats.note_error()
        return _error(404, "not_found", f"no such endpoint: {method} {path}")

    def _shed(self, exc: ServiceOverloadedError) -> tuple[int, dict, dict | None]:
        # Load shedding, not an error: the request was never admitted.
        self.stats.note_shed()
        seconds = getattr(exc, "retry_after_seconds", None)
        retry_after = max(0, math.ceil(self.retry_after if seconds is None else seconds))
        return _error(
            429,
            "overloaded",
            str(exc),
            retry_after=retry_after,
            headers={"Retry-After": str(retry_after)},
        )

    async def _solve(self, body: bytes) -> tuple[int, dict, dict | None]:
        start = time.perf_counter()
        try:
            payload = _parse_json(body)
            request = normalize_request(payload)
            submission = self.batcher.submit(request)
            if request.deadline_ms is not None:
                response = await asyncio.wait_for(
                    submission, timeout=request.deadline_ms / 1000.0
                )
            else:
                response = await submission
        except ServiceOverloadedError as exc:
            return self._shed(exc)
        except (asyncio.TimeoutError, TimeoutError):
            # The solve itself keeps running (shielded) and lands in the
            # cache, so the client's retry after the deadline is cheap.
            self.stats.note_deadline()
            return _error(
                504,
                "deadline_exceeded",
                f"deadline of {request.deadline_ms:g} ms exceeded "
                "before the solve completed",
            )
        except ReproError as exc:
            self.stats.note_error()
            return _error(400, "bad_request", str(exc))
        except Exception as exc:  # noqa: BLE001 - a solver bug must not kill the connection
            self.stats.note_error()
            return _error(500, "internal", f"{type(exc).__name__}: {exc}")
        self.stats.record(time.perf_counter() - start)
        return 200, response, None

    # -- sessions ------------------------------------------------------------------
    @staticmethod
    def _build_replanner(spec: SessionRequest) -> Replanner:
        """CPU-bound session setup (instance draw + initial solve)."""
        return Replanner(spec.request.sample(), spec.request.heuristic)

    async def _session_create(self, body: bytes) -> tuple[int, dict, dict | None]:
        try:
            spec = normalize_session_request(_parse_json(body))
            replanner = await asyncio.get_running_loop().run_in_executor(
                None, self._build_replanner, spec
            )
            session = self.sessions.add(spec, replanner)
        except ServiceOverloadedError as exc:
            return self._shed(exc)
        except ReproError as exc:
            self.stats.note_error()
            return _error(400, "bad_request", str(exc))
        except Exception as exc:  # noqa: BLE001 - keep the connection alive
            self.stats.note_error()
            return _error(500, "internal", f"{type(exc).__name__}: {exc}")
        return 200, session.created_payload(), None

    async def _session_event(
        self, session_id: str, body: bytes
    ) -> tuple[int, dict, dict | None]:
        try:
            payload = _parse_json(body)
            kind, machine, event_time = normalize_event(payload)
            session = self.sessions.get(session_id)
        except ReproError as exc:
            return self._session_error(exc)
        try:
            # The lock serializes concurrent events on one session: the
            # replanner sees a single, time-ordered stream.  The replan
            # itself runs on the executor so other sessions (and plain
            # solves) keep flowing while this one computes.
            async with session.lock:
                session.touch()
                with span(
                    "session.event", session=session.id, kind=kind, machine=machine
                ) as event_span:
                    record = await asyncio.get_running_loop().run_in_executor(
                        None, session.replanner.apply, event_time, kind, machine
                    )
                    event_span.set(via=record.via)
                session.touch()
        except ReproError as exc:
            self.stats.note_error()
            return _error(400, "bad_request", str(exc))
        except Exception as exc:  # noqa: BLE001 - keep the connection alive
            self.stats.note_error()
            return _error(500, "internal", f"{type(exc).__name__}: {exc}")
        self.sessions.note_record(record)
        return 200, {"session": session.id, **record.to_dict()}, None

    def _session_state(self, session_id: str) -> tuple[int, dict, dict | None]:
        try:
            session = self.sessions.get(session_id)
        except ReproError as exc:
            return self._session_error(exc)
        session.touch()
        return 200, session.state_payload(), None

    def _session_close(self, session_id: str) -> tuple[int, dict, dict | None]:
        try:
            session = self.sessions.close(session_id)
        except ReproError as exc:
            return self._session_error(exc)
        return 200, session.closed_payload(), None

    def _session_error(self, exc: ReproError) -> tuple[int, dict, dict | None]:
        """400 for malformed payloads, 404 for unknown/expired sessions."""
        self.stats.note_error()
        if str(exc).startswith("no such session"):
            return _error(404, "session_not_found", str(exc))
        return _error(400, "bad_request", str(exc))

    def stats_payload(self) -> dict:
        """The ``/v1/stats`` body (also used by tests and the smoke check)."""
        payload = {
            "service": self.stats.as_dict(),
            "batcher": self.batcher.stats.as_dict(),
            "sessions": self.sessions.stats_payload(),
            # Which kernel backend this process solves on (and whether the
            # optional numba one could be used at all) — operational
            # visibility for mixed fleets; results are backend-independent.
            "backend": backend_info(),
        }
        payload["cache"] = (
            self.cache.stats_payload() if self.cache is not None else None
        )
        payload["workers"] = self.pool.workers if self.pool is not None else 0
        self._refresh_gauges()
        payload["metrics"] = self.registry.snapshot()
        return payload

    def _refresh_gauges(self) -> None:
        """Update scrape-time gauges (uptime, table/store footprints)."""
        registry = self.registry
        registry.gauge(
            "repro_service_uptime_seconds", "Seconds since the service started."
        ).set(round(time.monotonic() - self.stats.started_monotonic, 3))
        registry.gauge(
            "repro_sessions_active", "Currently open replanning sessions."
        ).set(len(self.sessions))
        if self.cache is not None and self.cache.store is not None:
            store = self.cache.store
            registry.gauge(
                "repro_cache_store_entries", "Records in the persistent cache tier."
            ).set(len(store))
            registry.gauge(
                "repro_cache_store_bytes", "Size of the persistent cache log."
            ).set(store.size_bytes())
            registry.gauge(
                "repro_cache_store_evictions",
                "Entries evicted from the persistent tier.",
            ).set(store.evictions)
            registry.gauge(
                "repro_cache_store_compactions",
                "Compactions of the persistent cache log.",
            ).set(store.compactions)

    def metrics_text(self) -> str:
        """The ``GET /v1/metrics`` body (Prometheus text exposition)."""
        self._refresh_gauges()
        return self.registry.render()


def _parse_json(body: bytes) -> dict:
    """Decode a request body, mapping JSON noise to a clean 400."""
    try:
        return json.loads(body.decode("utf-8")) if body else {}
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ReproError(f"request body is not valid JSON: {exc}") from exc


def _error(
    status: int,
    code: str,
    message: str,
    *,
    retry_after: int | None = None,
    headers: dict | None = None,
) -> tuple[int, dict, dict | None]:
    """The uniform error envelope every non-2xx response carries."""
    envelope: dict = {"code": code, "message": message}
    if retry_after is not None:
        envelope["retry_after_seconds"] = retry_after
    return status, {"error": envelope}, headers


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict, bytes] | None:
    """Parse one HTTP/1.1 request; ``None`` on a cleanly closed connection."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests
        raise
    if len(head) > MAX_HEADER_BYTES:
        raise ConnectionError("header section too large")
    request_line, *header_lines = head.decode("latin-1").split("\r\n")
    parts = request_line.split()
    if len(parts) != 3:
        raise ConnectionError(f"malformed request line: {request_line!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip().lower()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError as exc:
        raise ConnectionError(f"bad Content-Length: {exc}") from exc
    if not 0 <= length <= MAX_BODY_BYTES:
        raise ConnectionError(f"bad Content-Length ({length} bytes)")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), target, headers, body


async def _write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: dict | str,
    *,
    keep_alive: bool,
    headers: dict | None = None,
) -> None:
    reasons = {
        200: "OK",
        400: "Bad Request",
        404: "Not Found",
        429: "Too Many Requests",
        500: "Internal Server Error",
        504: "Gateway Timeout",
    }
    if isinstance(payload, str):
        # Text payloads (the Prometheus exposition) go out as-is.
        body = payload.encode("utf-8")
        content_type = "text/plain; version=0.0.4; charset=utf-8"
    else:
        body = json.dumps(payload).encode("utf-8")
        content_type = "application/json"
    extra = "".join(
        f"{name}: {value}\r\n" for name, value in (headers or {}).items()
    )
    head = (
        f"HTTP/1.1 {status} {reasons.get(status, 'OK')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extra}"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    ).encode("latin-1")
    writer.write(head + body)
    await writer.drain()


def _announce(line: str) -> None:
    # Flushed so a parent process piping stdout (the CI smoke) sees the
    # readiness line immediately.
    print(line, flush=True)


async def _serve_async(service: SolveService, *, announce=_announce) -> None:
    await service.start()
    announce(
        f"solve service listening on {service.url} "
        "(POST /v1/solve, POST /v1/session, GET /v1/stats)"
    )
    try:
        await service.serve_forever()
    finally:
        await service.stop()


def serve(
    *,
    host: str = "127.0.0.1",
    port: int = 8000,
    window: float = DEFAULT_WINDOW_SECONDS,
    max_batch: int = DEFAULT_MAX_BATCH,
    cache_dir: str | None = None,
    cache_capacity: int = 1024,
    cache_max_bytes: int | None = None,
    workers: int = 0,
    max_pending: int | None = None,
    session_ttl: float = DEFAULT_SESSION_TTL,
    max_sessions: int = DEFAULT_MAX_SESSIONS,
    trace: str | None = None,
    announce=_announce,
) -> None:
    """Blocking entry point: run a solve service until interrupted.

    Announces the effective URL on stdout once the socket is bound
    (``port=0`` binds a free port), which is what ``microrepro serve``
    and the CI smoke wait for.  ``trace`` switches span tracing on for
    this process, appending to a :class:`~repro.obs.trace.TraceStore`
    at that directory (off by default; also reachable via
    ``REPRO_TRACE``).
    """
    if trace is not None:
        configure_tracing(trace)
        announce(f"tracing spans to {trace_path()}")
    service = SolveService(
        host=host,
        port=port,
        window=window,
        max_batch=max_batch,
        cache_dir=cache_dir,
        cache_capacity=cache_capacity,
        cache_max_bytes=cache_max_bytes,
        workers=workers,
        max_pending=max_pending,
        session_ttl=session_ttl,
        max_sessions=max_sessions,
    )
    try:
        asyncio.run(_serve_async(service, announce=announce))
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
