"""Asyncio HTTP front end of the solve service.

A deliberately small, dependency-free HTTP/1.1 server on
``asyncio.start_server`` (the container ships no async HTTP framework,
and the service needs exactly three JSON endpoints):

``POST /solve``
    One solve request (see :mod:`repro.service.requests` for the
    schema).  The connection parks in the micro-batcher until its group
    flushes; the response body carries the mapping, its period and the
    cache/batch markers.  Under load the service answers **429** with a
    ``Retry-After`` header instead of queueing without bound, and a
    request carrying ``options.deadline_ms`` that cannot be answered in
    time gets a **504** (the solve itself still completes and lands in
    the cache, so the retry is cheap).
``GET /stats``
    Live counters: request/cache/batcher stats plus latency aggregates
    and p50/p95/p99 percentiles over a fixed-size reservoir.
``GET /healthz``
    Liveness probe (also used by the CLI/smoke to await readiness).

Keep-alive is supported, so a client can stream many requests over one
connection; malformed requests get a 400 with an ``{"error": ...}``
body instead of tearing the connection down.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from dataclasses import dataclass, field

from .._version import __version__
from ..backend import backend_info
from ..exceptions import ReproError, ServiceOverloadedError
from .batcher import DEFAULT_MAX_BATCH, DEFAULT_WINDOW_SECONDS, MicroBatcher
from .cache import SolveCache
from .pool import SolveWorkerPool
from .requests import normalize_request

__all__ = ["LatencyReservoir", "ServiceStats", "SolveService", "serve"]

#: Largest accepted request body (a solve request is a few hundred bytes;
#: anything bigger is garbage or abuse).
MAX_BODY_BYTES = 1 << 20
#: Largest accepted request line + header section.
MAX_HEADER_BYTES = 1 << 14
#: Latency samples kept for the ``/stats`` percentiles.
RESERVOIR_SIZE = 512


@dataclass(slots=True)
class LatencyReservoir:
    """Fixed-size reservoir of the most recent request latencies.

    A ring buffer over the last ``size`` samples: O(1) per record, fixed
    memory forever, and the percentiles track *current* behaviour
    instead of averaging this minute's overload away against last
    hour's idle.
    """

    size: int = RESERVOIR_SIZE
    _samples: list[float] = field(default_factory=list)
    _next: int = 0

    def add(self, value: float) -> None:
        if len(self._samples) < self.size:
            self._samples.append(value)
        else:
            self._samples[self._next] = value
        self._next = (self._next + 1) % self.size

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (``0 < q <= 1``); ``0.0`` when empty."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(1, math.ceil(q * len(ordered)))
        return ordered[rank - 1]


@dataclass(slots=True)
class ServiceStats:
    """Request-level counters of one service process.

    Uptime is measured on the monotonic clock — ``time.time()`` would
    make ``uptime_seconds`` jump (or go negative) across an NTP step —
    while ``started_at_unix`` keeps the human-readable wall-clock start.
    """

    started_monotonic: float = field(default_factory=time.monotonic)
    started_at_unix: float = field(default_factory=time.time)
    solved: int = 0
    errors: int = 0
    shed: int = 0
    deadline_exceeded: int = 0
    latency_seconds: float = 0.0
    latency_max_seconds: float = 0.0
    reservoir: LatencyReservoir = field(default_factory=LatencyReservoir)

    def record(self, elapsed: float) -> None:
        self.solved += 1
        self.latency_seconds += elapsed
        self.latency_max_seconds = max(self.latency_max_seconds, elapsed)
        self.reservoir.add(elapsed)

    def as_dict(self) -> dict:
        mean = self.latency_seconds / self.solved if self.solved else 0.0
        return {
            "uptime_seconds": round(time.monotonic() - self.started_monotonic, 3),
            "started_at_unix": round(self.started_at_unix, 3),
            "solved": self.solved,
            "errors": self.errors,
            "shed": self.shed,
            "deadline_exceeded": self.deadline_exceeded,
            "latency_mean_ms": round(mean * 1000.0, 3),
            "latency_max_ms": round(self.latency_max_seconds * 1000.0, 3),
            "latency_p50_ms": round(self.reservoir.percentile(0.50) * 1000.0, 3),
            "latency_p95_ms": round(self.reservoir.percentile(0.95) * 1000.0, 3),
            "latency_p99_ms": round(self.reservoir.percentile(0.99) * 1000.0, 3),
        }


class SolveService:
    """One solve-service instance: micro-batcher + cache + HTTP server.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks a free port (``self.port`` holds
        the effective one after :meth:`start`).
    window, max_batch, batch:
        Micro-batcher knobs (see
        :class:`~repro.service.batcher.MicroBatcher`).
    cache_dir:
        Directory of the persistent cache tier, or ``None`` for an
        in-memory-only cache.
    cache_capacity:
        LRU size of the memory tier; ``<= 0`` together with
        ``cache_dir=None`` disables caching entirely.
    cache_max_bytes:
        Size bound of the persistent tier's append log; exceeding it
        triggers compaction and LRU-ordered eviction
        (see :class:`~repro.service.cache.SolveCacheStore`).
    workers:
        ``> 0`` solves groups in that many worker *processes*
        (:class:`~repro.service.pool.SolveWorkerPool`), escaping the
        GIL; ``0`` (default) keeps solves on the in-process thread
        executor.
    max_pending:
        Admission-control bound on unresolved requests; beyond it new
        requests are shed with HTTP 429 + ``Retry-After``.  ``None``
        disables shedding.
    retry_after:
        Seconds advertised in the 429 ``Retry-After`` header.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        window: float = DEFAULT_WINDOW_SECONDS,
        max_batch: int = DEFAULT_MAX_BATCH,
        batch: bool | None = None,
        cache_dir: str | None = None,
        cache_capacity: int = 1024,
        cache_max_bytes: int | None = None,
        workers: int = 0,
        max_pending: int | None = None,
        retry_after: float = 1.0,
    ):
        self.host = host
        self.port = port
        self.retry_after = float(retry_after)
        self.cache: SolveCache | None = (
            SolveCache.open(
                cache_dir, capacity=cache_capacity, max_bytes=cache_max_bytes
            )
            if cache_dir is not None or cache_capacity > 0
            else None
        )
        self.pool: SolveWorkerPool | None = (
            SolveWorkerPool(workers) if workers else None
        )
        self.batcher = MicroBatcher(
            window=window,
            max_batch=max_batch,
            batch=batch,
            cache=self.cache,
            pool=self.pool,
            max_pending=max_pending,
        )
        self.stats = ServiceStats()
        self._server: asyncio.Server | None = None

    # -- lifecycle ---------------------------------------------------------------
    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.host}:{self.port}"

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        # With port=0 the kernel picked one; expose the effective port.
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI entry point)."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain in-flight work, close.

        In-flight groups are flushed and *waited for* (the batcher's
        ``aclose``), so a solve that a client is still parked on
        completes and is answered instead of being dropped mid-flight.
        The drain runs before ``wait_closed`` because (since 3.12)
        ``wait_closed`` itself waits for connection handlers — which are
        exactly the coroutines parked on the batcher.
        """
        if self._server is not None:
            self._server.close()
        await self.batcher.aclose()
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None
        if self.pool is not None:
            self.pool.shutdown()
        if self.cache is not None:
            self.cache.close()

    # -- request handling --------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await _read_request(reader)
                if request is None:
                    break
                method, target, headers, body = request
                status, payload, extra_headers = await self._dispatch(
                    method, target, body
                )
                keep_alive = headers.get("connection", "keep-alive") != "close"
                await _write_response(
                    writer,
                    status,
                    payload,
                    keep_alive=keep_alive,
                    headers=extra_headers,
                )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover - teardown race
                pass

    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, dict, dict | None]:
        path = target.split("?", 1)[0]
        if method == "POST" and path == "/solve":
            return await self._solve(body)
        if method == "GET" and path == "/stats":
            return 200, self.stats_payload(), None
        if method == "GET" and path == "/healthz":
            return 200, {"status": "ok", "version": __version__}, None
        self.stats.errors += 1
        return 404, {"error": f"no such endpoint: {method} {path}"}, None

    async def _solve(self, body: bytes) -> tuple[int, dict, dict | None]:
        start = time.perf_counter()
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self.stats.errors += 1
            return 400, {"error": f"request body is not valid JSON: {exc}"}, None
        try:
            request = normalize_request(payload)
            submission = self.batcher.submit(request)
            if request.deadline_ms is not None:
                response = await asyncio.wait_for(
                    submission, timeout=request.deadline_ms / 1000.0
                )
            else:
                response = await submission
        except ServiceOverloadedError as exc:
            # Load shedding, not an error: the request was never admitted.
            self.stats.shed += 1
            retry_after = max(0, math.ceil(self.retry_after))
            return (
                429,
                {"error": str(exc), "retry_after_seconds": retry_after},
                {"Retry-After": str(retry_after)},
            )
        except (asyncio.TimeoutError, TimeoutError):
            # The solve itself keeps running (shielded) and lands in the
            # cache, so the client's retry after the deadline is cheap.
            self.stats.deadline_exceeded += 1
            return (
                504,
                {
                    "error": f"deadline of {request.deadline_ms:g} ms exceeded "
                    "before the solve completed"
                },
                None,
            )
        except ReproError as exc:
            self.stats.errors += 1
            return 400, {"error": str(exc)}, None
        except Exception as exc:  # noqa: BLE001 - a solver bug must not kill the connection
            self.stats.errors += 1
            return 500, {"error": f"{type(exc).__name__}: {exc}"}, None
        self.stats.record(time.perf_counter() - start)
        return 200, response, None

    def stats_payload(self) -> dict:
        """The ``/stats`` body (also used by tests and the smoke check)."""
        payload = {
            "service": self.stats.as_dict(),
            "batcher": self.batcher.stats.as_dict(),
            # Which kernel backend this process solves on (and whether the
            # optional numba one could be used at all) — operational
            # visibility for mixed fleets; results are backend-independent.
            "backend": backend_info(),
        }
        payload["cache"] = (
            self.cache.stats_payload() if self.cache is not None else None
        )
        payload["workers"] = self.pool.workers if self.pool is not None else 0
        return payload


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict, bytes] | None:
    """Parse one HTTP/1.1 request; ``None`` on a cleanly closed connection."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests
        raise
    if len(head) > MAX_HEADER_BYTES:
        raise ConnectionError("header section too large")
    request_line, *header_lines = head.decode("latin-1").split("\r\n")
    parts = request_line.split()
    if len(parts) != 3:
        raise ConnectionError(f"malformed request line: {request_line!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip().lower()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError as exc:
        raise ConnectionError(f"bad Content-Length: {exc}") from exc
    if not 0 <= length <= MAX_BODY_BYTES:
        raise ConnectionError(f"bad Content-Length ({length} bytes)")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), target, headers, body


async def _write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: dict,
    *,
    keep_alive: bool,
    headers: dict | None = None,
) -> None:
    reasons = {
        200: "OK",
        400: "Bad Request",
        404: "Not Found",
        429: "Too Many Requests",
        500: "Internal Server Error",
        504: "Gateway Timeout",
    }
    body = json.dumps(payload).encode("utf-8")
    extra = "".join(
        f"{name}: {value}\r\n" for name, value in (headers or {}).items()
    )
    head = (
        f"HTTP/1.1 {status} {reasons.get(status, 'OK')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extra}"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    ).encode("latin-1")
    writer.write(head + body)
    await writer.drain()


def _announce(line: str) -> None:
    # Flushed so a parent process piping stdout (the CI smoke) sees the
    # readiness line immediately.
    print(line, flush=True)


async def _serve_async(service: SolveService, *, announce=_announce) -> None:
    await service.start()
    announce(f"solve service listening on {service.url} (POST /solve, GET /stats)")
    try:
        await service.serve_forever()
    finally:
        await service.stop()


def serve(
    *,
    host: str = "127.0.0.1",
    port: int = 8000,
    window: float = DEFAULT_WINDOW_SECONDS,
    max_batch: int = DEFAULT_MAX_BATCH,
    cache_dir: str | None = None,
    cache_capacity: int = 1024,
    cache_max_bytes: int | None = None,
    workers: int = 0,
    max_pending: int | None = None,
    announce=_announce,
) -> None:
    """Blocking entry point: run a solve service until interrupted.

    Announces the effective URL on stdout once the socket is bound
    (``port=0`` binds a free port), which is what ``microrepro serve``
    and the CI smoke wait for.
    """
    service = SolveService(
        host=host,
        port=port,
        window=window,
        max_batch=max_batch,
        cache_dir=cache_dir,
        cache_capacity=cache_capacity,
        cache_max_bytes=cache_max_bytes,
        workers=workers,
        max_pending=max_pending,
    )
    try:
        asyncio.run(_serve_async(service, announce=announce))
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
