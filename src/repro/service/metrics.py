"""Small metric primitives shared by the service's stats surfaces.

Lives in its own module so both the HTTP front end
(:mod:`repro.service.server`) and the session manager
(:mod:`repro.service.sessions`) can record latencies without importing
each other.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["LatencyReservoir", "RESERVOIR_SIZE"]

#: Latency samples kept for the ``/v1/stats`` percentiles.
RESERVOIR_SIZE = 512


@dataclass(slots=True)
class LatencyReservoir:
    """Fixed-size reservoir of the most recent request latencies.

    A ring buffer over the last ``size`` samples: O(1) per record, fixed
    memory forever, and the percentiles track *current* behaviour
    instead of averaging this minute's overload away against last
    hour's idle.
    """

    size: int = RESERVOIR_SIZE
    _samples: list[float] = field(default_factory=list)
    _next: int = 0

    def add(self, value: float) -> None:
        if len(self._samples) < self.size:
            self._samples.append(value)
        else:
            self._samples[self._next] = value
        self._next = (self._next + 1) % self.size

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (``0 < q <= 1``); ``0.0`` when empty."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(1, math.ceil(q * len(ordered)))
        return ordered[rank - 1]
