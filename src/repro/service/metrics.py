"""Deprecated alias of :mod:`repro.obs.metrics` (kept for imports).

The latency reservoir moved into the unified observability layer —
``from repro.obs.metrics import LatencyReservoir`` is the supported
path.  This module re-exports the old names so existing imports keep
working; it will be removed once nothing references it.
"""

from __future__ import annotations

from ..obs.metrics import RESERVOIR_SIZE, LatencyReservoir

__all__ = ["LatencyReservoir", "RESERVOIR_SIZE"]
