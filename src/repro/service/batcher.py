"""Micro-batching solve scheduler: coalesce concurrent requests.

The solve service's hot path.  Solving one request costs a fixed
Python/NumPy dispatch overhead that :func:`~repro.heuristics.base.solve_stack`
amortizes across a whole stack — exactly how the experiment engine
amortizes a block's ``R`` repetitions.  Under concurrent load the
batcher recreates that shape from independent requests:

1. :meth:`MicroBatcher.submit` first consults the solve cache, then the
   in-flight table (an identical request already being solved joins its
   group instead of re-solving — *coalescing*);
2. a new request is appended to the pending group of its structural
   :attr:`~repro.service.requests.SolveRequest.signature` (heuristic,
   task count, platform size — what must match for instances to stack);
3. the group is **flushed** when its batching window (a few ms) expires
   or it reaches ``max_batch`` requests, whichever comes first;
4. a flushed group of at least ``batch_min`` requests whose heuristic
   has a batch kernel is solved in one lock-step ``solve_batch`` call
   and scored in one vectorized :class:`~repro.batch.InstanceStack`
   pass; smaller groups (and kernel-less heuristics such as H1) fall
   back to per-instance solves.  **Responses are bit-for-bit identical
   either way** — batching is a scheduling choice, never a semantic
   one.

Solves run on a worker thread (``asyncio`` executor), so the event loop
keeps accepting and grouping requests while a batch computes.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from ..batch import InstanceStack
from ..heuristics.base import BATCH_SOLVE_MIN_REPETITIONS, solve_stack, supports_batch
from .cache import SolveCache
from .requests import SolveRequest, build_response

__all__ = ["BatcherStats", "MicroBatcher", "DEFAULT_WINDOW_SECONDS", "DEFAULT_MAX_BATCH"]

#: How long the first request of a group waits for company before the
#: group is solved (the latency cost of batching).
DEFAULT_WINDOW_SECONDS = 0.002
#: A group reaching this depth is flushed immediately.
DEFAULT_MAX_BATCH = 64


@dataclass(slots=True)
class BatcherStats:
    """Counters of one :class:`MicroBatcher` (reset with the process)."""

    requests: int = 0
    flushes: int = 0
    batched_requests: int = 0
    fallback_requests: int = 0
    coalesced: int = 0
    max_group: int = 0
    solve_seconds: float = 0.0

    def as_dict(self) -> dict:
        """JSON-ready counters for ``/stats``."""
        return {
            "requests": self.requests,
            "flushes": self.flushes,
            "batched_requests": self.batched_requests,
            "fallback_requests": self.fallback_requests,
            "coalesced": self.coalesced,
            "max_group": self.max_group,
            "solve_seconds": round(self.solve_seconds, 6),
        }


@dataclass(slots=True)
class _Group:
    """The pending requests of one structural signature."""

    requests: list[SolveRequest] = field(default_factory=list)
    futures: dict[str, asyncio.Future] = field(default_factory=dict)
    timer: asyncio.TimerHandle | None = None


class MicroBatcher:
    """Window-based request coalescing in front of ``solve_stack``.

    Parameters
    ----------
    window:
        Seconds the first request of a group waits before its group is
        flushed (``0`` flushes on the next loop tick — grouping then
        only catches requests submitted in the same tick).
    max_batch:
        Group depth that triggers an immediate flush.
    batch_min:
        Smallest flushed group routed through the lock-step batch
        kernels; defaults to the engine-wide
        :data:`~repro.heuristics.base.BATCH_SOLVE_MIN_REPETITIONS`
        crossover.
    batch:
        ``None`` applies the ``batch_min`` crossover per flush;
        ``True``/``False`` force one path (benchmarks, tests).  Results
        are identical either way.
    cache:
        Optional :class:`~repro.service.cache.SolveCache` consulted
        before grouping and written through after solving.
    """

    def __init__(
        self,
        *,
        window: float = DEFAULT_WINDOW_SECONDS,
        max_batch: int = DEFAULT_MAX_BATCH,
        batch_min: int = BATCH_SOLVE_MIN_REPETITIONS,
        batch: bool | None = None,
        cache: SolveCache | None = None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.window = float(window)
        self.max_batch = int(max_batch)
        self.batch_min = int(batch_min)
        self.batch = batch
        self.cache = cache
        self.stats = BatcherStats()
        self._groups: dict[tuple, _Group] = {}
        #: request key -> unresolved future, covering both pending groups
        #: and groups whose solve is already running on the executor; an
        #: identical request joins it instead of re-solving.
        self._inflight: dict[str, asyncio.Future] = {}

    async def submit(self, request: SolveRequest) -> dict:
        """Resolve one request: cache, coalesce, or enqueue and await.

        Returns the JSON-ready response body with a ``"cached"`` field
        (``False``, ``"memory"`` or ``"store"``).
        """
        self.stats.requests += 1
        if self.cache is not None:
            response, tier = await self._cache_get(request.key)
            if response is not None:
                return dict(response, cached=tier)
        inflight = self._inflight.get(request.key)
        if inflight is not None:
            # Identical request already pending or mid-solve: one solve
            # serves both.
            self.stats.coalesced += 1
            return dict(await asyncio.shield(inflight), cached=False)
        future = self._enqueue(request)
        return dict(await asyncio.shield(future), cached=False)

    async def _cache_get(self, key: str) -> tuple[dict | None, str | None]:
        """Cache lookup; the persistent tier's file I/O stays off the loop.

        After the executor hop the in-flight table may have gained this
        key — :meth:`submit` re-checks it before enqueueing, so a miss
        here can still coalesce instead of re-solving.
        """
        if self.cache.store is None:
            return self.cache.get(key)
        return await asyncio.get_running_loop().run_in_executor(
            None, self.cache.get, key
        )

    def _enqueue(self, request: SolveRequest) -> asyncio.Future:
        loop = asyncio.get_running_loop()
        group = self._groups.get(request.signature)
        if group is None:
            group = _Group()
            self._groups[request.signature] = group
            group.timer = loop.call_later(
                self.window, self._flush, request.signature
            )
        future = loop.create_future()
        group.requests.append(request)
        group.futures[request.key] = future
        self._inflight[request.key] = future
        if len(group.requests) >= self.max_batch:
            self._flush(request.signature)
        return future

    def _flush(self, signature: tuple) -> None:
        """Detach a group and hand it to the solver task."""
        group = self._groups.pop(signature, None)
        if group is None:  # already flushed by the size trigger
            return
        if group.timer is not None:
            group.timer.cancel()
        asyncio.get_running_loop().create_task(self._solve_group(group))

    async def _solve_group(self, group: _Group) -> None:
        self.stats.flushes += 1
        self.stats.max_group = max(self.stats.max_group, len(group.requests))
        loop = asyncio.get_running_loop()
        start = time.perf_counter()
        try:
            responses, batched = await loop.run_in_executor(
                None, self._solve, tuple(group.requests)
            )
        except BaseException as exc:  # noqa: BLE001 - fan the failure out
            for key, future in group.futures.items():
                self._release(key, future)
                if not future.done():
                    future.set_exception(exc)
            return
        finally:
            self.stats.solve_seconds += time.perf_counter() - start
        if batched:
            self.stats.batched_requests += len(group.requests)
        else:
            self.stats.fallback_requests += len(group.requests)
        if self.cache is not None:
            # Before resolving the futures, so a submitter that saw its
            # response can rely on the cache already holding it; the
            # persistent tier's appends stay off the loop.
            pairs = [
                (request.key, response)
                for request, response in zip(group.requests, responses)
            ]
            if self.cache.store is None:
                self._persist(pairs)
            else:
                await loop.run_in_executor(None, self._persist, pairs)
        for request, response in zip(group.requests, responses):
            future = group.futures[request.key]
            self._release(request.key, future)
            if not future.done():
                future.set_result(response)

    def _release(self, key: str, future: asyncio.Future) -> None:
        """Drop an in-flight entry (only if it is still *this* future)."""
        if self._inflight.get(key) is future:
            del self._inflight[key]

    def _persist(self, pairs: list[tuple[str, dict]]) -> None:
        for key, response in pairs:
            self.cache.put(key, response)

    def _solve(
        self, requests: tuple[SolveRequest, ...]
    ) -> tuple[list[dict], bool]:
        """Solve one flushed group (worker thread; pure, touches no state).

        Group members share a signature, so their instances stack; the
        lock-step kernel runs when the group clears the crossover (or
        ``batch=True`` forces it) and the heuristic supports it.
        Returns ``(responses, batched)``.
        """
        heuristic = requests[0].resolve_heuristic()
        instances = [request.sample() for request in requests]
        use_batch = (
            self.batch
            if self.batch is not None
            else len(requests) >= self.batch_min
        )
        batched = use_batch and supports_batch(heuristic)
        assignments = solve_stack(
            heuristic,
            instances,
            lambda row: requests[row].rng() if heuristic.randomized else None,
            batch=use_batch,
        )
        stack = InstanceStack.from_instances(instances, require_uniform_types=False)
        periods = stack.periods(assignments)
        responses = [
            build_response(request, assignments[row], periods[row], batched=batched)
            for row, request in enumerate(requests)
        ]
        return responses, batched

    async def drain(self) -> None:
        """Flush every pending group and wait for their futures (tests)."""
        pending = []
        for signature in list(self._groups):
            group = self._groups.get(signature)
            if group is not None:
                pending.extend(group.futures.values())
            self._flush(signature)
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
