"""Micro-batching solve scheduler: coalesce concurrent requests.

The solve service's hot path.  Solving one request costs a fixed
Python/NumPy dispatch overhead that :func:`~repro.heuristics.base.solve_stack`
amortizes across a whole stack — exactly how the experiment engine
amortizes a block's ``R`` repetitions.  Under concurrent load the
batcher recreates that shape from independent requests:

1. :meth:`MicroBatcher.submit` first consults the solve cache, then the
   in-flight table (an identical request already being solved joins its
   group instead of re-solving — *coalescing*); a genuinely new request
   then passes **admission control**: when ``max_pending`` unresolved
   requests are already queued or solving, the request is shed with
   :class:`~repro.exceptions.ServiceOverloadedError` instead of joining
   an unbounded backlog (the HTTP layer answers 429 + ``Retry-After``);
2. an admitted request is appended to the pending group of its
   structural :attr:`~repro.service.requests.SolveRequest.signature`
   (heuristic, task count, platform size — what must match for
   instances to stack);
3. the group is **flushed** when its batching window (a few ms) expires
   or it reaches ``max_batch`` requests, whichever comes first;
4. a flushed group of at least ``batch_min`` requests whose heuristic
   has a batch kernel is solved in one lock-step ``solve_batch`` call
   and scored in one vectorized :class:`~repro.batch.InstanceStack`
   pass; smaller groups (and kernel-less heuristics such as H1) fall
   back to per-instance solves.  **Responses are bit-for-bit identical
   either way** — batching is a scheduling choice, never a semantic
   one.

Solves run off the event loop: on the asyncio thread executor by
default, or — when a :class:`~repro.service.pool.SolveWorkerPool` is
attached — in worker *processes*, so batch solves escape the GIL and
one pathological request cannot stall the loop or other groups.  The
solve itself is the pool-shareable :func:`~repro.service.pool.solve_group`
on both paths, which is what keeps the responses identical.
"""

from __future__ import annotations

import asyncio
import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from ..exceptions import ServiceOverloadedError
from ..heuristics.base import batch_solve_min_repetitions
from ..obs.metrics import MetricsRegistry
from ..obs.trace import (
    TraceContext,
    activate,
    current_context,
    emit_spans,
    span,
    tracing_active,
)
from .cache import SolveCache
from .pool import SolveWorkerPool, solve_group, solve_group_traced
from .requests import SolveRequest

__all__ = ["BatcherStats", "MicroBatcher", "DEFAULT_WINDOW_SECONDS", "DEFAULT_MAX_BATCH"]

#: How long the first request of a group waits for company before the
#: group is solved (the latency cost of batching).
DEFAULT_WINDOW_SECONDS = 0.002
#: A group reaching this depth is flushed immediately.
DEFAULT_MAX_BATCH = 64


class BatcherStats:
    """Counters of one :class:`MicroBatcher` (reset with the process).

    Registry-backed (see :class:`~repro.obs.metrics.MetricsRegistry`):
    the historical attributes read the shared series that
    ``GET /v1/metrics`` exposes, so the two surfaces cannot drift.
    """

    __slots__ = ("_requests", "_flushes", "_solved", "_coalesced", "_shed",
                 "_max_group", "_solve_seconds")

    def __init__(self, registry: MetricsRegistry | None = None):
        registry = registry if registry is not None else MetricsRegistry()
        self._requests = registry.counter(
            "repro_batcher_requests_total", "Requests submitted to the micro-batcher."
        )
        self._flushes = registry.counter(
            "repro_batcher_flushes_total", "Groups flushed to a solve."
        )
        self._solved = registry.counter(
            "repro_batcher_solved_requests_total",
            "Requests solved per execution path.",
            labels=("path",),
        )
        # Pre-register both paths so an idle scrape shows them at 0.
        for path in ("batched", "fallback"):
            self._solved.labels(path=path)
        self._coalesced = registry.counter(
            "repro_batcher_coalesced_total",
            "Requests that joined an identical in-flight solve.",
        )
        self._shed = registry.counter(
            "repro_batcher_shed_total",
            "Requests shed by admission control (solve queue full).",
        )
        self._max_group = registry.gauge(
            "repro_batcher_max_group", "Largest group flushed so far."
        )
        self._solve_seconds = registry.counter(
            "repro_batcher_solve_seconds_total",
            "Wall-clock seconds spent in group solves.",
        )

    def note_request(self) -> None:
        self._requests.inc()

    def note_coalesced(self) -> None:
        self._coalesced.inc()

    def note_shed(self) -> None:
        self._shed.inc()

    def note_flush(self, group_size: int) -> None:
        self._flushes.inc()
        self._max_group.max(group_size)

    def note_solved(self, count: int, batched: bool) -> None:
        self._solved.labels(path="batched" if batched else "fallback").inc(count)

    def add_solve_seconds(self, elapsed: float) -> None:
        self._solve_seconds.inc(elapsed)

    @property
    def requests(self) -> int:
        return self._requests.value

    @property
    def flushes(self) -> int:
        return self._flushes.value

    @property
    def batched_requests(self) -> int:
        return self._solved.labels(path="batched").value

    @property
    def fallback_requests(self) -> int:
        return self._solved.labels(path="fallback").value

    @property
    def coalesced(self) -> int:
        return self._coalesced.value

    @property
    def shed(self) -> int:
        return self._shed.value

    @property
    def max_group(self) -> int:
        return self._max_group.value

    @property
    def solve_seconds(self) -> float:
        return self._solve_seconds.value

    def as_dict(self) -> dict:
        """JSON-ready counters for ``/stats``."""
        return {
            "requests": self.requests,
            "flushes": self.flushes,
            "batched_requests": self.batched_requests,
            "fallback_requests": self.fallback_requests,
            "coalesced": self.coalesced,
            "shed": self.shed,
            "max_group": self.max_group,
            "solve_seconds": round(self.solve_seconds, 6),
        }


@dataclass(slots=True)
class _Group:
    """The pending requests of one structural signature."""

    requests: list[SolveRequest] = field(default_factory=list)
    futures: dict[str, asyncio.Future] = field(default_factory=dict)
    timer: asyncio.TimerHandle | None = None
    #: Trace context of the first submitter (tracing only): the group
    #: span — and everything under it — joins *that* request's trace,
    #: which is how coalesced/batched members are attributed to the one
    #: group solve that served them.
    context: TraceContext | None = None
    #: ``perf_counter`` at group creation; the flushed group's window
    #: wait (tracing only).
    created: float = 0.0


class MicroBatcher:
    """Window-based request coalescing in front of ``solve_stack``.

    Parameters
    ----------
    window:
        Seconds the first request of a group waits before its group is
        flushed (``0`` flushes on the next loop tick — grouping then
        only catches requests submitted in the same tick).
    max_batch:
        Group depth that triggers an immediate flush.
    batch_min:
        Smallest flushed group routed through the lock-step batch
        kernels; ``None`` (default) applies the per-heuristic crossover
        :func:`~repro.heuristics.base.batch_solve_min_repetitions`
        (calibrated by ``scripts/tune_thresholds.py``, falling back to
        the engine-wide
        :data:`~repro.heuristics.base.BATCH_SOLVE_MIN_REPETITIONS`).
    batch:
        ``None`` applies the ``batch_min`` crossover per flush;
        ``True``/``False`` force one path (benchmarks, tests).  Results
        are identical either way.
    cache:
        Optional :class:`~repro.service.cache.SolveCache` consulted
        before grouping and written through after solving.
    pool:
        Optional :class:`~repro.service.pool.SolveWorkerPool`; group
        solves then run in worker processes instead of on the asyncio
        thread executor.  Responses are identical on both executors.
    max_pending:
        Admission-control bound: the maximum number of admitted,
        unresolved requests (queued or mid-solve, coalesced duplicates
        counted once).  A new request beyond it is shed with
        :class:`~repro.exceptions.ServiceOverloadedError`; cache hits
        and coalesced joins are always admitted (they consume no solve
        capacity).  ``None`` disables shedding.
    """

    def __init__(
        self,
        *,
        window: float = DEFAULT_WINDOW_SECONDS,
        max_batch: int = DEFAULT_MAX_BATCH,
        batch_min: int | None = None,
        batch: bool | None = None,
        cache: SolveCache | None = None,
        pool: SolveWorkerPool | None = None,
        max_pending: int | None = None,
        registry: MetricsRegistry | None = None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.window = float(window)
        self.max_batch = int(max_batch)
        self.batch_min = None if batch_min is None else int(batch_min)
        self.batch = batch
        self.cache = cache
        self.pool = pool
        self.max_pending = max_pending
        self.stats = BatcherStats(registry)
        self._groups: dict[tuple, _Group] = {}
        #: request key -> unresolved future, covering both pending groups
        #: and groups whose solve is already running on the executor; an
        #: identical request joins it instead of re-solving.  Its size is
        #: also the admission-control pending count.
        self._inflight: dict[str, asyncio.Future] = {}
        #: Strong references to the in-flight solver tasks.  The event
        #: loop only keeps weak references to tasks, so without this set
        #: a flushed group's task could be garbage-collected mid-flight,
        #: silently dropping the whole group (CPython asyncio pitfall).
        self._tasks: set[asyncio.Task] = set()

    async def submit(self, request: SolveRequest) -> dict:
        """Resolve one request: cache, coalesce, or admit and await.

        Returns the JSON-ready response body with a ``"cached"`` field
        (``False``, ``"memory"`` or ``"store"``).  Raises
        :class:`~repro.exceptions.ServiceOverloadedError` when the
        request would exceed ``max_pending`` (nothing was enqueued).
        """
        self.stats.note_request()
        if self.cache is not None:
            with span("cache.lookup", key=request.key) as lookup_span:
                response, tier = await self._cache_get(request.key)
                lookup_span.set(tier=tier or "miss")
            if response is not None:
                return dict(response, cached=tier)
        inflight = self._inflight.get(request.key)
        if inflight is not None:
            # Identical request already pending or mid-solve: one solve
            # serves both.
            self.stats.note_coalesced()
            with span("batcher.wait", key=request.key, coalesced=True):
                return dict(await asyncio.shield(inflight), cached=False)
        if self.max_pending is not None and len(self._inflight) >= self.max_pending:
            self.stats.note_shed()
            raise ServiceOverloadedError(
                f"solve queue is full ({self.max_pending} pending request(s)); "
                "retry later"
            )
        future = self._enqueue(request)
        with span("batcher.wait", key=request.key, coalesced=False):
            return dict(await asyncio.shield(future), cached=False)

    async def _cache_get(self, key: str) -> tuple[dict | None, str | None]:
        """Cache lookup; the persistent tier's file I/O stays off the loop.

        After the executor hop the in-flight table may have gained this
        key — :meth:`submit` re-checks it before enqueueing, so a miss
        here can still coalesce instead of re-solving.
        """
        if self.cache.store is None:
            return self.cache.get(key)
        return await asyncio.get_running_loop().run_in_executor(
            None, self.cache.get, key
        )

    def _enqueue(self, request: SolveRequest) -> asyncio.Future:
        loop = asyncio.get_running_loop()
        group = self._groups.get(request.signature)
        if group is None:
            group = _Group()
            if tracing_active():
                # The group's trace is the first submitter's: later
                # members and coalesced joiners are attributed through
                # the group span's request_keys attribute.
                group.context = current_context()
                group.created = time.perf_counter()
            self._groups[request.signature] = group
            group.timer = loop.call_later(
                self.window, self._flush, request.signature
            )
        future = loop.create_future()
        group.requests.append(request)
        group.futures[request.key] = future
        self._inflight[request.key] = future
        if len(group.requests) >= self.max_batch:
            self._flush(request.signature)
        return future

    def _flush(self, signature: tuple) -> None:
        """Detach a group and hand it to the solver task."""
        group = self._groups.pop(signature, None)
        if group is None:  # already flushed by the size trigger
            return
        if group.timer is not None:
            group.timer.cancel()
        task = asyncio.get_running_loop().create_task(self._solve_group(group))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    def _use_batch(self, requests: Sequence[SolveRequest]) -> bool:
        """Whether a flushed group takes the lock-step kernel path.

        The crossover depth is the group heuristic's calibrated one
        unless the constructor pinned an explicit ``batch_min``.
        """
        if self.batch is not None:
            return self.batch
        if self.batch_min is not None:
            return len(requests) >= self.batch_min
        return len(requests) >= batch_solve_min_repetitions(requests[0].heuristic)

    async def _run_solve(
        self, loop: asyncio.AbstractEventLoop, group: _Group
    ) -> tuple[list[dict], bool]:
        """One flushed group's solve on the right executor.

        With tracing active both executors run the traced twin
        (:func:`~repro.service.pool.solve_group_traced`) — the current
        context crosses the thread/process boundary in the payload and
        the worker-side spans come back with the result.
        """
        use_batch = self._use_batch(group.requests)
        if tracing_active():
            with span("pool.roundtrip", pooled=self.pool is not None):
                responses, batched, worker_spans = await loop.run_in_executor(
                    self.pool.executor if self.pool is not None else None,
                    solve_group_traced,
                    tuple(group.requests),
                    use_batch,
                    current_context(),
                )
            emit_spans(worker_spans)
            return responses, batched
        if self.pool is not None:
            return await loop.run_in_executor(
                self.pool.executor, solve_group, tuple(group.requests), use_batch
            )
        return await loop.run_in_executor(None, self._solve, tuple(group.requests))

    async def _solve_group(self, group: _Group) -> None:
        self.stats.note_flush(len(group.requests))
        loop = asyncio.get_running_loop()
        start = time.perf_counter()
        with activate(group.context), span(
            "batcher.group",
            requests=len(group.requests),
            heuristic=group.requests[0].heuristic,
            request_keys=",".join(group.futures),
            window_wait_ms=round((start - group.created) * 1000.0, 3)
            if group.created
            else 0.0,
        ) as group_span:
            try:
                responses, batched = await self._run_solve(loop, group)
            except BaseException as exc:  # noqa: BLE001 - fan the failure out
                group_span.set(failed=type(exc).__name__)
                for key, future in group.futures.items():
                    self._release(key, future)
                    if future.done():
                        # A waiter cancelled by its disconnecting client:
                        # nothing to deliver, and set_exception would raise.
                        continue
                    future.set_exception(exc)
                    # Mark the exception retrieved immediately: a waiter that
                    # disconnected *after* enqueueing (shielded future, not
                    # cancelled) never awaits it, and every such future would
                    # otherwise log "exception was never retrieved" at GC.
                    # Waiters that are still listening re-raise on await
                    # regardless.
                    future.exception()
                return
            finally:
                self.stats.add_solve_seconds(time.perf_counter() - start)
            self.stats.note_solved(len(group.requests), batched)
            group_span.set(batched=batched)
            if self.cache is not None:
                # Before resolving the futures, so a submitter that saw its
                # response can rely on the cache already holding it; the
                # persistent tier's appends stay off the loop.
                pairs = [
                    (request.key, response)
                    for request, response in zip(group.requests, responses)
                ]
                with span("cache.write", responses=len(pairs)):
                    if self.cache.store is None:
                        self._persist(pairs)
                    else:
                        await loop.run_in_executor(None, self._persist, pairs)
            for request, response in zip(group.requests, responses):
                future = group.futures[request.key]
                self._release(request.key, future)
                if not future.done():
                    future.set_result(response)

    def _release(self, key: str, future: asyncio.Future) -> None:
        """Drop an in-flight entry (only if it is still *this* future)."""
        if self._inflight.get(key) is future:
            del self._inflight[key]

    def _persist(self, pairs: list[tuple[str, dict]]) -> None:
        for key, response in pairs:
            self.cache.put(key, response)

    def _solve(
        self, requests: tuple[SolveRequest, ...]
    ) -> tuple[list[dict], bool]:
        """In-process solve of one flushed group (worker thread).

        Thin wrapper over the pool-shareable
        :func:`~repro.service.pool.solve_group` so tests can gate or
        fake the solve by patching one attribute.
        """
        return solve_group(requests, self._use_batch(requests))

    async def aclose(self) -> None:
        """Flush every pending group and wait for all in-flight solves.

        The shutdown path (:meth:`SolveService.stop
        <repro.service.server.SolveService.stop>` calls this): groups
        still waiting out their window are flushed immediately, and the
        coroutine returns only once every solver task has finished —
        in-flight work is drained, never dropped.  Solver failures were
        already fanned out to the request futures, so they are not
        re-raised here.
        """
        for signature in list(self._groups):
            self._flush(signature)
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    async def drain(self) -> None:
        """Flush every pending group and wait for their futures (tests)."""
        pending = []
        for signature in list(self._groups):
            group = self._groups.get(signature)
            if group is not None:
                pending.extend(group.futures.values())
            self._flush(signature)
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
