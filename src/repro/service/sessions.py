"""Long-lived replanning sessions hosted in the service's event loop.

A *session* wraps one :class:`~repro.live.replanner.Replanner` behind
the ``/v1/session`` endpoints: create it with a solve-request payload
(the instance is the same content-addressed draw ``/v1/solve`` would
make), feed it platform deltas, read its state, close it.  The
:class:`SessionManager` owns the id → session table and the idle-expiry
sweep; the HTTP handlers in :mod:`repro.service.server` call into it
from the event loop and off-load the CPU-bound replans to the default
executor.

Concurrency model
-----------------
Sessions are mutable state in an async server, so each one carries an
``asyncio.Lock``: concurrent events on the same session serialize (the
replanner sees one deterministic, time-ordered stream), while events on
*different* sessions overlap freely.  The expiry sweep skips sessions
whose lock is held — a session cannot expire mid-event, only idle ones
go.
"""

from __future__ import annotations

import asyncio
import time
import uuid

from ..exceptions import ExperimentError, ServiceOverloadedError
from ..live.replanner import Replanner
from ..obs.metrics import LatencyReservoir, MetricsRegistry
from .requests import SessionRequest

__all__ = ["LiveSession", "SessionManager"]

#: Default idle expiry (seconds since the last touch).
DEFAULT_SESSION_TTL = 300.0
#: Default bound on concurrently open sessions (each holds an instance,
#: a plan cache and an evaluator).
DEFAULT_MAX_SESSIONS = 64


class LiveSession:
    """One open replanning session."""

    __slots__ = ("id", "spec", "replanner", "ttl", "lock", "created", "last_used")

    def __init__(self, spec: SessionRequest, replanner: Replanner, ttl: float):
        self.id = "s" + uuid.uuid4().hex[:12]
        self.spec = spec
        self.replanner = replanner
        self.ttl = float(ttl)
        self.lock = asyncio.Lock()
        self.created = time.monotonic()
        self.last_used = self.created

    def touch(self) -> None:
        """Reset the idle-expiry clock."""
        self.last_used = time.monotonic()

    def created_payload(self) -> dict:
        """The ``POST /v1/session`` response body (initial solve inside)."""
        return {
            "session": self.id,
            "ttl_seconds": self.ttl,
            **self.replanner.initial.to_dict(),
        }

    def state_payload(self) -> dict:
        """The ``GET /v1/session/{id}`` response body."""
        replanner = self.replanner
        request = self.spec.request
        mapping = replanner.mapping
        return {
            "session": self.id,
            "heuristic": replanner.heuristic,
            "tasks": request.num_tasks,
            "machines": request.scenario.num_machines,
            "seed": request.seed,
            "repetition": request.repetition,
            "ttl_seconds": self.ttl,
            "idle_seconds": round(time.monotonic() - self.last_used, 3),
            "events": len(replanner.records),
            "clock": replanner.clock,
            "up": [int(u) for u in replanner.up.nonzero()[0]],
            "up_count": replanner.up_count,
            "feasible": replanner.feasible,
            "mapping": None if mapping is None else [int(u) for u in mapping],
            "period": replanner.period,
            "availability": replanner.availability,
            "replans": replanner.counters.as_dict(),
        }

    def closed_payload(self) -> dict:
        """The ``DELETE /v1/session/{id}`` response body (run summary)."""
        replanner = self.replanner
        return {
            "session": self.id,
            "closed": True,
            "events": len(replanner.records),
            "availability": replanner.availability,
            "replans": replanner.counters.as_dict(),
        }


class SessionManager:
    """Id → session table with counters and idle expiry.

    All methods run on the event loop; only the replan itself (the
    caller's responsibility, under the session's lock) leaves it.
    """

    #: The replanner tiers broken out in stats and the metrics registry.
    REPLAN_TIERS = ("cache", "warm", "cold", "infeasible")

    def __init__(
        self,
        *,
        ttl: float = DEFAULT_SESSION_TTL,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        registry: MetricsRegistry | None = None,
    ):
        if ttl <= 0:
            raise ExperimentError(f"session ttl must be > 0, got {ttl}")
        self.ttl = float(ttl)
        self.max_sessions = int(max_sessions)
        self._sessions: dict[str, LiveSession] = {}
        # Registry-backed counters (shared with GET /v1/metrics when the
        # service passes its registry in); the historical int attributes
        # below read from these series.
        registry = registry if registry is not None else MetricsRegistry()
        self._lifecycle = registry.counter(
            "repro_sessions_lifecycle_total",
            "Session lifecycle transitions.",
            labels=("event",),
        )
        self._events = registry.counter(
            "repro_session_events_total", "Platform events applied to sessions."
        )
        self._replans = registry.counter(
            "repro_replans_total",
            "Replans per tier of the live replanner cascade.",
            labels=("tier",),
        )
        # Pre-register every label child so the first /v1/metrics scrape
        # exposes the full series at 0 instead of omitting idle ones.
        for event in ("created", "closed", "expired"):
            self._lifecycle.labels(event=event)
        for tier in self.REPLAN_TIERS:
            self._replans.labels(tier=tier)
        self._served = registry.counter(
            "repro_session_events_served_total",
            "Events served by the current plan (no replan needed).",
        )
        self._missed = registry.counter(
            "repro_session_events_missed_total",
            "Request probes missed while the platform was infeasible.",
        )
        self._replan_latency = registry.histogram(
            "repro_replan_seconds", "Latency of one replan (any tier)."
        )
        self.reservoir = LatencyReservoir()
        # Availability mass of departed sessions, so the aggregate in
        # /v1/stats keeps accounting for closed/expired timelines.
        self._gone_available = 0.0
        self._gone_unavailable = 0.0

    @property
    def created(self) -> int:
        return self._lifecycle.labels(event="created").value

    @property
    def closed(self) -> int:
        return self._lifecycle.labels(event="closed").value

    @property
    def expired(self) -> int:
        return self._lifecycle.labels(event="expired").value

    @property
    def events(self) -> int:
        return self._events.value

    @property
    def replans(self) -> dict:
        """Replan counts per tier (a fresh dict; mutate via the registry)."""
        return {
            tier: self._replans.labels(tier=tier).value for tier in self.REPLAN_TIERS
        }

    @property
    def served(self) -> int:
        return self._served.value

    @property
    def missed(self) -> int:
        return self._missed.value

    # -- table -------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._sessions

    def add(self, spec: SessionRequest, replanner: Replanner) -> LiveSession:
        """Register a freshly created session (initial solve already done)."""
        if len(self._sessions) >= self.max_sessions:
            raise ServiceOverloadedError(
                f"session table is full ({self.max_sessions} open); "
                "close or let idle sessions expire",
                retry_after_seconds=self.ttl,
            )
        session = LiveSession(
            spec, replanner, self.ttl if spec.ttl_seconds is None else spec.ttl_seconds
        )
        self._sessions[session.id] = session
        self._lifecycle.labels(event="created").inc()
        self.note_record(replanner.initial)
        return session

    def get(self, session_id: str) -> LiveSession:
        """The open session with this id, or an :class:`ExperimentError`."""
        session = self._sessions.get(session_id)
        if session is None:
            raise ExperimentError(
                f"no such session: {session_id!r} (closed, expired or never created)"
            )
        return session

    def close(self, session_id: str) -> LiveSession:
        """Remove and return a session (``DELETE`` handler)."""
        session = self.get(session_id)
        self._drop(session)
        self._lifecycle.labels(event="closed").inc()
        return session

    def _drop(self, session: LiveSession) -> None:
        self._sessions.pop(session.id, None)
        self._gone_available += session.replanner.available_seconds
        self._gone_unavailable += session.replanner.unavailable_seconds

    # -- accounting ----------------------------------------------------------------
    def note_record(self, record) -> None:
        """Fold one applied event into the aggregate counters."""
        self._events.inc()
        if record.via in self.REPLAN_TIERS:
            self._replans.labels(tier=record.via).inc()
            self._replan_latency.observe(record.latency_seconds)
            self.reservoir.add(record.latency_seconds)
        elif record.via == "serve":
            self._served.inc()
        elif record.via == "miss":
            self._missed.inc()

    # -- expiry --------------------------------------------------------------------
    def sweep(self, now: float | None = None) -> int:
        """Expire idle sessions; returns how many went.

        A held lock means an event is mid-flight — the session is busy,
        not idle, and is skipped no matter how old its last touch is.
        """
        now = time.monotonic() if now is None else now
        expired = [
            session
            for session in self._sessions.values()
            if not session.lock.locked() and now - session.last_used > session.ttl
        ]
        for session in expired:
            self._drop(session)
            self._lifecycle.labels(event="expired").inc()
        return len(expired)

    async def run_sweeper(self, interval: float | None = None) -> None:
        """Periodic :meth:`sweep` loop (cancelled by the server's stop)."""
        interval = (
            max(0.05, min(self.ttl / 4.0, 5.0)) if interval is None else interval
        )
        while True:
            await asyncio.sleep(interval)
            self.sweep()

    # -- stats ---------------------------------------------------------------------
    def stats_payload(self) -> dict:
        """The ``sessions`` section of ``/v1/stats``."""
        available = self._gone_available
        unavailable = self._gone_unavailable
        for session in self._sessions.values():
            available += session.replanner.available_seconds
            unavailable += session.replanner.unavailable_seconds
        total = available + unavailable
        return {
            "active": len(self._sessions),
            "created": self.created,
            "closed": self.closed,
            "expired": self.expired,
            "events": self.events,
            "replans": dict(self.replans),
            "served": self.served,
            "missed": self.missed,
            "availability": 1.0 if total == 0.0 else available / total,
            "replan_p50_ms": round(self.reservoir.percentile(0.50) * 1000.0, 3),
            "replan_p95_ms": round(self.reservoir.percentile(0.95) * 1000.0, 3),
            "replan_p99_ms": round(self.reservoir.percentile(0.99) * 1000.0, 3),
        }
