"""Multi-process solve-worker pool behind the micro-batcher.

The micro-batcher's solves are pure CPU work — NumPy kernels plus
Python dispatch — so on the default asyncio thread executor they run
GIL-bound: one pathological request (a huge instance, a slow fallback
loop) stalls every other group, and total throughput is capped at one
core no matter how many requests arrive.  :class:`SolveWorkerPool`
moves the solve calls onto a :class:`concurrent.futures.ProcessPoolExecutor`
so groups of different signatures solve truly in parallel and the event
loop only ever waits, never computes.

The seam is deliberately narrow: :func:`solve_group` is the *entire*
unit of work shipped to a worker — a tuple of
:class:`~repro.service.requests.SolveRequest` (plain frozen dataclasses,
cheap to pickle) in, a list of JSON-ready response dicts out.  Workers
hold no service state, so responses are **bit-for-bit identical** to
in-process solves (the equivalence tests run the same groups through
both executors), and a crashed worker surfaces as an exception on the
group's futures instead of a wedged loop.

``--workers 0`` (the default) skips the pool entirely and keeps the
PR 5 in-process thread-executor behaviour.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, wait

from ..batch import InstanceStack
from ..heuristics.base import solve_stack, supports_batch
from ..obs import trace
from ..obs.instrument import timed_kernels
from .requests import SolveRequest, build_response

__all__ = ["solve_group", "solve_group_traced", "SolveWorkerPool"]


def solve_group(
    requests: tuple[SolveRequest, ...], use_batch: bool
) -> tuple[list[dict], bool]:
    """Solve one flushed group; ``(responses, batched)``.

    Pure — touches no batcher or service state — which is what lets the
    same function run on the in-process thread executor and inside pool
    workers interchangeably.  Group members share a batching signature,
    so their instances stack; the lock-step kernel runs when the caller
    decided the group clears the crossover (``use_batch``) and the
    heuristic supports it, otherwise each row solves per instance.
    """
    heuristic = requests[0].resolve_heuristic()
    instances = [request.sample() for request in requests]
    batched = use_batch and supports_batch(heuristic)
    assignments = solve_stack(
        heuristic,
        instances,
        lambda row: requests[row].rng() if heuristic.randomized else None,
        batch=use_batch,
    )
    stack = InstanceStack.from_instances(instances, require_uniform_types=False)
    periods = stack.periods(assignments)
    responses = [
        build_response(request, assignments[row], periods[row], batched=batched)
        for row, request in enumerate(requests)
    ]
    return responses, batched


def solve_group_traced(
    requests: tuple[SolveRequest, ...],
    use_batch: bool,
    context: trace.TraceContext | None,
) -> tuple[list[dict], bool, list[dict]]:
    """:func:`solve_group` plus span capture; ``(responses, batched, spans)``.

    The traced twin the batcher ships when tracing is on: the caller's
    :class:`~repro.obs.trace.TraceContext` rides along in the picklable
    payload, the solve runs under a worker-local capture buffer (a
    worker process must not append to the parent's trace file), and the
    buffered spans — the worker-side solve span plus aggregated
    per-kernel timings — come back with the result for the parent to
    emit.  The solve itself is byte-for-byte :func:`solve_group`, so
    responses stay identical to the untraced path.
    """
    with trace.capture() as spans:
        with trace.activate(context):
            with trace.span(
                "pool.worker_solve",
                pid=os.getpid(),
                requests=len(requests),
                heuristic=requests[0].heuristic,
            ) as solve_span:
                with timed_kernels():
                    responses, batched = solve_group(requests, use_batch)
                solve_span.set(batched=batched)
    return responses, batched, spans


def _worker_ready() -> int:
    """Warm-up probe; also what :meth:`SolveWorkerPool.worker_pids` collects."""
    return os.getpid()


class SolveWorkerPool:
    """A warmed ``ProcessPoolExecutor`` sized for the solve service.

    Parameters
    ----------
    workers:
        Number of worker processes (>= 1; ``0`` is the caller's cue to
        not build a pool at all).

    The pool is warmed eagerly at construction — one probe per worker —
    so every process is forked/spawned *before* the service starts its
    event loop and helper threads, and the first real request never pays
    worker start-up latency.
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError(f"a worker pool needs >= 1 workers, got {workers}")
        self.workers = int(workers)
        self.executor = ProcessPoolExecutor(max_workers=self.workers)
        # Each submit spawns a new worker while the pool is below
        # max_workers, so `workers` probes start every process.
        wait([self.executor.submit(_worker_ready) for _ in range(self.workers)])

    def worker_pids(self) -> set[int]:
        """PIDs of the spawned worker processes (diagnostics, tests).

        Read from the executor's process table rather than by probing —
        a probe round is racy (one idle worker can answer every probe).
        """
        return set(self.executor._processes)

    def shutdown(self) -> None:
        """Stop the workers; queued work is cancelled, running work finishes."""
        self.executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "SolveWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
