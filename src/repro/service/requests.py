"""Solve-request normalisation, hashing and the direct reference path.

A solve request names a random problem instance and a heuristic to run
on it::

    {
      "heuristic": "H4w",
      "application": {"tasks": 10, "types": 3},
      "platform": {"machines": 5},
      "options": {"seed": 0, "repetition": 0}
    }

``platform`` optionally carries ``w_range`` / ``f_range`` /
``task_dependent_failures`` overrides (defaulting to the paper's
ranges); ``options`` the root seed and repetition index of the draw.
:func:`normalize_request` validates the payload into a
:class:`SolveRequest` whose instance is *exactly* the one the
experiment layer would sample: the request's fields assemble a
:class:`~repro.generators.scenarios.ScenarioConfig` and the instance is
drawn through :func:`~repro.generators.scenarios.sample_instance` with
the same stream labels — which is also what makes requests **content
addressable**.  :attr:`SolveRequest.key` digests the scenario's
:meth:`~repro.generators.scenarios.ScenarioConfig.stable_hash` together
with the sweep value, heuristic, seed and repetition, so two requests
share a key iff they are guaranteed the same response; the solve cache
and the micro-batcher's coalescing both key on it.

:func:`direct_response` is the reference path: one request, solved and
scored per instance with no batching and no cache.  The micro-batched
service is required (and tested) to be bit-for-bit identical to it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..core.instance import ProblemInstance
from ..core.period import evaluate
from ..core.mapping import Mapping
from ..exceptions import ExperimentError, ReproError
from ..generators.platforms import PAPER_F_RANGE, PAPER_W_RANGE
from ..generators.scenarios import ScenarioConfig, sample_instance
from ..heuristics import get_heuristic
from ..heuristics.base import Heuristic, solve_one
from ..obs.trace import span
from ..simulation.rng import RandomStreamFactory

__all__ = [
    "SERVICE_SCENARIO_NAME",
    "SessionRequest",
    "SolveRequest",
    "normalize_event",
    "normalize_request",
    "normalize_session_request",
    "build_response",
    "direct_response",
]

#: ``ScenarioConfig.name`` under which service instances are drawn; part
#: of the instance-generating hash, so service draws never collide with
#: figure draws in any shared cache.
SERVICE_SCENARIO_NAME = "service"


def _expect_mapping(payload: dict, field: str) -> dict:
    value = payload.get(field)
    if value is None:
        return {}
    if not isinstance(value, dict):
        raise ExperimentError(f"request field {field!r} must be an object")
    return dict(value)


def _take_int(section: dict, owner: str, field: str, default=None) -> int:
    value = section.pop(field, default)
    if value is default and default is None:
        raise ExperimentError(f"request is missing {owner}.{field}")
    if isinstance(value, bool) or not isinstance(value, int):
        raise ExperimentError(f"{owner}.{field} must be an integer, got {value!r}")
    return int(value)


def _take_range(section: dict, owner: str, field: str, default) -> tuple[float, float]:
    value = section.pop(field, None)
    if value is None:
        return default
    try:
        low, high = (float(v) for v in value)
    except (TypeError, ValueError) as exc:
        raise ExperimentError(f"{owner}.{field} must be a [low, high] pair") from exc
    return (low, high)


def _reject_unknown(section: dict, owner: str) -> None:
    if section:
        raise ExperimentError(
            f"unknown {owner} field(s): {sorted(section)}"
        )


@dataclass(frozen=True)
class SolveRequest:
    """One normalized solve request (hashable, batchable, cacheable).

    Attributes
    ----------
    heuristic:
        The registered heuristic's canonical name (``"h4w"`` normalizes
        to ``"H4w"`` — case differences must not split cache entries or
        RNG streams).
    scenario:
        The instance-generating scenario assembled from the request's
        ``application`` / ``platform`` sections.
    num_tasks:
        The sweep value the instance is drawn at.
    seed, repetition:
        Root seed and repetition index of the draw.
    deadline_ms:
        Optional per-request deadline (milliseconds from arrival).  A
        scheduling knob only — it never changes the response content, so
        it is deliberately **excluded from** :attr:`key` (a request
        answered late and re-asked with a longer deadline must hit the
        cache of the first solve).
    """

    heuristic: str
    scenario: ScenarioConfig
    num_tasks: int
    seed: int
    repetition: int
    deadline_ms: float | None = None

    @cached_property
    def key(self) -> str:
        """Content hash identifying the response this request must get.

        Extends the scenario's instance-generating
        :meth:`~repro.generators.scenarios.ScenarioConfig.stable_hash`
        (platform size, type count, draw ranges) with everything else
        the response depends on: the sweep value, the heuristic, the
        seed and the repetition.  Read several times per request on the
        serving hot path, so it is digested once (``cached_property`` —
        which is why this dataclass carries no ``__slots__``).
        """
        payload = "|".join(
            (
                self.scenario.stable_hash(),
                str(self.num_tasks),
                self.heuristic,
                str(self.seed),
                str(self.repetition),
            )
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    @property
    def signature(self) -> tuple[str, int, int]:
        """Structural batching signature: ``(heuristic, n, m)``.

        Requests sharing a signature draw instances with the same
        precedence chain and platform size, so their solves stack into
        one :class:`~repro.batch.InstanceStack` and (for batchable
        heuristics) one lock-step ``solve_batch`` call.  Seeds, type
        vectors and draw ranges may differ within a group — the batch
        state carries them per row.
        """
        return (self.heuristic, self.num_tasks, self.scenario.num_machines)

    def resolve_heuristic(self) -> Heuristic:
        """Instantiate the request's heuristic."""
        return get_heuristic(self.heuristic)

    def sample(self) -> ProblemInstance:
        """Draw the request's instance (identical across processes)."""
        return sample_instance(
            self.scenario,
            self.num_tasks,
            self.repetition,
            RandomStreamFactory(self.seed),
        )

    def rng(self) -> np.random.Generator:
        """The solve stream of a randomized heuristic (H1).

        Same derivation as the experiment engine's per-cell runner:
        label ``heuristic/<name>/<sweep value>``, indexed by repetition.
        """
        return RandomStreamFactory(self.seed).stream(
            f"heuristic/{self.heuristic}/{self.num_tasks}", self.repetition
        )


def normalize_request(payload: dict) -> SolveRequest:
    """Validate a raw request payload into a :class:`SolveRequest`.

    Unknown fields are rejected (a typo'd option silently falling back
    to a default would be served — and cached — under the wrong key).
    """
    if not isinstance(payload, dict):
        raise ExperimentError("solve request must be a JSON object")
    payload = dict(payload)
    name = payload.pop("heuristic", None)
    if not isinstance(name, str) or not name:
        raise ExperimentError("request is missing the 'heuristic' name")
    try:
        heuristic = get_heuristic(name)
    except ReproError as exc:
        raise ExperimentError(str(exc)) from exc

    application = _expect_mapping(payload, "application")
    platform = _expect_mapping(payload, "platform")
    options = _expect_mapping(payload, "options")
    payload.pop("application", None)
    payload.pop("platform", None)
    payload.pop("options", None)
    _reject_unknown(payload, "request")

    num_tasks = _take_int(application, "application", "tasks")
    num_types = _take_int(application, "application", "types")
    _reject_unknown(application, "application")

    num_machines = _take_int(platform, "platform", "machines")
    w_range = _take_range(platform, "platform", "w_range", PAPER_W_RANGE)
    f_range = _take_range(platform, "platform", "f_range", PAPER_F_RANGE)
    task_dependent = bool(platform.pop("task_dependent_failures", False))
    _reject_unknown(platform, "platform")

    seed = _take_int(options, "options", "seed", 0)
    repetition = _take_int(options, "options", "repetition", 0)
    deadline_ms = options.pop("deadline_ms", None)
    if deadline_ms is not None:
        if (
            isinstance(deadline_ms, bool)
            or not isinstance(deadline_ms, (int, float))
            or not deadline_ms > 0
        ):
            raise ExperimentError(
                f"options.deadline_ms must be a positive number, got {deadline_ms!r}"
            )
        deadline_ms = float(deadline_ms)
    _reject_unknown(options, "options")

    if num_tasks < 1 or num_types < 1 or num_machines < 1:
        raise ExperimentError("tasks, types and machines must all be >= 1")
    if num_types > num_tasks:
        raise ExperimentError(
            f"cannot have more types ({num_types}) than tasks ({num_tasks})"
        )
    if num_types > num_machines:
        raise ExperimentError(
            f"no specialized mapping exists with more types ({num_types}) than "
            f"machines ({num_machines})"
        )
    if seed < 0:
        # np.random.SeedSequence rejects negative entropy at solve time —
        # catching it here keeps a bad request from poisoning the batch
        # group it would have joined.
        raise ExperimentError(f"options.seed must be >= 0, got {seed}")
    if repetition < 0:
        raise ExperimentError(f"options.repetition must be >= 0, got {repetition}")

    scenario = ScenarioConfig(
        name=SERVICE_SCENARIO_NAME,
        num_machines=num_machines,
        num_types=num_types,
        sweep="tasks",
        sweep_values=(num_tasks,),
        repetitions=1,
        w_range=w_range,
        f_range=f_range,
        task_dependent_failures=task_dependent,
    )
    return SolveRequest(
        heuristic=heuristic.name,
        scenario=scenario,
        num_tasks=num_tasks,
        seed=seed,
        repetition=repetition,
        deadline_ms=deadline_ms,
    )


@dataclass(frozen=True)
class SessionRequest:
    """One normalized ``POST /v1/session`` payload.

    ``request`` is the underlying content-addressed solve request — the
    session replans exactly the instance ``POST /v1/solve`` would draw
    for the same fields.  ``ttl_seconds`` overrides the service's idle
    expiry for this session (``None`` = server default).
    """

    request: SolveRequest
    ttl_seconds: float | None = None


def normalize_session_request(payload: dict) -> SessionRequest:
    """Validate a session-creation payload.

    The schema is the solve-request schema with two session-specific
    twists: ``options.ttl_seconds`` (idle expiry override) is accepted,
    while ``options.deadline_ms`` (a per-solve scheduling knob) and
    randomized heuristics (H1 — a live session must be replayable) are
    rejected.  Unknown keys are rejected at every level, listing the
    offending names, exactly like :func:`normalize_request`.
    """
    if not isinstance(payload, dict):
        raise ExperimentError("session request must be a JSON object")
    payload = dict(payload)
    options = _expect_mapping(payload, "options")
    ttl_seconds = options.pop("ttl_seconds", None)
    if ttl_seconds is not None:
        if (
            isinstance(ttl_seconds, bool)
            or not isinstance(ttl_seconds, (int, float))
            or not ttl_seconds > 0
        ):
            raise ExperimentError(
                f"options.ttl_seconds must be a positive number, got {ttl_seconds!r}"
            )
        ttl_seconds = float(ttl_seconds)
    if "deadline_ms" in options:
        raise ExperimentError(
            "options.deadline_ms does not apply to sessions (deadlines are "
            "per solve request)"
        )
    payload["options"] = options
    request = normalize_request(payload)
    if request.resolve_heuristic().randomized:
        raise ExperimentError(
            f"live sessions require a deterministic heuristic; "
            f"{request.heuristic} is randomized"
        )
    return SessionRequest(request=request, ttl_seconds=ttl_seconds)


def normalize_event(payload: dict) -> tuple[str, int | None, float]:
    """Validate a session event payload into ``(kind, machine, time)``.

    ``fail`` / ``recover`` events need a ``machine`` index; ``request``
    events must not carry one.  ``time`` is the event's timeline
    timestamp (sessions require non-decreasing times — availability is
    integrated from these, never from the wall clock).  Unknown keys are
    rejected with a listing, like every other payload.
    """
    if not isinstance(payload, dict):
        raise ExperimentError("session event must be a JSON object")
    payload = dict(payload)
    kind = payload.pop("kind", None)
    if kind not in ("fail", "recover", "request"):
        raise ExperimentError(
            f"event.kind must be 'fail', 'recover' or 'request', got {kind!r}"
        )
    event_time = payload.pop("time", None)
    if (
        isinstance(event_time, bool)
        or not isinstance(event_time, (int, float))
        or not event_time >= 0
    ):
        raise ExperimentError(
            f"event.time must be a number >= 0, got {event_time!r}"
        )
    machine = payload.pop("machine", None)
    if kind == "request":
        if machine is not None:
            raise ExperimentError("'request' events take no machine index")
    else:
        if isinstance(machine, bool) or not isinstance(machine, int) or machine < 0:
            raise ExperimentError(
                f"event.machine must be an integer >= 0, got {machine!r}"
            )
    _reject_unknown(payload, "event")
    return kind, machine, float(event_time)


def build_response(
    request: SolveRequest,
    assignment: np.ndarray,
    period: float,
    *,
    batched: bool,
) -> dict:
    """Assemble the JSON-ready response body of one solved request."""
    return {
        "key": request.key,
        "heuristic": request.heuristic,
        "tasks": request.num_tasks,
        "machines": request.scenario.num_machines,
        "seed": request.seed,
        "repetition": request.repetition,
        "assignment": [int(machine) for machine in assignment],
        "period": float(period),
        "throughput": 1.0 / float(period),
        "batched": bool(batched),
    }


def direct_response(request: SolveRequest) -> dict:
    """Solve one request per instance — the unbatched, uncached reference.

    The micro-batched service path must produce bit-for-bit this
    response body (modulo the ``batched`` marker); the equivalence tests
    and the CI service smoke both compare against it.
    """
    with span("solve.direct", key=request.key, heuristic=request.heuristic):
        instance = request.sample()
        heuristic = request.resolve_heuristic()
        rng = request.rng() if heuristic.randomized else None
        assignment = solve_one(heuristic, instance, rng)
        evaluation = evaluate(instance, Mapping(assignment, instance.num_machines))
        return build_response(
            request, assignment, evaluation.period, batched=False
        )
