"""HTTP clients for the solve service.

:class:`ServiceClient` is the supported interface: one keep-alive
connection reused across calls (a context manager), automatic backoff
and retry on HTTP 429 honouring the server's ``Retry-After`` hint, and
first-class :meth:`~ServiceClient.solve` / :meth:`~ServiceClient.session`
methods against the versioned ``/v1`` API.  Server errors surface as
:class:`~repro.exceptions.ExperimentError` carrying the message from the
``{"error": {"code", "message"}}`` envelope; a 429 that exhausts the
retry budget raises :class:`~repro.exceptions.ServiceOverloadedError`
with the ``Retry-After`` hint intact.

The module-level helpers (:func:`get_json`, :func:`post_json`,
:func:`solve_remote`, :func:`service_stats`) predate the class and are
kept as deprecated one-shot wrappers: they still open a fresh connection
per call, still talk to the unversioned legacy paths, and — deliberately
— do *not* retry on 429, because existing callers (the CI smoke's
load-shedding phase among them) rely on seeing the
:class:`~repro.exceptions.ServiceOverloadedError` themselves.
"""

from __future__ import annotations

import json
import socket
import urllib.error
import urllib.parse
import urllib.request
import warnings
from http.client import HTTPConnection, HTTPException
from time import sleep

from ..exceptions import ExperimentError, ServiceOverloadedError

__all__ = [
    "ServiceClient",
    "ServiceSession",
    "get_json",
    "post_json",
    "solve_remote",
    "service_stats",
]

#: Default per-call timeout (seconds); a queued solve answers within the
#: batching window plus one solve, which is far below this.
DEFAULT_TIMEOUT = 30.0
#: Default number of automatic retries after a 429 before giving up.
DEFAULT_RETRIES = 4
#: Cap on how long one 429 backoff sleeps, whatever ``Retry-After`` says.
MAX_RETRY_SLEEP = 5.0


def _decode(raw: bytes, url: str) -> dict:
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ExperimentError(f"{url} returned a non-JSON body: {exc}") from exc
    if not isinstance(payload, dict):
        raise ExperimentError(f"{url} returned {type(payload).__name__}, expected object")
    return payload


def _error_message(payload: dict, url: str, status: int) -> str:
    """Message out of the ``{"error": {...}}`` envelope (or legacy string)."""
    error = payload.get("error")
    if isinstance(error, dict) and "message" in error:
        return str(error["message"])
    if isinstance(error, str):
        return error
    return f"{url} failed with HTTP {status}"


def _retry_after(header: str | None, payload: dict) -> float | None:
    """Backoff hint: the ``Retry-After`` header, else the envelope field."""
    if header:
        try:
            return float(header)
        except ValueError:
            pass
    error = payload.get("error")
    seconds = (
        error.get("retry_after_seconds")
        if isinstance(error, dict)
        else payload.get("retry_after_seconds")
    )
    return float(seconds) if isinstance(seconds, (int, float)) else None


class ServiceClient:
    """Persistent client of one solve service.

    Parameters
    ----------
    base_url:
        ``http://host:port`` of a running service (a bare ``host:port``
        is accepted).
    timeout:
        Per-call socket timeout in seconds.
    retries:
        How many times a 429 is retried (sleeping per the server's
        ``Retry-After``) before :class:`ServiceOverloadedError`
        propagates.  ``0`` disables the retry loop.

    The underlying keep-alive connection is opened lazily and reused
    across calls; a connection that went stale (server restarted, idle
    timeout) is re-opened transparently once per call.  Use as a context
    manager to release the socket deterministically.
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = DEFAULT_TIMEOUT,
        retries: int = DEFAULT_RETRIES,
    ):
        if "//" not in base_url:
            base_url = "http://" + base_url
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise ExperimentError(
                f"bad service URL {base_url!r}: expected http://host:port"
            )
        self._host: str = parsed.hostname
        self._port: int = parsed.port if parsed.port is not None else 80
        self.timeout = float(timeout)
        self.retries = int(retries)
        self._conn: HTTPConnection | None = None
        #: ``X-Request-Id`` echoed by the last response (``None`` before
        #: the first call).  When a call supplies ``request_id`` the
        #: server echoes it back verbatim; otherwise the server mints
        #: one — either way this is the id to grep for in a trace.
        self.last_request_id: str | None = None

    # -- lifecycle ---------------------------------------------------------------
    @property
    def base_url(self) -> str:
        return f"http://{self._host}:{self._port}"

    def close(self) -> None:
        """Drop the keep-alive connection (re-opened on the next call)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> ServiceClient:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- transport ---------------------------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        *,
        retries: int | None = None,
        request_id: str | None = None,
    ) -> dict:
        """One JSON round trip with the automatic 429 backoff loop.

        ``request_id`` is sent as ``X-Request-Id`` when given; either
        way the id the server answered under lands in
        :attr:`last_request_id`.
        """
        budget = self.retries if retries is None else int(retries)
        attempt = 0
        while True:
            try:
                # Only thread request_id through when given: _roundtrip's
                # historical 3-argument signature is an override point.
                if request_id is None:
                    return self._roundtrip(method, path, payload)
                return self._roundtrip(method, path, payload, request_id)
            except ServiceOverloadedError as exc:
                if attempt >= budget:
                    raise
                attempt += 1
                hint = exc.retry_after_seconds
                sleep(min(hint if hint and hint > 0 else 0.05, MAX_RETRY_SLEEP))

    def _exchange(self, method: str, path: str, body, headers: dict, url: str):
        """One raw HTTP exchange on the keep-alive connection."""
        for last_try in (False, True):
            if self._conn is None:
                self._conn = HTTPConnection(self._host, self._port, timeout=self.timeout)
            try:
                self._conn.request(method, path, body=body, headers=headers)
                response = self._conn.getresponse()
                raw = response.read()  # must drain fully to keep the connection reusable
                return response, raw
            except (ConnectionError, HTTPException, socket.timeout, OSError) as exc:
                # A stale keep-alive connection fails exactly like this;
                # retry once on a fresh socket before giving up.
                self.close()
                if last_try:
                    raise ExperimentError(f"cannot reach {url}: {exc}") from exc

    def _roundtrip(
        self,
        method: str,
        path: str,
        payload: dict | None,
        request_id: str | None = None,
    ) -> dict:
        url = self.base_url + path
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body is not None else {}
        if request_id is not None:
            headers["X-Request-Id"] = request_id
        response, raw = self._exchange(method, path, body, headers, url)
        self.last_request_id = response.getheader("X-Request-Id")
        data = _decode(raw, url)
        if 200 <= response.status < 300:
            return data
        message = _error_message(data, url, response.status)
        if response.status == 429:
            raise ServiceOverloadedError(
                message,
                retry_after_seconds=_retry_after(
                    response.getheader("Retry-After"), data
                ),
            )
        raise ExperimentError(message)

    def get(self, path: str) -> dict:
        return self.request("GET", path)

    def post(self, path: str, payload: dict) -> dict:
        return self.request("POST", path, payload)

    # -- API surface -------------------------------------------------------------
    def solve(
        self,
        request: dict,
        *,
        retries: int | None = None,
        request_id: str | None = None,
    ) -> dict:
        """``POST /v1/solve`` one request; retries 429s per the budget."""
        return self.request(
            "POST", "/v1/solve", request, retries=retries, request_id=request_id
        )

    def stats(self) -> dict:
        """``GET /v1/stats``."""
        return self.get("/v1/stats")

    def metrics(self) -> str:
        """``GET /v1/metrics`` — the Prometheus text exposition page."""
        url = self.base_url + "/v1/metrics"
        response, raw = self._exchange("GET", "/v1/metrics", None, {}, url)
        self.last_request_id = response.getheader("X-Request-Id")
        if response.status != 200:
            raise ExperimentError(
                _error_message(_decode(raw, url), url, response.status)
            )
        return raw.decode("utf-8")

    def healthz(self) -> dict:
        """``GET /v1/healthz``."""
        return self.get("/v1/healthz")

    def session(self, request: dict) -> ServiceSession:
        """Open a live replanning session (``POST /v1/session``).

        The returned :class:`ServiceSession` is itself a context
        manager; leaving the block closes the session server-side.
        """
        return ServiceSession(self, self.post("/v1/session", request))


class ServiceSession:
    """Handle on one open server-side replanning session."""

    def __init__(self, client: ServiceClient, created: dict):
        self._client = client
        #: Full ``POST /v1/session`` response (initial solve included).
        self.created = created
        self.id: str = created["session"]
        self._closed: dict | None = None

    def event(self, kind: str, time: float, machine: int | None = None) -> dict:
        """Apply one platform event; returns the replan record."""
        payload: dict = {"kind": kind, "time": time}
        if machine is not None:
            payload["machine"] = machine
        return self._client.post(f"/v1/session/{self.id}/event", payload)

    def state(self) -> dict:
        """Current server-side state (``GET /v1/session/{id}``)."""
        return self._client.get(f"/v1/session/{self.id}")

    def close(self) -> dict:
        """Close the session; idempotent (returns the first summary)."""
        if self._closed is None:
            self._closed = self._client.request("DELETE", f"/v1/session/{self.id}")
        return self._closed

    def __enter__(self) -> ServiceSession:
        return self

    def __exit__(self, *exc_info) -> None:
        try:
            self.close()
        except ExperimentError:
            pass  # session already expired or server gone; nothing to release


# -- deprecated one-shot helpers ---------------------------------------------------


def _request(url: str, data: bytes | None, timeout: float) -> dict:
    try:
        request = urllib.request.Request(
            url,
            data=data,
            headers={"Content-Type": "application/json"} if data is not None else {},
            method="POST" if data is not None else "GET",
        )
    except ValueError as exc:
        raise ExperimentError(f"bad service URL {url!r}: {exc}") from exc
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return _decode(response.read(), url)
    except urllib.error.HTTPError as exc:
        payload = _decode(exc.read(), url)
        message = _error_message(payload, url, exc.code)
        if exc.code == 429:
            raise ServiceOverloadedError(
                message,
                retry_after_seconds=_retry_after(exc.headers.get("Retry-After"), payload),
            ) from exc
        raise ExperimentError(message) from exc
    except urllib.error.URLError as exc:
        raise ExperimentError(f"cannot reach {url}: {exc.reason}") from exc


def _warn_deprecated(helper: str, replacement: str) -> None:
    warnings.warn(
        f"{helper}() is deprecated; use {replacement} on a ServiceClient "
        "(keep-alive connection, versioned endpoints, optional 429 retry)",
        DeprecationWarning,
        stacklevel=3,
    )


def get_json(url: str, *, timeout: float = DEFAULT_TIMEOUT) -> dict:
    """GET a JSON object.

    .. deprecated:: use :meth:`ServiceClient.get`.
    """
    _warn_deprecated("get_json", "ServiceClient.get")
    return _request(url, None, timeout)


def post_json(url: str, payload: dict, *, timeout: float = DEFAULT_TIMEOUT) -> dict:
    """POST a JSON object, return the JSON response.

    .. deprecated:: use :meth:`ServiceClient.post`.
    """
    _warn_deprecated("post_json", "ServiceClient.post")
    return _request(url, json.dumps(payload).encode("utf-8"), timeout)


def solve_remote(base_url: str, request: dict, *, timeout: float = DEFAULT_TIMEOUT) -> dict:
    """Send one solve request to a running service.

    .. deprecated:: use :meth:`ServiceClient.solve`.  Unlike the class
       method this never retries a 429 — existing callers catch the
       :class:`~repro.exceptions.ServiceOverloadedError` themselves.
    """
    _warn_deprecated("solve_remote", "ServiceClient.solve")
    return _request(
        base_url.rstrip("/") + "/solve",
        json.dumps(request).encode("utf-8"),
        timeout,
    )


def service_stats(base_url: str, *, timeout: float = DEFAULT_TIMEOUT) -> dict:
    """Fetch a running service's stats counters.

    .. deprecated:: use :meth:`ServiceClient.stats`.
    """
    _warn_deprecated("service_stats", "ServiceClient.stats")
    return _request(base_url.rstrip("/") + "/stats", None, timeout)
