"""Tiny stdlib HTTP client for the solve service.

Shared by the ``microrepro request`` one-shot subcommand, the service
tests and the CI smoke script, so they all speak to the server the same
way.  Errors surface as :class:`~repro.exceptions.ExperimentError` with
the server's ``{"error": ...}`` message when one is available; an HTTP
429 (load shedding) raises the more specific
:class:`~repro.exceptions.ServiceOverloadedError` carrying the server's
``Retry-After`` hint so callers can back off and retry.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from ..exceptions import ExperimentError, ServiceOverloadedError

__all__ = ["get_json", "post_json", "solve_remote", "service_stats"]

#: Default per-call timeout (seconds); a queued solve answers within the
#: batching window plus one solve, which is far below this.
DEFAULT_TIMEOUT = 30.0


def _decode(raw: bytes, url: str) -> dict:
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ExperimentError(f"{url} returned a non-JSON body: {exc}") from exc
    if not isinstance(payload, dict):
        raise ExperimentError(f"{url} returned {type(payload).__name__}, expected object")
    return payload


def _request(url: str, data: bytes | None, timeout: float) -> dict:
    try:
        request = urllib.request.Request(
            url,
            data=data,
            headers={"Content-Type": "application/json"} if data is not None else {},
            method="POST" if data is not None else "GET",
        )
    except ValueError as exc:
        raise ExperimentError(f"bad service URL {url!r}: {exc}") from exc
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return _decode(response.read(), url)
    except urllib.error.HTTPError as exc:
        payload = _decode(exc.read(), url)
        message = payload.get("error", f"{url} failed with HTTP {exc.code}")
        if exc.code == 429:
            header = exc.headers.get("Retry-After")
            raise ServiceOverloadedError(
                message,
                retry_after_seconds=float(header) if header else None,
            ) from exc
        raise ExperimentError(message) from exc
    except urllib.error.URLError as exc:
        raise ExperimentError(f"cannot reach {url}: {exc.reason}") from exc


def get_json(url: str, *, timeout: float = DEFAULT_TIMEOUT) -> dict:
    """GET a JSON object."""
    return _request(url, None, timeout)


def post_json(url: str, payload: dict, *, timeout: float = DEFAULT_TIMEOUT) -> dict:
    """POST a JSON object, return the JSON response."""
    return _request(url, json.dumps(payload).encode("utf-8"), timeout)


def solve_remote(base_url: str, request: dict, *, timeout: float = DEFAULT_TIMEOUT) -> dict:
    """Send one solve request to a running service."""
    return post_json(base_url.rstrip("/") + "/solve", request, timeout=timeout)


def service_stats(base_url: str, *, timeout: float = DEFAULT_TIMEOUT) -> dict:
    """Fetch a running service's ``/stats`` counters."""
    return get_json(base_url.rstrip("/") + "/stats", timeout=timeout)
