"""Two-tier solve cache: in-process LRU over a persistent append log.

Requests are content addressed (:attr:`SolveRequest.key` digests every
field the response depends on), so a solve response never goes stale —
caching is a pure space/time trade.  The cache therefore has two tiers:

* a bounded in-process **LRU** answering repeated requests at dict
  speed;
* an optional **persistent tier** (:class:`SolveCacheStore`) reusing
  the :class:`~repro.experiments.store.JsonlStore` append/scan
  machinery, so a restarted service warms up from disk instead of
  recomputing, with the same durability story as the result store
  (append-only records, byte-offset index, tail recovery, stale-index
  rebuild).

A persistent-tier hit is promoted into the LRU; every miss that gets
solved is written through to both tiers.  Hit/miss counters per tier
feed the service's ``/stats`` endpoint.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from ..experiments.store import JsonlStore

__all__ = ["CacheStats", "SolveCacheStore", "SolveCache"]


@dataclass(slots=True)
class CacheStats:
    """Counters of one :class:`SolveCache` (reset with the process)."""

    memory_hits: int = 0
    store_hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    @property
    def hits(self) -> int:
        """Hits across both tiers."""
        return self.memory_hits + self.store_hits

    @property
    def lookups(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    def as_dict(self) -> dict:
        """JSON-ready counters for ``/stats``."""
        return {
            "hits": self.hits,
            "memory_hits": self.memory_hits,
            "store_hits": self.store_hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
        }


class SolveCacheStore(JsonlStore):
    """Persistent cache tier: one ``solve`` record per request key.

    A directory holding ``solves.jsonl`` + ``index.json`` with exactly
    the result store's durability semantics (the base class is shared).
    Records are ``{"kind": "solve", "data": {"key": ..., "response":
    {...}}}``; last write per key wins, and a stale or corrupt index is
    rebuilt from the log on first use.
    """

    KINDS = ("solve",)
    RECORDS_FILE = "solves.jsonl"

    def _key_of(self, kind: str, data: dict) -> str:
        key = data["key"]
        if not isinstance(key, str) or not key:
            raise ValueError(f"solve record carries a bad key: {key!r}")
        return key

    def get(self, key: str) -> dict | None:
        """The stored response for a request key, or ``None``."""
        data = self._get("solve", key)
        if data is None:
            return None
        return data["response"]

    def put(self, key: str, response: dict) -> None:
        """Persist one response (last write wins on re-put)."""
        self._put("solve", key, {"key": key, "response": response})

    def __len__(self) -> int:
        return len(self._index["solve"])


@dataclass(slots=True)
class SolveCache:
    """Bounded LRU in front of an optional :class:`SolveCacheStore`.

    Parameters
    ----------
    capacity:
        Maximum number of responses held in memory (oldest-use evicted
        first).  ``0`` disables the memory tier (useful to exercise the
        persistent tier in tests).
    store:
        Persistent tier, or ``None`` for a memory-only cache.
    """

    capacity: int = 1024
    store: SolveCacheStore | None = None
    stats: CacheStats = field(default_factory=CacheStats)
    _memory: OrderedDict = field(default_factory=OrderedDict)
    # The batcher calls get/put from executor threads (the persistent
    # tier does file I/O that must stay off the event loop), so every
    # tier access is serialized here.
    _lock: threading.Lock = field(default_factory=threading.Lock)

    @classmethod
    def open(
        cls, cache_dir: str | os.PathLike | None, *, capacity: int = 1024
    ) -> "SolveCache":
        """A cache with a persistent tier at ``cache_dir`` (``None`` = memory only)."""
        store = SolveCacheStore(cache_dir) if cache_dir is not None else None
        return cls(capacity=capacity, store=store)

    def get(self, key: str) -> tuple[dict | None, str | None]:
        """``(response, tier)`` for a key; ``(None, None)`` on a miss.

        ``tier`` is ``"memory"`` or ``"store"``; a store hit is promoted
        into the memory tier.
        """
        with self._lock:
            cached = self._memory.get(key)
            if cached is not None:
                self._memory.move_to_end(key)
                self.stats.memory_hits += 1
                return cached, "memory"
            if self.store is not None:
                response = self.store.get(key)
                if response is not None:
                    self.stats.store_hits += 1
                    self._remember(key, response)
                    return response, "store"
            self.stats.misses += 1
            return None, None

    def put(self, key: str, response: dict) -> None:
        """Write a freshly solved response through both tiers."""
        with self._lock:
            self.stats.puts += 1
            self._remember(key, response)
            if self.store is not None:
                self.store.put(key, response)

    def _remember(self, key: str, response: dict) -> None:
        if self.capacity <= 0:
            return
        self._memory[key] = response
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def __len__(self) -> int:
        return len(self._memory)

    def close(self) -> None:
        """Flush the persistent tier's index."""
        if self.store is not None:
            self.store.close()
