"""Two-tier solve cache: in-process LRU over a persistent append log.

Requests are content addressed (:attr:`SolveRequest.key` digests every
field the response depends on), so a solve response never goes stale —
caching is a pure space/time trade.  The cache therefore has two tiers:

* a bounded in-process **LRU** answering repeated requests at dict
  speed;
* an optional **persistent tier** (:class:`SolveCacheStore`) reusing
  the :class:`~repro.experiments.store.JsonlStore` append/scan
  machinery, so a restarted service warms up from disk instead of
  recomputing, with the same durability story as the result store
  (append-only records, byte-offset index, tail recovery, stale-index
  rebuild).

A persistent-tier hit is promoted into the LRU; every miss that gets
solved is written through to both tiers.  Hit/miss counters per tier
feed the service's ``/stats`` endpoint.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from ..experiments.store import JsonlStore
from ..obs.metrics import MetricsRegistry

__all__ = ["CacheStats", "SolveCacheStore", "SolveCache"]


class CacheStats:
    """Counters of one :class:`SolveCache` (reset with the process).

    Registry-backed: each counter is a
    :class:`~repro.obs.metrics.MetricsRegistry` series (shared with
    ``GET /v1/metrics`` when the service passes its registry in), and
    the historical int attributes read straight from it — one source of
    truth for ``/v1/stats`` and the exposition endpoint.
    """

    __slots__ = ("_hits", "_misses", "_puts", "_evictions")

    def __init__(self, registry: MetricsRegistry | None = None):
        registry = registry if registry is not None else MetricsRegistry()
        self._hits = registry.counter(
            "repro_cache_hits_total", "Solve-cache hits per tier.", labels=("tier",)
        )
        # Pre-register both tiers so an idle scrape shows them at 0.
        for tier in ("memory", "store"):
            self._hits.labels(tier=tier)
        self._misses = registry.counter(
            "repro_cache_misses_total", "Solve-cache lookups that missed both tiers."
        )
        self._puts = registry.counter(
            "repro_cache_puts_total", "Responses written through the solve cache."
        )
        self._evictions = registry.counter(
            "repro_cache_memory_evictions_total",
            "LRU evictions from the in-memory cache tier.",
        )

    def note_hit(self, tier: str) -> None:
        self._hits.labels(tier=tier).inc()

    def note_miss(self) -> None:
        self._misses.inc()

    def note_put(self) -> None:
        self._puts.inc()

    def note_eviction(self) -> None:
        self._evictions.inc()

    @property
    def memory_hits(self) -> int:
        return self._hits.labels(tier="memory").value

    @property
    def store_hits(self) -> int:
        return self._hits.labels(tier="store").value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def puts(self) -> int:
        return self._puts.value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    @property
    def hits(self) -> int:
        """Hits across both tiers."""
        return self.memory_hits + self.store_hits

    @property
    def lookups(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    def as_dict(self) -> dict:
        """JSON-ready counters for ``/stats``."""
        return {
            "hits": self.hits,
            "memory_hits": self.memory_hits,
            "store_hits": self.store_hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
        }


class SolveCacheStore(JsonlStore):
    """Persistent cache tier: one ``solve`` record per request key.

    A directory holding ``solves.jsonl`` + ``index.json`` with exactly
    the result store's durability semantics (the base class is shared).
    Records are ``{"kind": "solve", "data": {"key": ..., "response":
    {...}}}``; last write per key wins, and a stale or corrupt index is
    rebuilt from the log on first use.

    Parameters
    ----------
    max_bytes:
        Size bound of the append log, or ``None`` for unbounded.  A put
        growing the log past it triggers **compaction** (the base
        class's atomic rewrite keeping only live records) and, when the
        live records alone still exceed the budget, **eviction** of the
        oldest-written entries down to :data:`LOW_WATER` of the budget —
        hysteresis, so a near-full cache does not pay a full rewrite per
        put.  Long-lived services stop growing disk unboundedly; a
        restarted service still warms from everything that survived.
    """

    KINDS = ("solve",)
    RECORDS_FILE = "solves.jsonl"

    #: Eviction drains the log to this fraction of ``max_bytes``.
    LOW_WATER = 0.8

    def __init__(self, path: str | os.PathLike, *, max_bytes: int | None = None):
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_bytes = max_bytes
        self.compactions = 0
        self.evictions = 0
        super().__init__(path)

    def _key_of(self, kind: str, data: dict) -> str:
        key = data["key"]
        if not isinstance(key, str) or not key:
            raise ValueError(f"solve record carries a bad key: {key!r}")
        return key

    def get(self, key: str) -> dict | None:
        """The stored response for a request key, or ``None``."""
        data = self._get("solve", key)
        if data is None:
            return None
        return data["response"]

    def put(self, key: str, response: dict) -> None:
        """Persist one response (last write wins on re-put)."""
        self._put("solve", key, {"key": key, "response": response})
        self._enforce_size()

    def size_bytes(self) -> int:
        """Current size of the append log on disk."""
        return (
            self._records_path.stat().st_size if self._records_path.exists() else 0
        )

    def _enforce_size(self) -> None:
        """Compact (and evict oldest entries) once the log outgrows its bound."""
        if self.max_bytes is None or self.size_bytes() <= self.max_bytes:
            return
        index = self._index["solve"]
        # Oldest-written first — the eviction order.  Offset order is the
        # append order, and compaction preserves it, so "oldest offset"
        # stays "least recently written" across rewrites.
        live = sorted(index.items(), key=lambda item: item[1])
        sizes: dict[str, int] = {}
        with open(self._records_path, "rb") as handle:
            for key, offset in live:
                handle.seek(offset)
                sizes[key] = len(handle.readline())
        total = sum(sizes.values())
        if total > self.max_bytes:
            target = int(self.max_bytes * self.LOW_WATER)
            for key, _ in live[:-1]:  # the newest record always survives
                if total <= target:
                    break
                total -= sizes[key]
                del index[key]
                self.evictions += 1
        self.compact()
        self.compactions += 1

    def __len__(self) -> int:
        return len(self._index["solve"])


@dataclass(slots=True)
class SolveCache:
    """Bounded LRU in front of an optional :class:`SolveCacheStore`.

    Parameters
    ----------
    capacity:
        Maximum number of responses held in memory (oldest-use evicted
        first).  ``0`` disables the memory tier (useful to exercise the
        persistent tier in tests).
    store:
        Persistent tier, or ``None`` for a memory-only cache.
    """

    capacity: int = 1024
    store: SolveCacheStore | None = None
    stats: CacheStats = field(default_factory=CacheStats)
    _memory: OrderedDict = field(default_factory=OrderedDict)
    # The batcher calls get/put from executor threads (the persistent
    # tier does file I/O that must stay off the event loop), so every
    # tier access is serialized here.
    _lock: threading.Lock = field(default_factory=threading.Lock)

    @classmethod
    def open(
        cls,
        cache_dir: str | os.PathLike | None,
        *,
        capacity: int = 1024,
        max_bytes: int | None = None,
        registry: MetricsRegistry | None = None,
    ) -> "SolveCache":
        """A cache with a persistent tier at ``cache_dir`` (``None`` = memory only).

        ``max_bytes`` bounds the persistent tier's append log via
        compaction + oldest-first eviction (ignored without a tier).
        ``registry`` shares the hit/miss/put counters with a service's
        metrics registry (a private one is created otherwise).
        """
        store = (
            SolveCacheStore(cache_dir, max_bytes=max_bytes)
            if cache_dir is not None
            else None
        )
        return cls(capacity=capacity, store=store, stats=CacheStats(registry))

    def get(self, key: str) -> tuple[dict | None, str | None]:
        """``(response, tier)`` for a key; ``(None, None)`` on a miss.

        ``tier`` is ``"memory"`` or ``"store"``; a store hit is promoted
        into the memory tier.
        """
        with self._lock:
            cached = self._memory.get(key)
            if cached is not None:
                self._memory.move_to_end(key)
                self.stats.note_hit("memory")
                return cached, "memory"
            if self.store is not None:
                response = self.store.get(key)
                if response is not None:
                    self.stats.note_hit("store")
                    self._remember(key, response)
                    return response, "store"
            self.stats.note_miss()
            return None, None

    def put(self, key: str, response: dict) -> None:
        """Write a freshly solved response through both tiers."""
        with self._lock:
            self.stats.note_put()
            self._remember(key, response)
            if self.store is not None:
                self.store.put(key, response)

    def _remember(self, key: str, response: dict) -> None:
        if self.capacity <= 0:
            return
        self._memory[key] = response
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self.stats.note_eviction()

    def __len__(self) -> int:
        return len(self._memory)

    def stats_payload(self) -> dict:
        """JSON-ready counters for ``/stats``, both tiers.

        Extends :meth:`CacheStats.as_dict` with the persistent tier's
        footprint and maintenance counters when one is attached.
        """
        with self._lock:
            payload = self.stats.as_dict()
            if self.store is not None:
                payload.update(
                    store_entries=len(self.store),
                    store_bytes=self.store.size_bytes(),
                    store_max_bytes=self.store.max_bytes,
                    store_evictions=self.store.evictions,
                    compactions=self.store.compactions,
                )
            return payload

    def close(self) -> None:
        """Flush the persistent tier's index."""
        if self.store is not None:
            self.store.close()
