"""Long-running solve service: micro-batched, cached, on-demand solves.

Every entry point before this package was a batch CLI; ``repro.service``
turns the engine into something a client can *ask*: a long-running
asyncio HTTP server (``microrepro serve``) accepting JSON solve
requests.  The serving hot path reuses the scaling machinery the
experiment engine already has — concurrent compatible requests are
coalesced by a **micro-batcher** into one
:class:`~repro.batch.InstanceStack` solved through the same lock-step
``solve_batch`` kernels that amortize a block's repetitions, and a
two-tier **solve cache** (LRU over a persistent
:class:`~repro.experiments.store.JsonlStore` log) makes repeated
requests O(lookup).

Layers (one module each):

* :mod:`~repro.service.requests` — request schema, normalisation,
  content-address hashing, the direct reference path;
* :mod:`~repro.service.batcher` — window-based grouping, coalescing,
  ``solve_stack`` routing, admission control;
* :mod:`~repro.service.pool` — the multi-process solve-worker pool
  (the picklable group-solve function + its executor);
* :mod:`~repro.service.cache` — the two-tier response cache
  (size-bounded persistent tier with compaction + eviction);
* :mod:`~repro.service.server` — the asyncio HTTP front end
  (``/solve``, ``/stats``, ``/healthz``);
* :mod:`~repro.service.client` — stdlib client helpers
  (``microrepro request``, tests, CI smoke).

Responses are **bit-for-bit identical** to per-request direct solves no
matter how requests were grouped, cached or ordered — batching and
caching are scheduling choices, never semantic ones.
"""

from ..exceptions import ServiceOverloadedError
from .batcher import BatcherStats, MicroBatcher
from .cache import CacheStats, SolveCache, SolveCacheStore
from .client import get_json, post_json, service_stats, solve_remote
from .pool import SolveWorkerPool, solve_group
from .requests import (
    SolveRequest,
    build_response,
    direct_response,
    normalize_request,
)
from .server import LatencyReservoir, ServiceStats, SolveService, serve

__all__ = [
    "BatcherStats",
    "MicroBatcher",
    "CacheStats",
    "SolveCache",
    "SolveCacheStore",
    "ServiceOverloadedError",
    "SolveWorkerPool",
    "solve_group",
    "get_json",
    "post_json",
    "service_stats",
    "solve_remote",
    "SolveRequest",
    "build_response",
    "direct_response",
    "normalize_request",
    "LatencyReservoir",
    "ServiceStats",
    "SolveService",
    "serve",
]
