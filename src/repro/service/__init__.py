"""Long-running solve service: micro-batched, cached, on-demand solves.

Every entry point before this package was a batch CLI; ``repro.service``
turns the engine into something a client can *ask*: a long-running
asyncio HTTP server (``microrepro serve``) accepting JSON solve
requests.  The serving hot path reuses the scaling machinery the
experiment engine already has — concurrent compatible requests are
coalesced by a **micro-batcher** into one
:class:`~repro.batch.InstanceStack` solved through the same lock-step
``solve_batch`` kernels that amortize a block's repetitions, and a
two-tier **solve cache** (LRU over a persistent
:class:`~repro.experiments.store.JsonlStore` log) makes repeated
requests O(lookup).

Layers (one module each):

* :mod:`~repro.service.requests` — request schema, normalisation,
  content-address hashing, the direct reference path;
* :mod:`~repro.service.batcher` — window-based grouping, coalescing,
  ``solve_stack`` routing, admission control;
* :mod:`~repro.service.pool` — the multi-process solve-worker pool
  (the picklable group-solve function + its executor);
* :mod:`~repro.service.cache` — the two-tier response cache
  (size-bounded persistent tier with compaction + eviction);
* :mod:`~repro.service.metrics` — shared latency reservoir;
* :mod:`~repro.service.sessions` — live replanning sessions
  (:class:`SessionManager`: table, counters, idle expiry);
* :mod:`~repro.service.server` — the asyncio HTTP front end
  (versioned ``/v1`` routes — solve, stats, healthz, session — plus
  deprecated unversioned aliases);
* :mod:`~repro.service.client` — :class:`ServiceClient` (keep-alive,
  429 retry, sessions) plus the deprecated one-shot helpers
  (``microrepro request``, tests, CI smoke).

Responses are **bit-for-bit identical** to per-request direct solves no
matter how requests were grouped, cached or ordered — batching and
caching are scheduling choices, never semantic ones.
"""

from ..exceptions import ServiceOverloadedError
from .batcher import BatcherStats, MicroBatcher
from .cache import CacheStats, SolveCache, SolveCacheStore
from .client import (
    ServiceClient,
    ServiceSession,
    get_json,
    post_json,
    service_stats,
    solve_remote,
)
from .metrics import LatencyReservoir
from .pool import SolveWorkerPool, solve_group
from .requests import (
    SessionRequest,
    SolveRequest,
    build_response,
    direct_response,
    normalize_event,
    normalize_request,
    normalize_session_request,
)
from .server import ServiceStats, SolveService, serve
from .sessions import LiveSession, SessionManager

__all__ = [
    "BatcherStats",
    "MicroBatcher",
    "CacheStats",
    "SolveCache",
    "SolveCacheStore",
    "ServiceOverloadedError",
    "SolveWorkerPool",
    "solve_group",
    "ServiceClient",
    "ServiceSession",
    "get_json",
    "post_json",
    "service_stats",
    "solve_remote",
    "SessionRequest",
    "SolveRequest",
    "build_response",
    "direct_response",
    "normalize_event",
    "normalize_request",
    "normalize_session_request",
    "LatencyReservoir",
    "LiveSession",
    "SessionManager",
    "ServiceStats",
    "SolveService",
    "serve",
]
