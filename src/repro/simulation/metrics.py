"""Metrics collected by the micro-factory simulation.

The simulator's purpose in this reproduction is to *validate* the analytic
period model of Section 4.1: running a mapped production line with
stochastic transient failures must yield, in the long run,

* an empirical expected-product count per task that converges to ``x_i``;
* a busy time per finished product on each machine that converges to
  ``period(Mu)``;
* an output rate that converges to ``1 / max_u period(Mu)``.

:class:`SimulationMetrics` exposes exactly those quantities plus the raw
counters they are derived from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SimulationMetrics"]


@dataclass(frozen=True, slots=True)
class SimulationMetrics:
    """Aggregated results of one simulation run.

    All arrays are indexed by task or machine index; time values share the
    unit of the instance's ``w`` matrix (milliseconds in the paper).

    Attributes
    ----------
    finished_products:
        Number of products that left the system.
    makespan:
        Simulation time at which the last finished product was output.
    raw_products_injected:
        Raw products fed to each *source* task (zero for non-source tasks).
    executions:
        Number of task executions per task (successful or not).
    successes, losses:
        Number of successful executions and of lost products per task.
    machine_busy_time:
        Total processing time spent by each machine.
    machine_executions:
        Number of executions performed by each machine.
    output_times:
        Timestamps at which finished products were produced (sorted).
    """

    finished_products: int
    makespan: float
    raw_products_injected: np.ndarray
    executions: np.ndarray
    successes: np.ndarray
    losses: np.ndarray
    machine_busy_time: np.ndarray
    machine_executions: np.ndarray
    output_times: np.ndarray

    # -- derived quantities --------------------------------------------------------
    @property
    def empirical_failure_rates(self) -> np.ndarray:
        """Observed per-task loss ratio (NaN for tasks never executed)."""
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(self.executions > 0, self.losses / self.executions, np.nan)

    @property
    def empirical_products_per_output(self) -> np.ndarray:
        """Observed ``x_i`` estimate: executions per finished product."""
        if self.finished_products == 0:
            return np.full_like(self.executions, np.nan, dtype=np.float64)
        return self.executions / float(self.finished_products)

    @property
    def empirical_machine_periods(self) -> np.ndarray:
        """Observed ``period(Mu)`` estimate: busy time per finished product."""
        if self.finished_products == 0:
            return np.full_like(self.machine_busy_time, np.nan, dtype=np.float64)
        return self.machine_busy_time / float(self.finished_products)

    @property
    def empirical_period(self) -> float:
        """Observed application period estimate (max machine period)."""
        periods = self.empirical_machine_periods
        return float(np.nanmax(periods)) if periods.size else float("nan")

    @property
    def empirical_throughput(self) -> float:
        """Observed throughput estimate (finished products per time unit)."""
        if self.makespan <= 0:
            return float("nan")
        return self.finished_products / self.makespan

    @property
    def steady_state_output_interval(self) -> float:
        """Mean inter-output time over the second half of the outputs.

        Discarding the first half removes the pipeline fill-up transient;
        in steady state this converges to the application period.
        """
        if self.output_times.size < 4:
            return float("nan")
        half = self.output_times.size // 2
        tail = self.output_times[half:]
        if tail.size < 2:
            return float("nan")
        return float((tail[-1] - tail[0]) / (tail.size - 1))

    def summary(self) -> dict:
        """Scalar summary convenient for reports and assertions."""
        return {
            "finished_products": self.finished_products,
            "makespan": self.makespan,
            "empirical_period": self.empirical_period,
            "empirical_throughput": self.empirical_throughput,
            "steady_state_output_interval": self.steady_state_output_interval,
            "total_losses": int(self.losses.sum()),
            "total_executions": int(self.executions.sum()),
        }
