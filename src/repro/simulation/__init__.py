"""Stochastic micro-factory simulation substrate.

The paper evaluates its heuristics with a C++ simulator; this package is
the Python equivalent (see DESIGN.md, substitution table).  It provides a
small deterministic discrete-event engine (:mod:`repro.simulation.events`),
a production-line model with transient per-(task, machine) failures
(:mod:`repro.simulation.factory`), reproducible random streams
(:mod:`repro.simulation.rng`), and metric / trace collection.
"""

from .events import Event, EventKind, EventQueue
from .factory import MicroFactorySimulation, simulate_mapping
from .metrics import SimulationMetrics
from .rng import RandomStreamFactory, generator_from, spawn_generators
from .trace import SimulationTrace, TraceEventType, TraceRecord

__all__ = [
    "Event",
    "EventKind",
    "EventQueue",
    "MicroFactorySimulation",
    "simulate_mapping",
    "SimulationMetrics",
    "RandomStreamFactory",
    "generator_from",
    "spawn_generators",
    "SimulationTrace",
    "TraceEventType",
    "TraceRecord",
]
