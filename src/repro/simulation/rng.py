"""Reproducible random-number streams for simulations and experiments.

Every stochastic component of the library (instance generation, heuristic
H1, failure sampling in the simulator) takes a ``numpy.random.Generator``.
This module centralises how those generators are derived from a single
experiment seed so that:

* two runs with the same seed produce identical results;
* independent components (e.g. repetition 7 of figure 5 versus
  repetition 8) get *independent* streams, obtained by spawning from a
  ``numpy.random.SeedSequence`` rather than by reusing or offsetting seeds.
"""

from __future__ import annotations

import zlib
from collections.abc import Iterator

import numpy as np

__all__ = ["RandomStreamFactory", "spawn_generators", "generator_from"]


def _label_key(label: str) -> int:
    """Stable 32-bit key for a stream label.

    Deliberately *not* Python's ``hash()``: string hashing is salted per
    process (PYTHONHASHSEED), which would silently break the "same seed,
    same results" guarantee across interpreter restarts and in worker
    processes of the parallel experiment runner.
    """
    return zlib.crc32(label.encode("utf-8")) & 0xFFFFFFFF


def generator_from(seed: int | np.random.SeedSequence | np.random.Generator | None) -> np.random.Generator:
    """Coerce a seed / seed sequence / generator / ``None`` into a generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(
    seed: int | np.random.SeedSequence | None, count: int
) -> list[np.random.Generator]:
    """Create ``count`` statistically independent generators from one seed."""
    if count < 0:
        raise ValueError("count must be non-negative")
    base = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in base.spawn(count)]


class RandomStreamFactory:
    """Named, reproducible sub-streams derived from a single root seed.

    Each distinct ``(label, index)`` pair maps to a deterministic child
    stream, regardless of the order in which streams are requested.  This
    lets an experiment ask for, say, the stream of repetition 13 without
    generating the first twelve.

    Parameters
    ----------
    seed:
        Root seed of the experiment (``None`` = non-reproducible).
    """

    __slots__ = ("_root",)

    def __init__(self, seed: int | np.random.SeedSequence | None = None):
        self._root = (
            seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
        )

    @property
    def entropy(self):
        """The full root entropy (int or tuple of ints).

        Enough to reconstruct an identical factory in another process:
        ``RandomStreamFactory(np.random.SeedSequence(entropy))`` produces
        the same streams, because :meth:`stream` derives children from the
        entropy alone.
        """
        return self._root.entropy

    @property
    def root_entropy(self) -> int | None:
        """The root entropy (useful for logging the effective seed)."""
        entropy = self._root.entropy
        if isinstance(entropy, (list, tuple)):
            return int(entropy[0]) if entropy else None
        return int(entropy) if entropy is not None else None

    def stream(self, label: str, index: int = 0) -> np.random.Generator:
        """Deterministic generator for the given ``(label, index)`` pair.

        The label is digested with a process-independent CRC so that the
        same ``(seed, label, index)`` triple yields the same stream in any
        process — a requirement of the parallel experiment runner, whose
        workers re-derive their streams independently.
        """
        child = np.random.SeedSequence(
            entropy=self._root.entropy, spawn_key=(_label_key(label), int(index))
        )
        return np.random.default_rng(child)

    def streams(self, label: str, count: int) -> Iterator[np.random.Generator]:
        """Iterator over ``count`` streams ``(label, 0..count-1)``."""
        for index in range(count):
            yield self.stream(label, index)
