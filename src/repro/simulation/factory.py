"""Discrete-event simulation of a mapped micro-factory production line.

The simulator plays the role of the C++ simulator used for the paper's
experiments: given a problem instance and a mapping, it runs the
production line with *stochastic* transient failures and measures the
empirical throughput, which must converge to the analytic period model of
Section 4.1 (this convergence is asserted by the integration tests).

Model
-----
* Every machine owns a FIFO queue of work items ``(task, product)`` and
  processes them one at a time; processing ``(i, _)`` on machine ``u``
  takes exactly ``w[i, u]`` time units.
* When an execution completes, it fails independently with probability
  ``f[i, u]``; a failure destroys the product (transient failure — the
  machine itself keeps working).
* A successful product moves to the input buffer of the successor task.
  Join tasks (in-tree nodes with several predecessors) start only when one
  product from *every* predecessor branch is available; the merged product
  then counts as a single unit.
* Source tasks draw from an unlimited supply of raw products.

Two feeding regimes are provided:

* :meth:`MicroFactorySimulation.run` — **closed-loop feed** (constant work
  in progress): a fixed number of products circulates in the line; every
  loss and every finished product triggers the injection of a fresh raw
  product at the sources that feed the affected branch.  This is the
  steady-state regime in which the paper's period is defined: the busy
  time of each machine per finished product converges to its analytic
  ``period(Mu)``, and with a large enough WIP the inter-output interval
  converges to the application period.
* :meth:`MicroFactorySimulation.run_batch` — **batch feed**: a fixed
  number of raw products is injected at time zero and the line runs until
  it drains.  In this regime the number of executions of each task per
  finished product converges to the analytic ``x_i``, which is what the
  expected-product validation tests assert.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..core.instance import ProblemInstance
from ..core.mapping import Mapping
from ..exceptions import SimulationError
from .events import EventKind, EventQueue
from .metrics import SimulationMetrics
from .trace import SimulationTrace, TraceEventType

__all__ = ["MicroFactorySimulation", "simulate_mapping"]


@dataclass(slots=True)
class _MachineState:
    """Mutable runtime state of one machine."""

    queue: deque
    busy: bool = False
    busy_time: float = 0.0
    executions: int = 0


class MicroFactorySimulation:
    """Simulate one mapped production line.

    Parameters
    ----------
    instance:
        The problem instance (application, platform, failure model).
    mapping:
        The allocation of tasks to machines being exercised.
    rng:
        Random generator used for failure sampling.
    trace:
        Optional :class:`~repro.simulation.trace.SimulationTrace` to record
        events into.
    """

    def __init__(
        self,
        instance: ProblemInstance,
        mapping: Mapping,
        rng: np.random.Generator | None = None,
        *,
        trace: SimulationTrace | None = None,
    ) -> None:
        mapping.validate(instance)
        self.instance = instance
        self.mapping = mapping
        self.rng = rng if rng is not None else np.random.default_rng()
        self.trace = trace

        app = instance.application
        self._sources = sorted(app.sources())
        self._successor = {i: app.successor(i) for i in range(instance.num_tasks)}
        self._predecessors = {i: app.predecessors(i) for i in range(instance.num_tasks)}
        # Sources feeding each task (transitive predecessors that are sources,
        # or the task itself for a source).  Used by the closed-loop feed to
        # replenish the right branch after a loss.
        self._feeding_sources: dict[int, tuple[int, ...]] = {}
        for task in app.topological_order():
            preds = self._predecessors[task]
            if not preds:
                self._feeding_sources[task] = (task,)
            else:
                feeding: set[int] = set()
                for pred in preds:
                    feeding.update(self._feeding_sources[pred])
                self._feeding_sources[task] = tuple(sorted(feeding))

    # -- public API ---------------------------------------------------------------
    def run(
        self,
        target_products: int,
        *,
        wip: int | None = None,
        max_events: int = 5_000_000,
        max_time: float | None = None,
    ) -> SimulationMetrics:
        """Closed-loop run until ``target_products`` products are output.

        Parameters
        ----------
        target_products:
            Number of finished products to produce (>= 1).
        wip:
            Work-in-progress level: number of products injected per source
            at time zero and kept circulating (every loss or output triggers
            a replenishment).  Defaults to ``4 * max(n, m)``, which is ample
            to keep the critical machine saturated.
        max_events:
            Safety cap on processed completion events; exceeding it raises
            :class:`~repro.exceptions.SimulationError`.
        max_time:
            Optional cap on simulated time; the run stops early (with fewer
            finished products) when it is exceeded.
        """
        if target_products < 1:
            raise SimulationError("target_products must be >= 1")
        if wip is None:
            wip = 4 * max(self.instance.num_tasks, self.instance.num_machines)
        if wip < 1:
            raise SimulationError("wip must be >= 1")
        return self._execute(
            target_products=target_products,
            closed_loop=True,
            batch_size=wip,
            max_events=max_events,
            max_time=max_time,
        )

    def run_batch(
        self,
        raw_products: int,
        *,
        max_events: int = 5_000_000,
        max_time: float | None = None,
    ) -> SimulationMetrics:
        """Batch-feed run: inject ``raw_products`` per source, drain the line.

        Parameters
        ----------
        raw_products:
            Number of raw products injected at time zero at *each* source
            task (>= 1).
        """
        if raw_products < 1:
            raise SimulationError("raw_products must be >= 1")
        return self._execute(
            target_products=None,
            closed_loop=False,
            batch_size=raw_products,
            max_events=max_events,
            max_time=max_time,
        )

    # -- core loop -------------------------------------------------------------------
    def _execute(
        self,
        *,
        target_products: int | None,
        closed_loop: bool,
        batch_size: int,
        max_events: int,
        max_time: float | None,
    ) -> SimulationMetrics:
        instance = self.instance
        n, m = instance.num_tasks, instance.num_machines
        w = instance.processing_times
        f = instance.failure_rates
        mapping = self.mapping

        machines = [_MachineState(queue=deque()) for _ in range(m)]
        # Input buffers: for every task, a count of available products per
        # predecessor (products are indistinguishable, counts are enough).
        buffers: dict[int, dict[int, int]] = {
            task: {pred: 0 for pred in self._predecessors[task]} for task in range(n)
        }

        raw_injected = np.zeros(n, dtype=np.int64)
        executions = np.zeros(n, dtype=np.int64)
        successes = np.zeros(n, dtype=np.int64)
        losses = np.zeros(n, dtype=np.int64)

        finished = 0
        output_times: list[float] = []
        product_counter = 0
        now = 0.0
        queue = EventQueue()

        def start_if_idle(machine_index: int, time: float) -> None:
            state = machines[machine_index]
            if state.busy or not state.queue:
                return
            task, product = state.queue.popleft()
            duration = float(w[task, machine_index])
            state.busy = True
            if self.trace is not None:
                self.trace.record(
                    time,
                    TraceEventType.EXECUTION_STARTED,
                    task=task,
                    machine=machine_index,
                    product=product,
                )
            queue.schedule(
                time + duration,
                EventKind.MACHINE_COMPLETION,
                payload=(machine_index, task, product),
            )

        def enqueue_work(task: int, product: int, time: float) -> None:
            machine_index = mapping.machine_of(task)
            machines[machine_index].queue.append((task, product))
            start_if_idle(machine_index, time)

        def inject_raw(task: int, time: float) -> None:
            nonlocal product_counter
            raw_injected[task] += 1
            product_counter += 1
            if self.trace is not None:
                self.trace.record(
                    time, TraceEventType.RAW_INJECTED, task=task, product=product_counter
                )
            enqueue_work(task, product_counter, time)

        def replenish(task: int, time: float) -> None:
            """Closed-loop feed: keep the WIP constant after a loss/output."""
            if not closed_loop:
                return
            for source in self._feeding_sources[task]:
                inject_raw(source, time)

        def deliver_to_successor(task: int, product: int, time: float) -> None:
            nonlocal finished, product_counter
            succ = self._successor[task]
            if succ is None:
                finished += 1
                output_times.append(time)
                if self.trace is not None:
                    self.trace.record(
                        time, TraceEventType.PRODUCT_OUTPUT, task=task, product=product
                    )
                replenish(task, time)
                return
            buffers[succ][task] += 1
            # A join starts only when every predecessor branch has a product.
            if all(count >= 1 for count in buffers[succ].values()):
                for pred in buffers[succ]:
                    buffers[succ][pred] -= 1
                product_counter += 1
                enqueue_work(succ, product_counter, time)

        # Prime the line: `batch_size` products per source (the WIP level in
        # closed-loop mode, the whole batch in batch mode).
        for source in self._sources:
            for _ in range(batch_size):
                inject_raw(source, 0.0)

        events_processed = 0
        while True:
            if target_products is not None and finished >= target_products:
                break
            if not queue:
                if closed_loop:
                    raise SimulationError(
                        "event queue drained before the production target was met "
                        "(this indicates an internal inconsistency)"
                    )
                break  # batch mode: the line has drained
            event = queue.pop()
            now = event.time
            if max_time is not None and now > max_time:
                break
            events_processed += 1
            if events_processed > max_events:
                raise SimulationError(
                    f"simulation exceeded the safety cap of {max_events} events"
                )
            if event.kind is not EventKind.MACHINE_COMPLETION:
                continue
            machine_index, task, product = event.payload
            state = machines[machine_index]
            state.busy = False
            # Account for the execution at completion time so that counters
            # never include work still in flight when the run stops.
            state.busy_time += float(w[task, machine_index])
            state.executions += 1
            executions[task] += 1
            failed = bool(self.rng.random() < f[task, machine_index])
            if failed:
                losses[task] += 1
                if self.trace is not None:
                    self.trace.record(
                        now,
                        TraceEventType.PRODUCT_LOST,
                        task=task,
                        machine=machine_index,
                        product=product,
                    )
                replenish(task, now)
            else:
                successes[task] += 1
                if self.trace is not None:
                    self.trace.record(
                        now,
                        TraceEventType.EXECUTION_SUCCEEDED,
                        task=task,
                        machine=machine_index,
                        product=product,
                    )
                deliver_to_successor(task, product, now)
            start_if_idle(machine_index, now)

        return SimulationMetrics(
            finished_products=finished,
            makespan=now,
            raw_products_injected=raw_injected,
            executions=executions,
            successes=successes,
            losses=losses,
            machine_busy_time=np.asarray([s.busy_time for s in machines]),
            machine_executions=np.asarray([s.executions for s in machines]),
            output_times=np.asarray(output_times, dtype=np.float64),
        )


def simulate_mapping(
    instance: ProblemInstance,
    mapping: Mapping,
    target_products: int,
    *,
    rng: np.random.Generator | None = None,
    trace: SimulationTrace | None = None,
    max_events: int = 5_000_000,
) -> SimulationMetrics:
    """One-call convenience wrapper around :class:`MicroFactorySimulation.run`."""
    sim = MicroFactorySimulation(instance, mapping, rng, trace=trace)
    return sim.run(target_products, max_events=max_events)
