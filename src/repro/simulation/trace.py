"""Optional event tracing for the micro-factory simulation.

A :class:`SimulationTrace` records the interesting transitions of a run
(executions started / finished, products lost, products output) so that
tests and examples can inspect the exact sequence of events.  Tracing is
off by default because traces grow linearly with the number of executions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

__all__ = ["TraceEventType", "TraceRecord", "SimulationTrace"]


class TraceEventType(enum.Enum):
    """Kinds of trace records."""

    RAW_INJECTED = "raw-injected"
    EXECUTION_STARTED = "execution-started"
    EXECUTION_SUCCEEDED = "execution-succeeded"
    PRODUCT_LOST = "product-lost"
    PRODUCT_OUTPUT = "product-output"


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace entry.

    Attributes
    ----------
    time:
        Simulation timestamp.
    event:
        What happened.
    task:
        Task index involved (-1 when not applicable).
    machine:
        Machine index involved (-1 when not applicable).
    product:
        Product identifier involved (-1 when not applicable).
    """

    time: float
    event: TraceEventType
    task: int = -1
    machine: int = -1
    product: int = -1


class SimulationTrace:
    """An append-only list of :class:`TraceRecord` with simple queries."""

    __slots__ = ("_records", "max_records")

    def __init__(self, max_records: int | None = None):
        self._records: list[TraceRecord] = []
        self.max_records = max_records

    def record(
        self,
        time: float,
        event: TraceEventType,
        *,
        task: int = -1,
        machine: int = -1,
        product: int = -1,
    ) -> None:
        """Append a record unless the trace is full."""
        if self.max_records is not None and len(self._records) >= self.max_records:
            return
        self._records.append(
            TraceRecord(time=time, event=event, task=task, machine=machine, product=product)
        )

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self._records[index]

    def filter(self, event: TraceEventType) -> list[TraceRecord]:
        """All records of a given type, in chronological order."""
        return [r for r in self._records if r.event is event]

    def count(self, event: TraceEventType) -> int:
        """Number of records of a given type."""
        return sum(1 for r in self._records if r.event is event)
