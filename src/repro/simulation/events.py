"""Event types and the event calendar of the discrete-event engine.

The engine is deliberately small but general: events are ``(time,
priority, sequence, payload)`` tuples ordered by time (then priority, then
insertion order for determinism), stored in a binary heap.  The
micro-factory simulation only needs a couple of event kinds, but the
engine is reusable for other production-line models.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass
from typing import Any

from ..exceptions import SimulationError

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(enum.IntEnum):
    """Kinds of events known to the micro-factory simulation.

    The integer value doubles as the tie-breaking priority: when several
    events share a timestamp, completions are processed before new
    arrivals so that a machine frees itself before its next job is drawn.
    """

    MACHINE_COMPLETION = 0
    PRODUCT_ARRIVAL = 1
    SOURCE_FEED = 2
    CONTROL = 3


@dataclass(frozen=True, slots=True, order=False)
class Event:
    """A scheduled event.

    Attributes
    ----------
    time:
        Simulation timestamp (same unit as the ``w`` matrix, i.e. ms).
    kind:
        Event kind (also the tie-break priority).
    payload:
        Arbitrary data interpreted by the handler (task index, machine
        index, product identifier...).
    """

    time: float
    kind: EventKind
    payload: Any = None


class EventQueue:
    """A deterministic time-ordered event calendar."""

    __slots__ = ("_heap", "_counter", "_size")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._counter = itertools.count()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def push(self, event: Event) -> None:
        """Schedule an event.  Times may not be negative."""
        if event.time < 0:
            raise SimulationError(f"event time must be non-negative, got {event.time}")
        heapq.heappush(self._heap, (event.time, int(event.kind), next(self._counter), event))
        self._size += 1

    def schedule(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Convenience wrapper building and pushing an :class:`Event`."""
        event = Event(time=time, kind=kind, payload=payload)
        self.push(event)
        return event

    def pop(self) -> Event:
        """Remove and return the next event (earliest time, lowest priority)."""
        if not self._heap:
            raise SimulationError("cannot pop from an empty event queue")
        self._size -= 1
        return heapq.heappop(self._heap)[3]

    def peek_time(self) -> float:
        """Timestamp of the next event without removing it."""
        if not self._heap:
            raise SimulationError("cannot peek into an empty event queue")
        return self._heap[0][0]

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._size = 0
