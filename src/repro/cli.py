"""Command-line interface.

Examples
--------
List the reproducible figures::

    microrepro list

Reproduce Figure 10 with a reduced sweep (3 repetitions per point)::

    microrepro run fig10 --repetitions 3 --seed 42

Run a persistent, resumable campaign over several figures and seeds::

    microrepro campaign fig5 fig6 --store results/ --repetitions 10
    microrepro campaign fig5 --seeds 0..9 --store results/   # 10-seed sweep
    microrepro resume --store results/          # picks up where it stopped
    microrepro export --store results/          # list what the store holds
    microrepro export --store results/ fig5 --seed 3 --csv

Distribute a campaign over several hosts (see ``repro.campaign``): plan
disjoint shards, ship one plan per host, run each shard into a local
store, merge the shard stores back, and export the pooled curves::

    microrepro shard plan fig5 --seeds 0..9 --shards 4 --out plans/
    scp plans/shard_2.json host2:            # one plan file per host
    microrepro shard run plans/shard_2.json --store shard_2/   # on host2
    microrepro shard run plans/campaign.json --shard 3/4 --store shard_3/
    microrepro store merge --store merged/ shard_0/ shard_1/ shard_2/ shard_3/
    microrepro export --store merged/ fig5 --aggregate seeds --csv

The merged store's cells and exports are bit-for-bit a single host's;
``export --aggregate seeds`` pools every seed's repetitions into one
mean/CI per sweep point (``--ci between`` reports between-seed CIs over
seed-level means instead), and ``microrepro shard status plans/ shard_0/
shard_1/`` summarises how complete each shard's store is against its
plan.

Serve solves over HTTP (micro-batched + cached, see ``repro.service``)
and fire one request at a running service::

    microrepro serve --port 8000 --cache-dir solve-cache/
    microrepro request --url http://127.0.0.1:8000 --heuristic H4w \
        --tasks 10 --types 3 --machines 5 --seed 7

Record request/solve spans while serving (``GET /v1/metrics`` exposes
the Prometheus counters either way) and summarize where the time went::

    microrepro serve --port 8000 --trace traces/
    microrepro trace summarize traces/ --tree

Replay a seeded failure/recovery timeline through the live replanner —
in process or against a running service's ``/v1/session`` API — and
verify warm-started replans against the cold re-solve reference::

    microrepro live --machines 8 --duration 200 --verify
    microrepro live --url http://127.0.0.1:8000 --verify --json

Solve one random instance with every heuristic and the exact MIP::

    microrepro solve --tasks 10 --types 3 --machines 5 --seed 7 --milp

The same entry point is available as ``python -m repro``.  When
``--store`` is omitted the ``REPRO_STORE`` environment variable supplies
the store directory.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from collections.abc import Sequence
from pathlib import Path

import numpy as np

from ._version import __version__
from .analysis.tables import catalog_table
from .backend import BACKEND_ENV_VAR, set_backend
from .campaign import (
    PLAN_AXES,
    PLAN_BALANCES,
    CampaignManifest,
    load_plan,
    load_shard_plans,
    merge_stores,
    parse_seed_spec,
    plan,
    run_shard,
    status_payload,
    status_rows,
    write_plans,
)
from .core.failure import FailureModel
from .core.instance import ProblemInstance
from .core.platform import Platform
from .dag import (
    artifact_store_for,
    build_pipeline,
    run_pipeline,
    unit_cost,
)
from .exact.milp import solve_specialized_milp
from .exceptions import ExperimentError, ReproError
from .experiments.figures import FIGURES, figure_ids
from .experiments.reporting import (
    CI_MODES,
    aggregate_report,
    aggregate_seeds,
    campaign_report,
    figure_report,
    summary_line,
)
from .experiments.runner import run_figure
from .experiments.store import ResultStore
from .generators.applications import random_chain_application
from .generators.platforms import random_failure_rates, random_processing_times
from .heuristics import PAPER_HEURISTICS, get_heuristic
from .live import LiveConfig, compare_reports, run_timeline, run_timeline_remote
from .obs.summary import format_table, format_tree, load_spans, summarize_spans
from .obs.trace import TRACE_ENV_VAR
from .obs.trace import configure as configure_tracing
from .service.batcher import DEFAULT_MAX_BATCH, DEFAULT_WINDOW_SECONDS
from .service.client import ServiceClient
from .service.server import serve as serve_service
from .service.sessions import DEFAULT_MAX_SESSIONS, DEFAULT_SESSION_TTL

__all__ = ["main", "build_parser"]

#: Environment variable consulted when ``--store`` is not given.
STORE_ENV_VAR = "REPRO_STORE"
#: Name of the campaign manifest file inside a store directory.
CAMPAIGN_MANIFEST = "campaign.json"


def _add_store_argument(parser: argparse.ArgumentParser, *, required_hint: bool) -> None:
    suffix = "" if not required_hint else " (required unless $REPRO_STORE is set)"
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help=f"result-store directory; defaults to ${STORE_ENV_VAR}{suffix}",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="microrepro",
        description=(
            "Throughput optimization for micro-factories subject to task and machine "
            "failures — reproduction toolkit."
        ),
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help=(
            "kernel backend for the hot solve loops (e.g. numpy, numba); "
            f"overrides ${BACKEND_ENV_VAR}.  Defaults to auto-detection "
            "(numba when importable, else numpy).  All backends produce "
            "bit-for-bit identical results."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list reproducible figures")
    list_parser.set_defaults(func=_cmd_list)

    run_parser = subparsers.add_parser("run", help="reproduce one figure of the paper")
    run_parser.add_argument("figure", choices=figure_ids(), help="figure identifier")
    run_parser.add_argument("--seed", type=int, default=0, help="root random seed")
    run_parser.add_argument(
        "--repetitions", type=int, default=None, help="repetitions per sweep point"
    )
    run_parser.add_argument(
        "--max-points", type=int, default=None, help="maximum number of sweep points"
    )
    run_parser.add_argument(
        "--no-milp", action="store_true", help="skip the exact MIP even if the figure uses it"
    )
    run_parser.add_argument(
        "--milp-time-limit", type=float, default=30.0, help="per-instance MIP time limit (s)"
    )
    run_parser.add_argument("--csv", action="store_true", help="print CSV instead of a table")
    run_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "run repetition blocks on a process pool of this size (heuristic/OtO "
            "curves match the serial run exactly; MIP cells may time out "
            "under CPU oversubscription)"
        ),
    )
    run_parser.add_argument(
        "--engine",
        choices=("block", "cells"),
        default="block",
        help="block-scheduled engine (default) or the per-cell reference path",
    )
    run_parser.add_argument(
        "--memoize-instances",
        action="store_true",
        help=(
            "cache sampled instances per process (pays off with --workers, "
            "where curve jobs share each sweep point's instances)"
        ),
    )
    run_parser.add_argument(
        "--optional-curves",
        action="store_true",
        help="also run the figure's optional curves (e.g. H4ls on fig6)",
    )
    _add_store_argument(run_parser, required_hint=False)
    run_parser.add_argument(
        "--resume",
        action="store_true",
        help="with --store: skip blocks whose results are already stored",
    )
    run_parser.set_defaults(func=_cmd_run)

    campaign_parser = subparsers.add_parser(
        "campaign",
        help="run several figures into a persistent result store (resumable)",
    )
    campaign_parser.add_argument(
        "figures", nargs="+", choices=figure_ids(), help="figures to run, in order"
    )
    _add_store_argument(campaign_parser, required_hint=True)
    campaign_parser.add_argument("--seed", type=int, default=None, help="root random seed")
    campaign_parser.add_argument(
        "--seeds",
        default=None,
        metavar="SPEC",
        help=(
            "run every figure once per seed: an inclusive range '0..9', a "
            "comma list '0,5,9', or a mix; replaces --seed"
        ),
    )
    campaign_parser.add_argument(
        "--repetitions", type=int, default=None, help="repetitions per sweep point"
    )
    campaign_parser.add_argument(
        "--max-points", type=int, default=None, help="maximum number of sweep points"
    )
    campaign_parser.add_argument(
        "--no-milp", action="store_true", help="skip the exact MIP everywhere"
    )
    campaign_parser.add_argument(
        "--milp-time-limit", type=float, default=30.0, help="per-instance MIP time limit (s)"
    )
    campaign_parser.add_argument(
        "--workers", type=int, default=None, help="block process-pool size"
    )
    campaign_parser.add_argument(
        "--optional-curves",
        action="store_true",
        help="also run each figure's optional curves",
    )
    campaign_parser.add_argument(
        "--memoize-instances",
        action="store_true",
        help="cache sampled instances per process (pays off with --workers)",
    )
    campaign_parser.set_defaults(func=_cmd_campaign)

    resume_parser = subparsers.add_parser(
        "resume",
        help="finish an interrupted campaign without recomputing stored blocks",
    )
    _add_store_argument(resume_parser, required_hint=True)
    resume_parser.add_argument(
        "--workers", type=int, default=None, help="override the manifest's worker count"
    )
    resume_parser.set_defaults(func=_cmd_resume)

    export_parser = subparsers.add_parser(
        "export", help="list a result store or print its stored figures"
    )
    export_parser.add_argument(
        "figures",
        nargs="*",
        help="figures to print (default: list the store's catalogue)",
    )
    _add_store_argument(export_parser, required_hint=True)
    export_parser.add_argument(
        "--seed", type=int, default=None, help="disambiguate runs by seed"
    )
    export_parser.add_argument(
        "--scenario-hash",
        default=None,
        metavar="HASH",
        help=(
            "disambiguate runs stored at several scales (hashes are listed "
            "in the store catalogue)"
        ),
    )
    export_parser.add_argument(
        "--csv", action="store_true", help="print CSV instead of tables"
    )
    export_parser.add_argument(
        "--aggregate",
        choices=("seeds",),
        default=None,
        help=(
            "pool every stored seed of each figure into one cross-seed "
            "mean/CI per sweep point"
        ),
    )
    export_parser.add_argument(
        "--ci",
        choices=CI_MODES,
        default="pooled",
        help=(
            "with --aggregate seeds: 'pooled' treats all R x S samples as "
            "one draw; 'between' reports Student CIs over the S seed-level "
            "means (df = S - 1)"
        ),
    )
    export_parser.set_defaults(func=_cmd_export)

    shard_parser = subparsers.add_parser(
        "shard",
        help="plan and execute distributed campaign shards (see 'store merge')",
    )
    shard_sub = shard_parser.add_subparsers(dest="shard_command", required=True)

    plan_parser = shard_sub.add_parser(
        "plan", help="split a campaign into disjoint per-host work-unit manifests"
    )
    plan_parser.add_argument(
        "figures", nargs="+", choices=figure_ids(), help="figures to run"
    )
    plan_parser.add_argument(
        "--seeds", default="0", metavar="SPEC", help="seed axis, e.g. '0..9' or '0,5,9'"
    )
    plan_parser.add_argument(
        "--shards", type=int, required=True, help="number of worker shards"
    )
    plan_parser.add_argument(
        "--by",
        choices=PLAN_AXES,
        default="seed",
        help="partition axis: whole seeds, (figure, seed, curve) groups, or blocks",
    )
    plan_parser.add_argument(
        "--balance",
        choices=PLAN_BALANCES,
        default="round_robin",
        help=(
            "shard balancing: 'round_robin' levels unit counts, 'cost' levels "
            "estimated durations (MIP blocks ~100x heuristic blocks, see "
            "repro.dag.cost)"
        ),
    )
    plan_parser.add_argument(
        "--out", required=True, metavar="DIR", help="directory for the plan files"
    )
    plan_parser.add_argument(
        "--repetitions", type=int, default=None, help="repetitions per sweep point"
    )
    plan_parser.add_argument(
        "--max-points", type=int, default=None, help="maximum number of sweep points"
    )
    plan_parser.add_argument(
        "--no-milp", action="store_true", help="skip the exact MIP everywhere"
    )
    plan_parser.add_argument(
        "--milp-time-limit", type=float, default=30.0, help="per-instance MIP time limit (s)"
    )
    plan_parser.add_argument(
        "--optional-curves",
        action="store_true",
        help="also plan each figure's optional curves",
    )
    plan_parser.set_defaults(func=_cmd_shard_plan)

    shard_run_parser = shard_sub.add_parser(
        "run", help="execute one shard's units into a local result store"
    )
    shard_run_parser.add_argument(
        "plan",
        metavar="PLAN",
        help="a shard_k.json from 'shard plan', or the campaign.json with --shard",
    )
    shard_run_parser.add_argument(
        "--shard",
        default=None,
        metavar="K/N",
        help="which shard to run when PLAN is a campaign manifest (e.g. 2/4)",
    )
    shard_run_parser.add_argument(
        "--by",
        choices=PLAN_AXES,
        default=None,
        help="partition axis override when re-planning from a campaign manifest",
    )
    shard_run_parser.add_argument(
        "--balance",
        choices=PLAN_BALANCES,
        default=None,
        help="balancing override when re-planning from a campaign manifest",
    )
    _add_store_argument(shard_run_parser, required_hint=True)
    shard_run_parser.add_argument(
        "--workers", type=int, default=None, help="block process-pool size on this host"
    )
    shard_run_parser.add_argument(
        "--no-resume",
        action="store_true",
        help="recompute blocks even when the shard store already holds them",
    )
    shard_run_parser.set_defaults(func=_cmd_shard_run)

    status_parser = shard_sub.add_parser(
        "status",
        help="summarise per-shard store completeness against the plan",
    )
    status_parser.add_argument(
        "plan",
        metavar="PLAN",
        help="planner output: the plans/ directory, campaign.json, or one shard_k.json",
    )
    status_parser.add_argument(
        "stores",
        nargs="+",
        metavar="STORE_DIR",
        help=(
            "one store per shard (in shard order), or a single merged store "
            "checked against every shard"
        ),
    )
    status_parser.add_argument(
        "--json",
        action="store_true",
        help=(
            "machine-readable output: per-shard done/partial/missing rows plus "
            "campaign totals (same document 'dag status --json' prints)"
        ),
    )
    status_parser.set_defaults(func=_cmd_shard_status)

    store_parser = subparsers.add_parser(
        "store", help="result-store utilities (merge shard stores)"
    )
    store_sub = store_parser.add_subparsers(dest="store_command", required=True)

    merge_parser = store_sub.add_parser(
        "merge",
        help=(
            "union shard stores into one (conflict-checked, idempotent); "
            "the destination then serves resume/export like any store"
        ),
    )
    merge_parser.add_argument(
        "sources", nargs="+", metavar="SHARD_DIR", help="shard store directories"
    )
    _add_store_argument(merge_parser, required_hint=True)
    merge_parser.set_defaults(func=_cmd_store_merge)

    dag_parser = subparsers.add_parser(
        "dag",
        help=(
            "content-addressed campaign pipeline: plan/run/status of the "
            "generate -> solve -> aggregate -> render stage DAG"
        ),
    )
    dag_sub = dag_parser.add_subparsers(dest="dag_command", required=True)

    def _add_manifest_arguments(target, *, run_knobs: bool) -> None:
        target.add_argument(
            "figures", nargs="+", choices=figure_ids(), help="figures to run"
        )
        target.add_argument(
            "--seeds",
            default="0",
            metavar="SPEC",
            help="seed axis, e.g. '0..9' or '0,5,9'",
        )
        target.add_argument(
            "--repetitions", type=int, default=None, help="repetitions per sweep point"
        )
        target.add_argument(
            "--max-points", type=int, default=None, help="maximum number of sweep points"
        )
        target.add_argument(
            "--no-milp", action="store_true", help="skip the exact MIP everywhere"
        )
        target.add_argument(
            "--milp-time-limit",
            type=float,
            default=30.0,
            help="per-instance MIP time limit (s)",
        )
        target.add_argument(
            "--optional-curves",
            action="store_true",
            help="also run each figure's optional curves",
        )
        if run_knobs:
            target.add_argument(
                "--workers", type=int, default=None, help="block process-pool size"
            )
            target.add_argument(
                "--memoize-instances",
                action="store_true",
                help="cache sampled instances per process (pays off with --workers)",
            )

    dag_plan_parser = dag_sub.add_parser(
        "plan",
        help="compile the campaign DAG and report stages, costs and cache status",
    )
    _add_manifest_arguments(dag_plan_parser, run_knobs=False)
    dag_plan_parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="also show the shard partition for N worker hosts",
    )
    dag_plan_parser.add_argument(
        "--by",
        choices=PLAN_AXES,
        default="seed",
        help="partition axis for --shards",
    )
    dag_plan_parser.add_argument(
        "--balance",
        choices=PLAN_BALANCES,
        default="cost",
        help="shard balancing policy for --shards (default: cost)",
    )
    _add_store_argument(dag_plan_parser, required_hint=False)
    dag_plan_parser.set_defaults(func=_cmd_dag_plan)

    dag_run_parser = dag_sub.add_parser(
        "run",
        help=(
            "execute the campaign DAG against a store; cached stages are "
            "skipped, so re-running an unchanged campaign performs zero solves"
        ),
    )
    _add_manifest_arguments(dag_run_parser, run_knobs=True)
    _add_store_argument(dag_run_parser, required_hint=True)
    dag_run_parser.add_argument(
        "--no-resume",
        action="store_true",
        help=(
            "recompute every solve even when its artifact is cached "
            "(downstream stages keep hitting: same inputs, same keys)"
        ),
    )
    dag_run_parser.add_argument(
        "--export-dir",
        default=None,
        metavar="DIR",
        help=(
            "also write each figure's per-seed CSVs and the cross-seed "
            "aggregate CSV into DIR"
        ),
    )
    dag_run_parser.set_defaults(func=_cmd_dag_run)

    dag_status_parser = dag_sub.add_parser(
        "status",
        help="stage completeness of the store's campaign (from its campaign.json)",
    )
    _add_store_argument(dag_status_parser, required_hint=True)
    dag_status_parser.add_argument(
        "--json",
        action="store_true",
        help=(
            "machine-readable output: the same per-shard/totals document "
            "'shard status --json' prints"
        ),
    )
    dag_status_parser.set_defaults(func=_cmd_dag_status)

    solve_parser = subparsers.add_parser(
        "solve", help="solve one random instance with every heuristic"
    )
    solve_parser.add_argument("--tasks", type=int, default=10, help="number of tasks n")
    solve_parser.add_argument("--types", type=int, default=3, help="number of task types p")
    solve_parser.add_argument("--machines", type=int, default=5, help="number of machines m")
    solve_parser.add_argument("--seed", type=int, default=0, help="random seed")
    solve_parser.add_argument(
        "--high-failures", action="store_true", help="draw failure rates in [0, 10%%]"
    )
    solve_parser.add_argument(
        "--milp", action="store_true", help="also solve the exact MIP for comparison"
    )
    solve_parser.set_defaults(func=_cmd_solve)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the micro-batched solve service (HTTP JSON, see repro.service)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument(
        "--port", type=int, default=8000, help="bind port (0 picks a free one)"
    )
    serve_parser.add_argument(
        "--window-ms",
        type=float,
        default=DEFAULT_WINDOW_SECONDS * 1000.0,
        help="micro-batching window: how long the first request of a group "
        "waits for compatible company (milliseconds)",
    )
    serve_parser.add_argument(
        "--max-batch",
        type=int,
        default=DEFAULT_MAX_BATCH,
        help="flush a group immediately once it reaches this many requests",
    )
    serve_parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist solved responses here (restart-warm cache); omit for "
        "an in-memory-only cache",
    )
    serve_parser.add_argument(
        "--cache-capacity",
        type=int,
        default=1024,
        help="in-memory LRU size (0 disables the memory tier)",
    )
    serve_parser.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="bound the persistent cache's append log; exceeding it "
        "compacts the log and evicts the oldest entries (needs "
        "--cache-dir; omit for unbounded)",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="solve in a pool of this many worker processes "
        "(0 = in-process executor threads)",
    )
    serve_parser.add_argument(
        "--max-pending",
        type=int,
        default=0,
        help="admission limit: shed new distinct requests with HTTP 429 "
        "once this many solves are pending (0 = unlimited)",
    )
    serve_parser.add_argument(
        "--session-ttl",
        type=float,
        default=DEFAULT_SESSION_TTL,
        help="idle expiry of live replanning sessions (seconds)",
    )
    serve_parser.add_argument(
        "--max-sessions",
        type=int,
        default=DEFAULT_MAX_SESSIONS,
        help="bound on concurrently open sessions (new ones shed with 429)",
    )
    serve_parser.add_argument(
        "--trace",
        default=None,
        metavar="DIR",
        help="record request/solve spans into this trace store directory "
        f"(defaults to ${TRACE_ENV_VAR}; omit both to disable tracing); "
        "inspect with 'microrepro trace summarize DIR'",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    trace_parser = subparsers.add_parser(
        "trace",
        help="inspect recorded trace spans (see 'serve --trace')",
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)
    trace_summarize_parser = trace_sub.add_parser(
        "summarize",
        help="aggregate a trace store into a per-span hot-path table",
    )
    trace_summarize_parser.add_argument(
        "path",
        metavar="PATH",
        help="trace store directory (or a bare trace.jsonl file)",
    )
    trace_summarize_parser.add_argument(
        "--tree",
        action="store_true",
        help="also print the span tree of one trace (newest by default)",
    )
    trace_summarize_parser.add_argument(
        "--trace-id",
        default=None,
        metavar="ID",
        help="which trace the --tree view shows (default: the newest)",
    )
    trace_summarize_parser.add_argument(
        "--json", action="store_true", help="print the aggregates as JSON"
    )
    trace_summarize_parser.set_defaults(func=_cmd_trace_summarize)

    request_parser = subparsers.add_parser(
        "request",
        help="send one solve request to a running service and print the response",
    )
    request_parser.add_argument(
        "--url", default="http://127.0.0.1:8000", help="service base URL"
    )
    request_parser.add_argument(
        "--heuristic", default="H4w", help="registered heuristic to run"
    )
    request_parser.add_argument("--tasks", type=int, default=10, help="number of tasks n")
    request_parser.add_argument("--types", type=int, default=3, help="number of task types p")
    request_parser.add_argument("--machines", type=int, default=5, help="number of machines m")
    request_parser.add_argument("--seed", type=int, default=0, help="instance draw seed")
    request_parser.add_argument(
        "--repetition", type=int, default=0, help="repetition index of the draw"
    )
    request_parser.set_defaults(func=_cmd_request)

    live_parser = subparsers.add_parser(
        "live",
        help=(
            "run a seeded fail/recover timeline through the live replanner "
            "(in process, or against a running service's session API)"
        ),
    )
    live_parser.add_argument("--tasks", type=int, default=12, help="number of tasks n")
    live_parser.add_argument("--types", type=int, default=3, help="number of task types p")
    live_parser.add_argument("--machines", type=int, default=6, help="number of machines m")
    live_parser.add_argument(
        "--heuristic",
        default="H4ls",
        help="deterministic heuristic for the initial solve and cold replans",
    )
    live_parser.add_argument("--seed", type=int, default=0, help="instance draw seed")
    live_parser.add_argument(
        "--repetition", type=int, default=0, help="repetition index of the draw"
    )
    live_parser.add_argument(
        "--duration", type=float, default=100.0, help="timeline horizon (seconds)"
    )
    live_parser.add_argument(
        "--mtbf", type=float, default=60.0, help="mean time between failures per machine"
    )
    live_parser.add_argument(
        "--mttr", type=float, default=15.0, help="mean time to recovery per machine"
    )
    live_parser.add_argument(
        "--arrival-rate",
        type=float,
        default=0.1,
        help="Poisson rate of solve-request probe events (per second)",
    )
    live_parser.add_argument(
        "--url",
        default=None,
        metavar="URL",
        help="run the timeline against a running service's /v1/session API "
        "instead of in process",
    )
    live_parser.add_argument(
        "--cold",
        action="store_true",
        help="replan without warm starts (the cold re-solve reference)",
    )
    live_parser.add_argument(
        "--verify",
        action="store_true",
        help="also run the other mode(s) and require bit-for-bit agreement "
        "(warm == cold re-solve; with --url, remote == local too)",
    )
    live_parser.add_argument(
        "--json", action="store_true", help="print the full report as JSON"
    )
    live_parser.set_defaults(func=_cmd_live)

    return parser


def _store_path(args: argparse.Namespace, *, required: bool) -> str | None:
    path = args.store or os.environ.get(STORE_ENV_VAR)
    if path is None and required:
        raise ExperimentError(
            f"this command needs a store: pass --store DIR or set ${STORE_ENV_VAR}"
        )
    return path


def _cmd_list(args: argparse.Namespace) -> int:
    for figure_id in figure_ids():
        spec = FIGURES[figure_id]
        suffix = " (normalised by the MIP)" if spec.normalize_to else ""
        if spec.optional_curves:
            suffix += f" [optional: {', '.join(spec.optional_curves)}]"
        print(f"{figure_id:7s} {spec.scenario.description}{suffix}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    store_path = _store_path(args, required=args.resume)
    if args.engine == "cells" and args.store is None:
        # The per-cell reference engine has no store support; only an
        # explicit --store should surface that as an error, not the
        # $REPRO_STORE convenience fallback.
        store_path = None
    store = ResultStore(store_path) if store_path is not None else None
    try:
        result = run_figure(
            args.figure,
            seed=args.seed,
            repetitions=args.repetitions,
            max_points=args.max_points,
            include_milp=False if args.no_milp else None,
            milp_time_limit=args.milp_time_limit,
            workers=args.workers,
            memoize_instances=args.memoize_instances,
            engine=args.engine,
            include_optional=args.optional_curves,
            store=store,
            resume=args.resume,
        )
    finally:
        if store is not None:
            store.close()
    if args.csv:
        print(result.to_csv(), end="")
    else:
        print(figure_report(result))
    return 0


def _run_campaign(manifest: CampaignManifest, store: ResultStore) -> list:
    """Run (or finish) every (figure, seed) run of a campaign manifest.

    Since the campaign DAG landed this is a thin wrapper over
    :func:`repro.dag.scheduler.execute_solves`: each run's solve stages
    execute (or cache-hit) in manifest order, the store receives the
    same cells and run headers as before, and the per-run summary lines
    keep printing as each run completes.
    """
    from .dag.scheduler import execute_solves

    pipeline = build_pipeline(manifest)
    artifacts = artifact_store_for(store.path)
    results = []
    for figure_id in manifest.figures:
        scenario_hash = manifest.scenario_for(figure_id).stable_hash()
        for seed in manifest.seeds:
            solves = [
                stage
                for unit, stage in pipeline.solves.items()
                if unit.figure_id == figure_id and unit.seed == seed
            ]
            execute_solves(
                pipeline, solves, store, artifacts, workers=manifest.workers
            )
            result = store.load_result(
                figure_id, scenario_hash=scenario_hash, seed=seed
            )
            print(summary_line(result), flush=True)
            results.append(result)
    artifacts.flush()
    store.flush()
    return results


def _campaign_seeds(args: argparse.Namespace) -> tuple[int, ...]:
    """The seed axis from ``--seeds SPEC`` / the legacy ``--seed N``."""
    if args.seeds is not None and args.seed is not None:
        raise ExperimentError("pass either --seed or --seeds, not both")
    if args.seeds is not None:
        return parse_seed_spec(args.seeds)
    return (args.seed if args.seed is not None else 0,)


def _cmd_campaign(args: argparse.Namespace) -> int:
    store = ResultStore(_store_path(args, required=True))
    manifest = CampaignManifest(
        figures=tuple(args.figures),
        seeds=_campaign_seeds(args),
        repetitions=args.repetitions,
        max_points=args.max_points,
        no_milp=bool(args.no_milp),
        milp_time_limit=args.milp_time_limit,
        workers=args.workers,
        optional_curves=bool(args.optional_curves),
        memoize_instances=bool(args.memoize_instances),
    )
    manifest_path = store.path / CAMPAIGN_MANIFEST
    manifest_path.write_text(
        json.dumps(manifest.to_dict(), indent=2), encoding="utf-8"
    )
    try:
        results = _run_campaign(manifest, store)
    finally:
        store.close()
    print(campaign_report(results).splitlines()[-1])
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    store = ResultStore(_store_path(args, required=True))
    manifest_path = store.path / CAMPAIGN_MANIFEST
    if not manifest_path.exists():
        raise ExperimentError(
            f"no {CAMPAIGN_MANIFEST} in {store.path}; start with 'microrepro campaign'"
        )
    # from_dict also reads pre-multi-seed manifests (scalar "seed" field).
    manifest = CampaignManifest.from_dict(
        json.loads(manifest_path.read_text(encoding="utf-8"))
    )
    if args.workers is not None:
        manifest = dataclasses.replace(manifest, workers=args.workers)
    try:
        results = _run_campaign(manifest, store)
    finally:
        store.close()
    print(campaign_report(results).splitlines()[-1])
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    store = ResultStore(_store_path(args, required=True))
    try:
        if args.aggregate and not args.figures:
            raise ExperimentError("--aggregate needs explicit figure names to pool")
        if args.aggregate and args.seed is not None:
            raise ExperimentError(
                "--aggregate pools every stored seed; it cannot be combined "
                "with --seed"
            )
        if args.ci != "pooled" and not args.aggregate:
            raise ExperimentError("--ci only applies together with --aggregate seeds")
        if not args.figures:
            print(catalog_table(store.catalog()))
            return 0
        for figure_id in args.figures:
            if args.aggregate == "seeds":
                result, seeds = aggregate_seeds(
                    store, figure_id, scenario_hash=args.scenario_hash, ci=args.ci
                )
                if args.csv:
                    print(result.to_csv(), end="")
                else:
                    print(aggregate_report(result, seeds, ci=args.ci))
                continue
            result = store.load_result(
                figure_id, scenario_hash=args.scenario_hash, seed=args.seed
            )
            if args.csv:
                print(result.to_csv(), end="")
            else:
                print(figure_report(result))
    finally:
        store.close()
    return 0


def _cmd_shard_plan(args: argparse.Namespace) -> int:
    manifest = CampaignManifest(
        figures=tuple(args.figures),
        seeds=parse_seed_spec(args.seeds),
        repetitions=args.repetitions,
        max_points=args.max_points,
        no_milp=bool(args.no_milp),
        milp_time_limit=args.milp_time_limit,
        optional_curves=bool(args.optional_curves),
    )
    written = write_plans(
        manifest, args.out, shards=args.shards, by=args.by, balance=args.balance
    )
    total = sum(len(shard.units) for _, shard in written)
    print(
        f"planned {total} work unit(s) over {len(written)} shard(s) "
        f"by {args.by} ({args.balance}) into {args.out}"
    )
    for path, shard in written:
        cost = sum(unit_cost(manifest, unit) for unit in shard.units)
        print(f"  {path}  ({len(shard.units)} unit(s), est. cost {cost:.0f})")
    return 0


def _parse_shard_coords(text: str) -> tuple[int, int]:
    index_text, sep, total_text = text.partition("/")
    try:
        if not sep:
            raise ValueError(text)
        return int(index_text), int(total_text)
    except ValueError as exc:
        raise ExperimentError(f"bad --shard {text!r}; expected K/N (e.g. 2/4)") from exc


def _cmd_shard_run(args: argparse.Namespace) -> int:
    shard = load_plan(
        args.plan,
        shard=None if args.shard is None else _parse_shard_coords(args.shard),
        by=args.by,
        balance=args.balance,
    )
    with ResultStore(_store_path(args, required=True)) as store:
        report = run_shard(
            shard,
            store,
            workers=args.workers,
            resume=not args.no_resume,
            log=lambda line: print(line, flush=True),
        )
    print(report.summary())
    return 0


def _cmd_store_merge(args: argparse.Namespace) -> int:
    report = merge_stores(_store_path(args, required=True), args.sources)
    print(report.summary())
    return 0


def _print_status(rows, *, as_json: bool) -> int:
    """Render shard-status rows (table or the shared JSON document)."""
    payload = status_payload(rows)
    if as_json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(catalog_table([row.as_row() for row in rows]))
        pending = payload["units"] - payload["done"]
        print(
            f"{payload['done']}/{payload['units']} unit(s) stored at full depth"
            + (f", {pending} pending" if pending else "; campaign complete")
        )
    return 0 if payload["complete"] else 1


def _cmd_shard_status(args: argparse.Namespace) -> int:
    plans = load_shard_plans(args.plan)
    rows = status_rows(plans, args.stores)
    return _print_status(rows, as_json=args.json)


def _dag_manifest(args: argparse.Namespace) -> CampaignManifest:
    """The campaign manifest a ``dag`` subcommand's arguments describe."""
    return CampaignManifest(
        figures=tuple(args.figures),
        seeds=parse_seed_spec(args.seeds),
        repetitions=args.repetitions,
        max_points=args.max_points,
        no_milp=bool(args.no_milp),
        milp_time_limit=args.milp_time_limit,
        workers=getattr(args, "workers", None),
        optional_curves=bool(args.optional_curves),
        memoize_instances=bool(getattr(args, "memoize_instances", False)),
    )


def _cmd_dag_plan(args: argparse.Namespace) -> int:
    manifest = _dag_manifest(args)
    pipeline = build_pipeline(manifest)
    counts = pipeline.counts()
    total = sum(counts.values())
    per_kind = ", ".join(f"{kind}: {count}" for kind, count in counts.items())
    cost = sum(unit_cost(manifest, unit) for unit in pipeline.solves)
    print(f"{total} stage(s) ({per_kind}); est. solve cost {cost:.0f}")
    if args.shards > 1:
        shards = plan(manifest, shards=args.shards, by=args.by, balance=args.balance)
        print(f"partition by {args.by} ({args.balance}) over {args.shards} shard(s):")
        for shard in shards:
            shard_cost = sum(unit_cost(manifest, unit) for unit in shard.units)
            print(
                f"  shard {shard.index}/{shard.shards}: "
                f"{len(shard.units)} unit(s), est. cost {shard_cost:.0f}"
            )
    store_path = _store_path(args, required=False)
    if store_path is not None:
        artifacts = artifact_store_for(store_path)
        try:
            cached = sum(1 for stage in pipeline.stages() if artifacts.has(stage.key))
        finally:
            artifacts.close()
        print(f"artifact cache at {store_path}: {cached}/{total} stage(s) cached")
    return 0


def _cmd_dag_run(args: argparse.Namespace) -> int:
    manifest = _dag_manifest(args)
    store = ResultStore(_store_path(args, required=True))
    manifest_path = store.path / CAMPAIGN_MANIFEST
    manifest_path.write_text(
        json.dumps(manifest.to_dict(), indent=2), encoding="utf-8"
    )
    pipeline = build_pipeline(manifest)
    try:
        run = run_pipeline(
            pipeline,
            store,
            workers=manifest.workers,
            resume=not args.no_resume,
            log=lambda line: print(line, flush=True),
        )
    finally:
        store.close()
    if args.export_dir is not None:
        _write_dag_exports(run.renders, args.export_dir)
    print(run.report.summary())
    return 0


def _write_dag_exports(renders: dict, export_dir: str) -> None:
    """Write each figure's per-seed and aggregate CSVs under ``export_dir``."""
    target = Path(export_dir)
    target.mkdir(parents=True, exist_ok=True)
    written = 0
    for figure_id, output in sorted(renders.items()):
        for seed, csv_text in sorted(
            output["per_seed"].items(), key=lambda item: int(item[0])
        ):
            (target / f"{figure_id}_seed{seed}.csv").write_text(
                csv_text, encoding="utf-8"
            )
            written += 1
        if output.get("aggregate") is not None:
            (target / f"{figure_id}_aggregate.csv").write_text(
                output["aggregate"], encoding="utf-8"
            )
            written += 1
    print(f"exported {written} CSV file(s) to {target}")


def _cmd_dag_status(args: argparse.Namespace) -> int:
    store_path = _store_path(args, required=True)
    plans = load_shard_plans(store_path)
    rows = status_rows(plans, [store_path])
    return _print_status(rows, as_json=args.json)


def _cmd_serve(args: argparse.Namespace) -> int:
    serve_service(
        host=args.host,
        port=args.port,
        window=args.window_ms / 1000.0,
        max_batch=args.max_batch,
        cache_dir=args.cache_dir,
        cache_capacity=args.cache_capacity,
        cache_max_bytes=args.cache_max_bytes,
        workers=args.workers,
        max_pending=args.max_pending or None,
        session_ttl=args.session_ttl,
        max_sessions=args.max_sessions,
        trace=args.trace or os.environ.get(TRACE_ENV_VAR) or None,
    )
    return 0


def _cmd_trace_summarize(args: argparse.Namespace) -> int:
    spans = load_spans(args.path)
    aggregates = summarize_spans(spans)
    if args.json:
        payload = {
            "spans": len(spans),
            "aggregates": [
                {
                    "name": aggregate.name,
                    "count": aggregate.count,
                    "total_seconds": round(aggregate.total_seconds, 6),
                    "self_seconds": round(aggregate.self_seconds, 6),
                    "mean_ms": round(aggregate.mean_ms, 3),
                }
                for aggregate in aggregates
            ],
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(format_table(aggregates))
    if args.tree:
        print()
        print(format_tree(spans, trace_id=args.trace_id))
    return 0


def _cmd_request(args: argparse.Namespace) -> int:
    with ServiceClient(args.url) as client:
        response = client.solve(
            {
                "heuristic": args.heuristic,
                "application": {"tasks": args.tasks, "types": args.types},
                "platform": {"machines": args.machines},
                "options": {"seed": args.seed, "repetition": args.repetition},
            }
        )
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0


def _cmd_live(args: argparse.Namespace) -> int:
    config = LiveConfig(
        tasks=args.tasks,
        types=args.types,
        machines=args.machines,
        heuristic=args.heuristic,
        seed=args.seed,
        repetition=args.repetition,
        duration=args.duration,
        mtbf=args.mtbf,
        mttr=args.mttr,
        arrival_rate=args.arrival_rate,
    )
    if args.url is not None:
        with ServiceClient(args.url) as client:
            report = run_timeline_remote(config, client)
    else:
        report = run_timeline(config, warm=not args.cold)
    verified = False
    if args.verify:
        # The cold re-solve run is the ground truth; a warm (or remote)
        # run must match it bit for bit on every event.
        local = args.url is None
        cold = report if local and args.cold else run_timeline(config, warm=False)
        warm = report if local and not args.cold else run_timeline(config, warm=True)
        compare_reports(cold, warm)
        if not local:
            compare_reports(warm, report)
        verified = True
    if args.json:
        payload = report.to_dict()
        payload["verified"] = verified
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for line in report.summary_lines():
            print(line)
        if verified:
            print(
                "verified: warm == cold re-solve bit for bit"
                + ("" if args.url is None else " == remote session")
            )
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    application = random_chain_application(args.tasks, args.types, rng)
    w = random_processing_times(application.types, args.machines, rng)
    f_high = 0.10 if args.high_failures else 0.02
    f_low = 0.0 if args.high_failures else 0.005
    f = random_failure_rates(args.tasks, args.machines, rng, low=f_low, high=f_high)
    instance = ProblemInstance(
        application,
        Platform(w, types=application.types),
        FailureModel(f),
        name="cli-instance",
    )

    print(
        f"Random linear chain: n={args.tasks} tasks, p={args.types} types, "
        f"m={args.machines} machines (seed={args.seed})"
    )
    rows = []
    for name in PAPER_HEURISTICS:
        heuristic = get_heuristic(name)
        result = heuristic.solve(instance, np.random.default_rng(args.seed))
        rows.append((name, result.period, result.throughput * 1000.0))
    if args.milp:
        milp = solve_specialized_milp(instance)
        if milp.is_optimal:
            rows.append(("MIP", milp.period, 1000.0 / milp.period))
        else:
            print(f"MIP did not prove optimality ({milp.status}: {milp.message})")

    width = max(len(name) for name, _, _ in rows)
    print(f"{'method'.ljust(width)}  period(ms)  throughput(/s)")
    for name, period, thr in sorted(rows, key=lambda row: row[1]):
        print(f"{name.ljust(width)}  {period:10.1f}  {thr:14.4f}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Library errors (bad store paths, missing manifests, unknown curves,
    ...) surface as a one-line message and exit code 2, not a traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.backend is not None:
            set_backend(args.backend)
        # Tracing is process-wide: $REPRO_TRACE switches it on for any
        # command (campaign/dag runs trace too, not just `serve`, whose
        # --trace flag still takes precedence over the variable).
        trace_dir = os.environ.get(TRACE_ENV_VAR)
        if trace_dir and getattr(args, "trace", None) is None:
            configure_tracing(trace_dir)
        return int(args.func(args))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
