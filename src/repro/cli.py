"""Command-line interface.

Examples
--------
List the reproducible figures::

    microrepro list

Reproduce Figure 10 with a reduced sweep (3 repetitions per point)::

    microrepro run fig10 --repetitions 3 --seed 42

Solve one random instance with every heuristic and the exact MIP::

    microrepro solve --tasks 10 --types 3 --machines 5 --seed 7 --milp

The same entry point is available as ``python -m repro``.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

import numpy as np

from ._version import __version__
from .core.failure import FailureModel
from .core.instance import ProblemInstance
from .core.platform import Platform
from .exact.milp import solve_specialized_milp
from .experiments.figures import FIGURES, figure_ids
from .experiments.reporting import figure_report
from .experiments.runner import run_figure
from .generators.applications import random_chain_application
from .generators.platforms import random_failure_rates, random_processing_times
from .heuristics import PAPER_HEURISTICS, get_heuristic

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="microrepro",
        description=(
            "Throughput optimization for micro-factories subject to task and machine "
            "failures — reproduction toolkit."
        ),
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list reproducible figures")
    list_parser.set_defaults(func=_cmd_list)

    run_parser = subparsers.add_parser("run", help="reproduce one figure of the paper")
    run_parser.add_argument("figure", choices=figure_ids(), help="figure identifier")
    run_parser.add_argument("--seed", type=int, default=0, help="root random seed")
    run_parser.add_argument(
        "--repetitions", type=int, default=None, help="repetitions per sweep point"
    )
    run_parser.add_argument(
        "--max-points", type=int, default=None, help="maximum number of sweep points"
    )
    run_parser.add_argument(
        "--no-milp", action="store_true", help="skip the exact MIP even if the figure uses it"
    )
    run_parser.add_argument(
        "--milp-time-limit", type=float, default=30.0, help="per-instance MIP time limit (s)"
    )
    run_parser.add_argument("--csv", action="store_true", help="print CSV instead of a table")
    run_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "run repetitions on a process pool of this size (heuristic/OtO "
            "curves match the serial run exactly; MIP cells may time out "
            "under CPU oversubscription)"
        ),
    )
    run_parser.set_defaults(func=_cmd_run)

    solve_parser = subparsers.add_parser(
        "solve", help="solve one random instance with every heuristic"
    )
    solve_parser.add_argument("--tasks", type=int, default=10, help="number of tasks n")
    solve_parser.add_argument("--types", type=int, default=3, help="number of task types p")
    solve_parser.add_argument("--machines", type=int, default=5, help="number of machines m")
    solve_parser.add_argument("--seed", type=int, default=0, help="random seed")
    solve_parser.add_argument(
        "--high-failures", action="store_true", help="draw failure rates in [0, 10%%]"
    )
    solve_parser.add_argument(
        "--milp", action="store_true", help="also solve the exact MIP for comparison"
    )
    solve_parser.set_defaults(func=_cmd_solve)

    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    for figure_id in figure_ids():
        spec = FIGURES[figure_id]
        suffix = " (normalised by the MIP)" if spec.normalize_to else ""
        print(f"{figure_id:7s} {spec.scenario.description}{suffix}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    result = run_figure(
        args.figure,
        seed=args.seed,
        repetitions=args.repetitions,
        max_points=args.max_points,
        include_milp=False if args.no_milp else None,
        milp_time_limit=args.milp_time_limit,
        workers=args.workers,
    )
    if args.csv:
        print(result.to_csv(), end="")
    else:
        print(figure_report(result))
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    application = random_chain_application(args.tasks, args.types, rng)
    w = random_processing_times(application.types, args.machines, rng)
    f_high = 0.10 if args.high_failures else 0.02
    f_low = 0.0 if args.high_failures else 0.005
    f = random_failure_rates(args.tasks, args.machines, rng, low=f_low, high=f_high)
    instance = ProblemInstance(
        application,
        Platform(w, types=application.types),
        FailureModel(f),
        name="cli-instance",
    )

    print(
        f"Random linear chain: n={args.tasks} tasks, p={args.types} types, "
        f"m={args.machines} machines (seed={args.seed})"
    )
    rows = []
    for name in PAPER_HEURISTICS:
        heuristic = get_heuristic(name)
        result = heuristic.solve(instance, np.random.default_rng(args.seed))
        rows.append((name, result.period, result.throughput * 1000.0))
    if args.milp:
        milp = solve_specialized_milp(instance)
        if milp.is_optimal:
            rows.append(("MIP", milp.period, 1000.0 / milp.period))
        else:
            print(f"MIP did not prove optimality ({milp.status}: {milp.message})")

    width = max(len(name) for name, _, _ in rows)
    print(f"{'method'.ljust(width)}  period(ms)  throughput(/s)")
    for name, period, thr in sorted(rows, key=lambda row: row[1]):
        print(f"{name.ljust(width)}  {period:10.1f}  {thr:14.4f}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
