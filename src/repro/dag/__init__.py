"""Content-addressed campaign pipeline: typed stages, cached artifacts.

The campaign workflow — generate instances, solve (curve, sweep point)
blocks, aggregate seeds, render exports — as an explicit DAG of
:class:`~repro.dag.stage.Stage` objects with content-addressed outputs:

* :mod:`repro.dag.stage` — the stage types and their content keys;
* :mod:`repro.dag.pipeline` — compile a
  :class:`~repro.campaign.plan.CampaignManifest` into the DAG;
* :mod:`repro.dag.artifacts` — the ``content key -> output`` log on the
  :class:`~repro.experiments.store.JsonlStore` base;
* :mod:`repro.dag.cost` — calibrated per-provider cost estimates
  (MIP ~100x a heuristic block) for shard balancing and stealing order;
* :mod:`repro.dag.scheduler` — cache-hit execution with cost-aware
  work stealing.

Unchanged stages are cache hits: re-running an identical campaign
performs zero block solves and reproduces its exports bit-for-bit.
``microrepro dag plan/run/status`` is the CLI surface; the legacy
``campaign`` and ``shard run`` commands are thin wrappers over the same
machinery.
"""

from .artifacts import ArtifactStore, artifact_store_for
from .cost import classify_curve, provider_cost, unit_cost
from .pipeline import Pipeline, build_pipeline
from .scheduler import (
    DispatchReport,
    PipelineReport,
    PipelineRun,
    execute_solves,
    run_pipeline,
    steal_dispatch,
)
from .stage import (
    AggregateStage,
    GenerateStage,
    RenderStage,
    SolveStage,
    Stage,
    content_key,
)

__all__ = [
    "Stage",
    "GenerateStage",
    "SolveStage",
    "AggregateStage",
    "RenderStage",
    "content_key",
    "Pipeline",
    "build_pipeline",
    "ArtifactStore",
    "artifact_store_for",
    "classify_curve",
    "provider_cost",
    "unit_cost",
    "DispatchReport",
    "PipelineReport",
    "PipelineRun",
    "steal_dispatch",
    "execute_solves",
    "run_pipeline",
]
