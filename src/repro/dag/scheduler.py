"""Execute the campaign DAG: cache-hit skipping, cost-aware stealing.

Two layers live here.  :func:`steal_dispatch` is the generic
work-stealing core: per-queue pending deques (one queue per shard-like
group), a fixed number of executor slots, each slot draining its owned
queues front-first in canonical order and — once they are empty —
*stealing* from the tail of whichever queue has the most remaining
estimated cost, so no slot idles while a straggler queue still holds
work.  It is executor-agnostic (thread pools in the benchmarks, process
pools for real solves).

:func:`run_pipeline` executes a compiled :class:`~repro.dag.pipeline.
Pipeline` against a result store: every stage whose content key is
already in the :class:`~repro.dag.artifacts.ArtifactStore` is a cache
hit and is not run; legacy cell records with enough repetitions are
adopted into the artifact log (so pre-DAG stores migrate without
recomputing); the remaining solve stages run through the same block
engine as the legacy paths — serial runs keep the cross-point stacking
of :func:`~repro.experiments.runner.execute_blocks`, parallel runs
dispatch picklable block jobs through :func:`steal_dispatch` with the
:mod:`repro.dag.cost` estimates.  Cell records and run headers keep
flowing into the :class:`~repro.experiments.store.ResultStore`, so
merge/status/export work unchanged on a DAG-produced store.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

from ..backend import get_backend
from ..campaign.plan import WorkUnit
from ..experiments.providers import resolve_provider
from ..experiments.runner import _evaluate_block_job, execute_blocks
from ..experiments.store import CellRecord, ResultStore, RunMeta
from ..obs.instrument import timed_kernels
from ..obs.trace import activate, capture, current_context, emit_spans, span, tracing_active
from .artifacts import ArtifactStore, artifact_store_for
from .cost import unit_cost
from .pipeline import Pipeline
from .stage import SolveStage, Stage, values_consistent

__all__ = [
    "DispatchReport",
    "steal_dispatch",
    "PipelineReport",
    "PipelineRun",
    "run_pipeline",
    "execute_solves",
]


# ---------------------------------------------------------------------------
# Generic work-stealing dispatch
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class DispatchReport:
    """What one :func:`steal_dispatch` call did."""

    queues: int = 0
    slots: int = 0
    executed: int = 0
    #: Items a slot took from a queue it does not own.
    stolen: int = 0


def steal_dispatch(
    pool,
    fn,
    queues: list[list],
    costs: list[list[float]] | None = None,
    *,
    slots: int,
    steal: bool = True,
    on_result=None,
) -> DispatchReport:
    """Drain ``queues`` through ``slots`` concurrent ``fn`` calls.

    Queue ``q`` is *owned* by slot ``q % slots``; a slot serves its
    owned queues front-first (preserving each queue's canonical order),
    and with ``steal=True`` an idle slot then takes from the **tail** of
    the non-empty queue with the largest remaining estimated cost — the
    straggler — instead of retiring.  ``costs`` supplies per-item
    estimates (uniform when omitted); ``on_result(item, result)`` fires
    in completion order.  ``pool`` is any ``concurrent.futures``
    executor whose workers can run ``fn``.
    """
    pending = [deque(queue) for queue in queues]
    if costs is None:
        costs = [[1.0] * len(queue) for queue in queues]
    item_costs = [deque(cost_list) for cost_list in costs]
    remaining = [sum(cost_list) for cost_list in item_costs]
    report = DispatchReport(queues=len(pending), slots=slots)
    if not any(pending):
        return report

    def take(slot: int):
        """``(queue, item)`` for a free slot, or ``None`` to retire it."""
        for queue in range(slot, len(pending), slots):
            if pending[queue]:
                item = pending[queue].popleft()
                remaining[queue] -= item_costs[queue].popleft()
                return queue, item
        if steal:
            candidates = [queue for queue in range(len(pending)) if pending[queue]]
            if candidates:
                queue = max(candidates, key=lambda q: (remaining[q], -q))
                item = pending[queue].pop()
                remaining[queue] -= item_costs[queue].pop()
                report.stolen += 1
                return queue, item
        return None

    futures: dict = {}
    for slot in range(slots):
        taken = take(slot)
        if taken is None:
            continue
        queue, item = taken
        futures[pool.submit(fn, item)] = (slot, item)
    while futures:
        done, _ = wait(futures, return_when=FIRST_COMPLETED)
        for future in done:
            slot, item = futures.pop(future)
            result = future.result()
            report.executed += 1
            if on_result is not None:
                on_result(item, result)
            taken = take(slot)
            if taken is not None:
                queue, next_item = taken
                futures[pool.submit(fn, next_item)] = (slot, next_item)
    return report


# ---------------------------------------------------------------------------
# Pipeline execution
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class PipelineReport:
    """Per-kind cache-hit/computed accounting of one DAG execution."""

    hits: dict[str, int] = field(
        default_factory=lambda: {"generate": 0, "solve": 0, "aggregate": 0, "render": 0}
    )
    computed: dict[str, int] = field(
        default_factory=lambda: {"generate": 0, "solve": 0, "aggregate": 0, "render": 0}
    )
    stolen: int = 0
    elapsed_seconds: float = 0.0

    @property
    def total_hits(self) -> int:
        return sum(self.hits.values())

    @property
    def total_stages(self) -> int:
        return self.total_hits + sum(self.computed.values())

    def hit_rate(self) -> float:
        """Fraction of stages served from the artifact cache."""
        total = self.total_stages
        return (self.total_hits / total) if total else 1.0

    def summary(self) -> str:
        """One-line report for the CLI (the smoke jobs grep these fields)."""
        per_kind = ", ".join(
            f"{kind}: {self.hits[kind]} hit / {self.computed[kind]} computed"
            for kind in self.hits
        )
        line = (
            f"{per_kind}; {self.computed['solve']} block solve(s), "
            f"{self.total_hits} stage-cache hit(s) "
            f"({self.hit_rate():.0%} stage-cache hits)"
        )
        if self.stolen:
            line += f", {self.stolen} unit(s) stolen"
        return line + f", {self.elapsed_seconds:.1f}s"


@dataclass(slots=True)
class PipelineRun:
    """Result of :func:`run_pipeline`: the report plus render outputs."""

    report: PipelineReport
    renders: dict[str, dict] = field(default_factory=dict)


def _load(stage: Stage, artifacts: ArtifactStore, report: PipelineReport) -> dict:
    """A stage's output as *input* to a downstream stage.

    Cached outputs load without touching the hit counters (they were
    already accounted for when their own stage was ensured); a genuinely
    missing upstream output is computed and counted.
    """
    output = artifacts.get(stage.key)
    if output is not None:
        return output
    inputs = [_load(parent, artifacts, report) for parent in stage.inputs]
    output = _run_stage(stage, inputs)
    artifacts.put(stage.key, stage.name, output)
    report.computed[stage.kind] += 1
    return output


def _ensure(stage: Stage, artifacts: ArtifactStore, report: PipelineReport) -> dict:
    """The stage's output, from cache when possible (recursing upstream)."""
    output = artifacts.get(stage.key)
    if output is not None:
        report.hits[stage.kind] += 1
        return output
    inputs = [_load(parent, artifacts, report) for parent in stage.inputs]
    output = _run_stage(stage, inputs)
    artifacts.put(stage.key, stage.name, output)
    report.computed[stage.kind] += 1
    return output


def _run_stage(stage: Stage, inputs: list[dict]) -> dict:
    """Run one stage under a ``dag.stage`` span keyed by its content key."""
    with span("dag.stage", kind=stage.kind, key=stage.key, stage=stage.name):
        return stage.run(inputs)


def _evaluate_block_job_traced(payload):
    """Picklable traced block job: same result, plus the worker's spans.

    ``payload`` is ``(context, args)`` — the submitting side's
    :class:`~repro.obs.trace.TraceContext` and the plain
    :func:`_evaluate_block_job` argument tuple.  Spans produced in the
    pool worker (the block solve itself plus per-kernel timings) are
    buffered and returned for the parent process to emit, so the trace
    tree crosses the process boundary under one trace id.
    """
    context, args = payload
    with capture() as spans:
        with activate(context):
            with span("dag.block_job", sweep_value=args[1], curve=args[2]):
                with timed_kernels():
                    result = _evaluate_block_job(args)
    return result, spans


def _cell_from_output(stage: SolveStage, scenario_hash: str, output: dict) -> CellRecord:
    values = [float(value) for value in output["values"]]
    return CellRecord(
        figure_id=stage.figure_id,
        scenario_hash=scenario_hash,
        seed=stage.seed,
        curve=stage.curve,
        sweep_value=stage.sweep_value,
        repetitions=len(values),
        values=values,
        failures=int(output["failures"]),
    )


def _group_solves(solves) -> dict[tuple[str, int], list[SolveStage]]:
    """Solve stages per (figure, seed) run, preserving canonical order."""
    groups: dict[tuple[str, int], list[SolveStage]] = {}
    for stage in solves:
        groups.setdefault((stage.figure_id, stage.seed), []).append(stage)
    return groups


def execute_solves(
    pipeline: Pipeline,
    solves: list[SolveStage],
    store: ResultStore,
    artifacts: ArtifactStore,
    *,
    workers: int | None = None,
    resume: bool = True,
    report: PipelineReport | None = None,
    log=None,
) -> PipelineReport:
    """Bring every stage of ``solves`` into cache, computing what's missing.

    The solve phase of the DAG: artifact hits and adoptable legacy cell
    records are skipped, the remainder runs through the block engine —
    serially with cross-point stacking per run, or in parallel through
    :func:`steal_dispatch` with cost-priced per-run queues.  Both the
    artifact log *and* the result store receive every output (cells and
    per-run :class:`RunMeta` headers), so the store stays a complete
    legacy store.  ``log`` receives the per-run progress lines the shard
    worker has always printed.
    """
    manifest = pipeline.manifest
    report = report if report is not None else PipelineReport()
    start = time.perf_counter()
    groups = _group_solves(solves)

    # -- classify: artifact hit / legacy adoption / pending ---------------------
    pending_by_run: dict[tuple[str, int], list[SolveStage]] = {}
    for run_key, stages in groups.items():
        figure_id, seed = run_key
        scenario = manifest.scenario_for(figure_id)
        scenario_hash = scenario.stable_hash()
        repetitions = scenario.repetitions
        pending: list[SolveStage] = []
        for stage in stages:
            output = artifacts.get(stage.key) if resume else None
            if output is not None and values_consistent(output, repetitions):
                report.hits["solve"] += 1
                if store.get_cell(
                    figure_id, scenario_hash, seed, stage.curve, stage.sweep_value
                ) is None:
                    store.put_cell(_cell_from_output(stage, scenario_hash, output))
                continue
            record = (
                store.get_cell(
                    figure_id, scenario_hash, seed, stage.curve, stage.sweep_value
                )
                if resume
                else None
            )
            if record is not None and record.repetitions >= repetitions:
                # Pre-DAG stores migrate for free: adopt the stored cell
                # as this stage's artifact instead of re-solving.
                artifacts.put(
                    stage.key,
                    stage.name,
                    {
                        "values": list(record.values),
                        "failures": int(record.failures),
                        "repetitions": int(record.repetitions),
                    },
                )
                report.hits["solve"] += 1
                continue
            pending.append(stage)
        pending_by_run[run_key] = pending

    # -- generate stages of the touched runs ------------------------------------
    generated: dict[tuple[str, int], dict] = {
        run_key: _ensure(pipeline.generates[run_key], artifacts, report)
        for run_key in groups
    }

    def record_solve(stage: SolveStage, values, failures: int) -> None:
        scenario_hash = generated[(stage.figure_id, stage.seed)]["scenario_hash"]
        output = {
            "values": [float(value) for value in values],
            "failures": int(failures),
            "repetitions": int(stage.generate.scenario.repetitions),
        }
        store.put_cell(_cell_from_output(stage, scenario_hash, output))
        artifacts.put(stage.key, stage.name, output)
        report.computed["solve"] += 1

    def finish_run(run_key: tuple[str, int], elapsed: float) -> None:
        figure_id, seed = run_key
        scenario = manifest.scenario_for(figure_id)
        store.put_meta(
            RunMeta(
                figure_id=figure_id,
                scenario_hash=scenario.stable_hash(),
                seed=seed,
                scenario=scenario.to_dict(),
                # The run's *full* curve order (a shard may hold only a
                # slice): the header must describe the whole run so the
                # merged store rebuilds results (see campaign.worker).
                curves=list(manifest.curves_for(figure_id)),
                normalize_to=manifest.spec_for(figure_id).normalize_to,
                elapsed_seconds=elapsed,
                backend=get_backend().name,
            )
        )
        if log is not None:
            pending = pending_by_run[run_key]
            stages = groups[run_key]
            log(
                f"{figure_id} seed={seed}: {len(pending)} block(s) computed, "
                f"{len(stages) - len(pending)} stored"
            )

    pool_size = workers if workers is not None else manifest.workers
    if pool_size is not None and pool_size > 1 and any(pending_by_run.values()):
        # Parallel path: every pending unit of every run in one stealing
        # dispatch — per-run queues priced by the cost model, so MIP-heavy
        # runs are drained by every idle slot instead of straggling.  The
        # dispatch span opens before the queues are built so the context
        # the traced items carry is the dispatch itself — block-job spans
        # coming back from the workers hang directly off it.
        with span("dag.dispatch", slots=pool_size) as dispatch_span:

            def job_args(stage: SolveStage):
                return (
                    stage.generate.scenario,
                    stage.sweep_value,
                    stage.curve,
                    generated[(stage.figure_id, stage.seed)]["entropy"],
                    manifest.milp_time_limit,
                    manifest.memoize_instances,
                )

            # Queue items are the picklable job-arg tuples (the executor
            # pickles what it is submitted); identity maps each tuple back
            # to its stage for recording.  Under tracing, each item also
            # carries the dispatching context so worker spans attach to it.
            traced = tracing_active()
            trace_context = current_context() if traced else None
            job_fn = _evaluate_block_job_traced if traced else _evaluate_block_job
            stage_of: dict[int, SolveStage] = {}
            queues, costs = [], []
            for run_key, stages in pending_by_run.items():
                queue = []
                for stage in stages:
                    item = job_args(stage)
                    if traced:
                        item = (trace_context, item)
                    stage_of[id(item)] = stage
                    queue.append(item)
                queues.append(queue)
                costs.append(
                    [
                        unit_cost(
                            manifest,
                            WorkUnit(
                                stage.figure_id,
                                stage.seed,
                                stage.curve,
                                stage.sweep_value,
                            ),
                        )
                        for stage in stages
                    ]
                )
            outstanding = {
                run_key: len(stages) for run_key, stages in pending_by_run.items()
            }
            for run_key, count in outstanding.items():
                if count == 0:
                    finish_run(run_key, 0.0)

            def on_result(args, result) -> None:
                stage = stage_of[id(args)]
                if traced:
                    result, worker_spans = result
                    emit_spans(worker_spans)
                values, failures = result
                record_solve(stage, values, failures)
                run_key = (stage.figure_id, stage.seed)
                outstanding[run_key] -= 1
                if outstanding[run_key] == 0:
                    finish_run(run_key, time.perf_counter() - start)

            with ProcessPoolExecutor(max_workers=pool_size) as pool:
                dispatch = steal_dispatch(
                    pool,
                    job_fn,
                    queues,
                    costs,
                    slots=pool_size,
                    steal=True,
                    on_result=on_result,
                )
            dispatch_span.set(
                runs=len(queues), executed=dispatch.executed, stolen=dispatch.stolen
            )
        report.stolen += dispatch.stolen
    else:
        for run_key, stages in groups.items():
            figure_id, seed = run_key
            scenario = manifest.scenario_for(figure_id)
            pending = pending_by_run[run_key]
            providers = {
                stage.curve: resolve_provider(
                    stage.curve, milp_time_limit=manifest.milp_time_limit
                )
                for stage in pending
            }
            by_unit = {
                (stage.sweep_value, stage.curve): stage for stage in pending
            }
            run_start = time.perf_counter()
            with span(
                "dag.run", figure=figure_id, seed=seed, blocks=len(pending)
            ), timed_kernels():
                execute_blocks(
                    scenario,
                    generated[run_key]["entropy"],
                    [(stage.sweep_value, stage.curve) for stage in pending],
                    providers,
                    lambda sweep_value, label, values, failures: record_solve(
                        by_unit[(int(sweep_value), label)], values, failures
                    ),
                    milp_time_limit=manifest.milp_time_limit,
                    workers=None,
                    memoize=manifest.memoize_instances,
                )
            finish_run(run_key, time.perf_counter() - run_start)
    report.elapsed_seconds += time.perf_counter() - start
    return report


def run_pipeline(
    pipeline: Pipeline,
    store: ResultStore,
    *,
    artifacts: ArtifactStore | None = None,
    workers: int | None = None,
    resume: bool = True,
    log=None,
) -> PipelineRun:
    """Execute a campaign's full DAG against ``store``.

    Solve stages run (or cache-hit) first through :func:`execute_solves`;
    the cheap aggregate and render stages then fold the cached outputs,
    each skipped when its content key is already stored.  Returns the
    per-kind report plus every figure's render output (per-seed CSVs and
    the cross-seed aggregate), which is exactly what ``microrepro dag
    run`` exports.
    """
    artifacts = artifacts if artifacts is not None else artifact_store_for(store.path)
    report = PipelineReport()
    start = time.perf_counter()
    with span(
        "dag.pipeline", solves=len(pipeline.solves), figures=len(pipeline.renders)
    ):
        execute_solves(
            pipeline,
            list(pipeline.solves.values()),
            store,
            artifacts,
            workers=workers,
            resume=resume,
            report=report,
            log=log,
        )
        for stage in pipeline.aggregates.values():
            _ensure(stage, artifacts, report)
        renders = {
            figure_id: _ensure(stage, artifacts, report)
            for figure_id, stage in pipeline.renders.items()
        }
    artifacts.flush()
    store.flush()
    report.elapsed_seconds = time.perf_counter() - start
    return PipelineRun(report=report, renders=renders)
