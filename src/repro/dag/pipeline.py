"""Compile a campaign manifest into its stage DAG.

The pipeline that was implicit in CLI ordering — ``campaign`` /
``shard run`` / ``store merge`` / ``export`` — compiled explicitly:
one :class:`~repro.dag.stage.GenerateStage` per ``(figure, seed)`` run,
one :class:`~repro.dag.stage.SolveStage` per work unit (the planner's
``(figure, seed, curve, sweep value)`` granularity, unchanged), one
:class:`~repro.dag.stage.AggregateStage` per run and one
:class:`~repro.dag.stage.RenderStage` per figure.  Stage maps preserve
the canonical :func:`~repro.campaign.plan.expand_units` order, so
iteration order *is* topological order within each kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..campaign.plan import CampaignManifest, WorkUnit, expand_units
from ..exceptions import ExperimentError
from ..obs.trace import span
from .stage import AggregateStage, GenerateStage, RenderStage, RunShape, SolveStage, Stage

__all__ = ["Pipeline", "build_pipeline"]


@dataclass(slots=True)
class Pipeline:
    """A campaign's full stage DAG, indexed by the planner's keys."""

    manifest: CampaignManifest
    generates: dict[tuple[str, int], GenerateStage] = field(default_factory=dict)
    solves: dict[WorkUnit, SolveStage] = field(default_factory=dict)
    aggregates: dict[tuple[str, int], AggregateStage] = field(default_factory=dict)
    renders: dict[str, RenderStage] = field(default_factory=dict)

    def stages(self) -> list[Stage]:
        """Every stage, in topological (generate, solve, aggregate, render) order."""
        return [
            *self.generates.values(),
            *self.solves.values(),
            *self.aggregates.values(),
            *self.renders.values(),
        ]

    def counts(self) -> dict[str, int]:
        """``{kind: stage count}`` of the DAG."""
        return {
            "generate": len(self.generates),
            "solve": len(self.solves),
            "aggregate": len(self.aggregates),
            "render": len(self.renders),
        }

    def solves_for(self, units) -> list[SolveStage]:
        """The solve stages of ``units`` (e.g. one shard's), in unit order."""
        stages = []
        for unit in units:
            stage = self.solves.get(unit)
            if stage is None:
                raise ExperimentError(
                    f"unit {unit} is not part of this campaign's pipeline"
                )
            stages.append(stage)
        return stages


def build_pipeline(manifest: CampaignManifest) -> Pipeline:
    """Compile ``manifest`` into its generate → solve → aggregate → render DAG."""
    with span("dag.build_pipeline", figures=len(manifest.figures)) as build_span:
        pipeline = _build_pipeline(manifest)
        build_span.set(stages=sum(pipeline.counts().values()))
    return pipeline


def _build_pipeline(manifest: CampaignManifest) -> Pipeline:
    pipeline = Pipeline(manifest=manifest)
    for unit in expand_units(manifest):
        run_key = (unit.figure_id, unit.seed)
        generate = pipeline.generates.get(run_key)
        if generate is None:
            generate = GenerateStage(
                unit.figure_id, unit.seed, manifest.scenario_for(unit.figure_id)
            )
            pipeline.generates[run_key] = generate
        pipeline.solves[unit] = SolveStage(
            generate,
            unit.curve,
            unit.sweep_value,
            milp_time_limit=manifest.milp_time_limit,
        )
    for run_key, generate in pipeline.generates.items():
        figure_id, seed = run_key
        spec = manifest.spec_for(figure_id)
        shape = RunShape(
            figure_id=figure_id,
            seed=seed,
            curves=manifest.curves_for(figure_id),
            normalize_to=spec.normalize_to,
        )
        solves = tuple(
            stage
            for unit, stage in pipeline.solves.items()
            if (unit.figure_id, unit.seed) == run_key
        )
        pipeline.aggregates[run_key] = AggregateStage(shape, generate, solves)
    for figure_id in manifest.figures:
        aggregates = tuple(
            stage
            for (fig, _), stage in pipeline.aggregates.items()
            if fig == figure_id
        )
        pipeline.renders[figure_id] = RenderStage(figure_id, aggregates)
    return pipeline
