"""Per-unit solve-cost model driving shard balancing and stealing order.

A campaign's solve units are wildly uneven: a MIP block at its time
limit costs ~100x a heuristic block of the same shape, local search a
few x, OtO somewhere between.  Round-robin sharding ignores this and
routinely parks every MIP block on one shard; the scheduler instead
prices each unit with calibrated per-provider estimates and balances
shards by total estimated cost (LPT greedy), with work stealing mopping
up whatever the estimates still get wrong.

The estimates are persisted in ``costs.json`` next to this module —
the :mod:`repro.heuristics` ``thresholds.json`` pattern — as *relative*
costs in units of one heuristic repetition; a missing or unreadable
file degrades to built-in defaults so source checkouts keep working.
Costs scale linearly with repetitions and sublinearly (calibrated
exponent) with the instance size at the unit's sweep point.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING

from ..experiments.providers import LOCAL_SEARCH_SUFFIX, MIP_LABEL, OTO_LABEL

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..campaign.manifest import CampaignManifest, WorkUnit

__all__ = ["classify_curve", "provider_cost", "unit_cost", "plan_costs"]

#: Fallback relative costs when ``costs.json`` is missing or unreadable.
_DEFAULT_COSTS = {
    "heuristic": 1.0,
    "local_search": 2.5,
    "oto": 8.0,
    "mip": 100.0,
}
_DEFAULT_SIZE_EXPONENT = 0.5


def _load_costs() -> tuple[dict[str, float], float]:
    path = Path(__file__).with_name("costs.json")
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return dict(_DEFAULT_COSTS), _DEFAULT_SIZE_EXPONENT
    costs = dict(_DEFAULT_COSTS)
    for name, value in data.get("costs", {}).items():
        try:
            costs[str(name)] = float(value)
        except (TypeError, ValueError):
            continue
    try:
        exponent = float(data.get("size_exponent", _DEFAULT_SIZE_EXPONENT))
    except (TypeError, ValueError):
        exponent = _DEFAULT_SIZE_EXPONENT
    return costs, exponent


PROVIDER_COSTS, SIZE_EXPONENT = _load_costs()


def classify_curve(curve: str) -> str:
    """The cost class of a curve label (mip/oto/local_search/heuristic)."""
    if curve == MIP_LABEL:
        return "mip"
    if curve == OTO_LABEL:
        return "oto"
    if curve.endswith(LOCAL_SEARCH_SUFFIX):
        return "local_search"
    return "heuristic"


def provider_cost(curve: str) -> float:
    """Relative per-repetition cost of one curve's provider."""
    return PROVIDER_COSTS.get(classify_curve(curve), _DEFAULT_COSTS["heuristic"])


def unit_cost(manifest: "CampaignManifest", unit: "WorkUnit") -> float:
    """Estimated cost of one work unit, in heuristic-repetition units.

    ``provider_cost x repetitions x (n*m)^size_exponent`` — repetitions
    scale linearly (each is an independent solve), instance size
    sublinearly (the batch kernels amortize rows; the calibrated
    exponent captures the net effect well enough for balancing, and the
    stealing pass absorbs the residual error).
    """
    scenario = manifest.scenario_for(unit.figure_id)
    n, _, m = scenario.dimensions_at(unit.sweep_value)
    size = max(1.0, float(n) * float(m))
    return provider_cost(unit.curve) * scenario.repetitions * size**SIZE_EXPONENT


def plan_costs(manifest: "CampaignManifest", units) -> list[float]:
    """Per-unit estimated costs of ``units`` under ``manifest``."""
    return [unit_cost(manifest, unit) for unit in units]
