"""Content-addressed artifact log for pipeline stage outputs.

An :class:`ArtifactStore` maps stage content keys
(:attr:`~repro.dag.stage.Stage.key`) to stored outputs on the
append-only :class:`~repro.experiments.store.JsonlStore` base, which
supplies the durability story for free: per-write flush, tail-scan
recovery of interrupted runs, stale-index self-healing, atomic
:meth:`~repro.experiments.store.JsonlStore.compact`.

The store lives in an ``artifacts/`` subdirectory of the campaign store
(``JsonlStore`` owns the ``index.json`` name inside its directory, so
the artifact log cannot share the ``ResultStore`` directory itself), and
results keep flowing into the ``ResultStore`` as before — the artifact
log adds the cache addressing, it does not replace the result of record.
"""

from __future__ import annotations

import os
from pathlib import Path

from ..experiments.store import JsonlStore

__all__ = ["ArtifactStore", "artifact_store_for"]

#: Subdirectory of a campaign store holding the artifact log.
ARTIFACTS_DIR = "artifacts"


class ArtifactStore(JsonlStore):
    """``content key -> stage output`` on the append-only JSONL base.

    One record kind, ``artifact``; the payload is
    ``{"key": ..., "stage": ..., "output": {...}}``.  Keys are content
    hashes, so a re-put of a key can only ever carry an identical
    output — last-write-wins indexing is trivially safe.
    """

    KINDS = ("artifact",)
    RECORDS_FILE = "artifacts.jsonl"

    def _key_of(self, kind: str, data: dict) -> str:
        return str(data["key"])

    def get(self, key: str) -> dict | None:
        """The stored output of ``key``, or ``None`` on a cache miss."""
        data = self._get("artifact", key)
        return None if data is None else data["output"]

    def has(self, key: str) -> bool:
        """Whether ``key`` is a cache hit (no payload read)."""
        return key in self._index["artifact"]

    def put(self, key: str, stage: str, output: dict) -> None:
        """Record ``output`` as the artifact of ``key``."""
        self._put("artifact", key, {"key": key, "stage": stage, "output": output})

    def keys(self) -> set[str]:
        """Every stored content key."""
        return set(self._index["artifact"])

    def __len__(self) -> int:
        return len(self._index["artifact"])


def artifact_store_for(store_path: str | os.PathLike) -> ArtifactStore:
    """The artifact log of the campaign store at ``store_path``."""
    return ArtifactStore(Path(store_path) / ARTIFACTS_DIR)
