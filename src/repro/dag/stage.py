"""Typed, content-addressed pipeline stages.

A campaign's implicit pipeline — *generate* random instances, *solve*
(sweep point, curve) blocks, *aggregate* each run's cells into series,
*render* exports — becomes explicit here: every step is a
:class:`Stage` with typed inputs (other stages), JSON-able parameters,
and a pure :meth:`Stage.run` mapping its inputs' outputs to its own
output.

Each stage has a **content key**: a stable hash (canonical JSON +
SHA-256, the :meth:`~repro.generators.scenarios.ScenarioConfig.stable_hash`
convention) over

* the stage's kind and code version (bump :attr:`Stage.CODE_VERSION`
  when a stage's semantics change — every downstream key changes with
  it),
* its parameters, and
* the content keys of its inputs, in input order.

Two stages share a key iff they compute the same output, so a key is a
cache address: the :class:`~repro.dag.artifacts.ArtifactStore` maps keys
to stored outputs and any stage whose key is already stored is skipped
as a cache hit.  Re-running an unchanged campaign therefore performs
zero block solves, and editing any upstream parameter (a seed, a
repetition count, a time limit that matters) invalidates exactly the
stages it reaches.

Stage outputs are plain JSON-able dicts — what the artifact log stores
and what downstream ``run()`` implementations receive.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from functools import cached_property

from ..analysis.normalize import normalize_series
from ..analysis.stats import Series
from ..exceptions import ExperimentError
from ..experiments.providers import MIP_LABEL, CellBlock, resolve_provider
from ..experiments.reporting import aggregate_results
from ..experiments.runner import ExperimentResult
from ..generators.scenarios import ScenarioConfig
from ..simulation.rng import RandomStreamFactory

__all__ = [
    "Stage",
    "GenerateStage",
    "SolveStage",
    "AggregateStage",
    "RenderStage",
    "content_key",
]

#: Length of a content key (hex chars of the SHA-256 digest).
KEY_LENGTH = 16


def content_key(payload: dict) -> str:
    """Stable content hash of a JSON-able payload.

    Canonical JSON (sorted keys, no whitespace) + SHA-256, truncated to
    :data:`KEY_LENGTH` hex characters — the same convention as
    :meth:`ScenarioConfig.stable_hash`, so keys are stable across
    processes and interpreter restarts.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:KEY_LENGTH]


class Stage:
    """One node of the campaign DAG.

    Subclasses declare :attr:`kind` / :attr:`CODE_VERSION`, provide
    JSON-able :attr:`params` plus their upstream :attr:`inputs`, and
    implement :meth:`run`.  Identity is the :attr:`key` — equal keys
    mean equal outputs, which is what makes the artifact store a cache.
    """

    #: Stage family ("generate" / "solve" / "aggregate" / "render").
    kind: str = ""
    #: Version of the stage's ``run()`` semantics; bumping it invalidates
    #: every cached output of this stage kind (and everything downstream).
    CODE_VERSION: str = "1"

    def __init__(self, name: str, params: dict, inputs: tuple["Stage", ...] = ()):
        self.name = name
        self.params = params
        self.inputs = inputs

    @cached_property
    def key(self) -> str:
        """The stage's content key (hash of code version, params, input keys)."""
        return content_key(
            {
                "stage": self.kind,
                "code": self.CODE_VERSION,
                "params": self.params,
                "inputs": [stage.key for stage in self.inputs],
            }
        )

    def run(self, inputs: list[dict]) -> dict:
        """Compute this stage's output from its inputs' outputs.

        ``inputs`` carries one output dict per entry of :attr:`inputs`,
        in the same order.  Must be a pure function of ``(params,
        inputs)`` — the content key's cache contract depends on it.
        """
        raise NotImplementedError  # pragma: no cover - abstract

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r}, key={self.key})"


class GenerateStage(Stage):
    """Instance generation of one ``(figure, seed)`` run.

    Instances themselves are cheap, deterministic functions of the
    scenario and seed, so this stage does not materialise them — its
    output is the *identity* of the instance population (scenario hash +
    root entropy), which every downstream solve stage keys on and uses
    to re-derive exactly the streams the legacy engine draws.
    """

    kind = "generate"

    def __init__(self, figure_id: str, seed: int, scenario: ScenarioConfig):
        self.figure_id = figure_id
        self.seed = seed
        self.scenario = scenario
        super().__init__(
            name=f"generate:{figure_id}/seed{seed}",
            params={
                "figure_id": figure_id,
                "seed": seed,
                "scenario": scenario.to_dict(),
            },
        )

    def run(self, inputs: list[dict]) -> dict:
        entropy = RandomStreamFactory(self.seed).entropy
        if not isinstance(entropy, int):  # pragma: no cover - int seeds only
            raise ExperimentError("generate stages require an integer seed")
        return {
            "scenario_hash": self.scenario.stable_hash(),
            "entropy": int(entropy),
            "repetitions": int(self.scenario.repetitions),
        }


class SolveStage(Stage):
    """Solve + score one (figure, seed, curve, sweep value) block.

    The unit of distribution and of storage: one solve stage produces
    exactly one :class:`~repro.experiments.store.CellRecord`'s payload,
    bit-for-bit what the legacy block engine computes for the same unit.
    The MIP time limit participates in the key only for the MIP curve —
    heuristic curves ignore it, so changing it must not invalidate them.
    """

    kind = "solve"

    def __init__(
        self,
        generate: GenerateStage,
        curve: str,
        sweep_value: int,
        *,
        milp_time_limit: float = 30.0,
    ):
        self.generate = generate
        self.curve = curve
        self.sweep_value = int(sweep_value)
        self.milp_time_limit = float(milp_time_limit)
        params = {"curve": curve, "sweep_value": self.sweep_value}
        if curve == MIP_LABEL:
            params["milp_time_limit"] = self.milp_time_limit
        super().__init__(
            name=f"solve:{generate.figure_id}/seed{generate.seed}/{curve}/x{sweep_value}",
            params=params,
            inputs=(generate,),
        )

    @property
    def figure_id(self) -> str:
        return self.generate.figure_id

    @property
    def seed(self) -> int:
        return self.generate.seed

    def run(self, inputs: list[dict]) -> dict:
        (generated,) = inputs
        import numpy as np

        streams = RandomStreamFactory(np.random.SeedSequence(generated["entropy"]))
        block = CellBlock.sample(self.generate.scenario, self.sweep_value, streams)
        provider = resolve_provider(self.curve, milp_time_limit=self.milp_time_limit)
        result = provider.evaluate_block(block)
        return {
            "values": result.values(),
            "failures": int(result.failures),
            "repetitions": int(self.generate.scenario.repetitions),
        }


@dataclass(frozen=True, slots=True)
class RunShape:
    """Reporting identity of one (figure, seed) run inside the DAG."""

    figure_id: str
    seed: int
    curves: tuple[str, ...]
    normalize_to: str | None


def _result_from_series(
    shape: RunShape, scenario: ScenarioConfig, series: dict[str, Series], milp_failures: int
) -> ExperimentResult:
    """Assemble an :class:`ExperimentResult` the way ``load_result`` does."""
    normalized = None
    if shape.normalize_to is not None:
        reference = series[shape.normalize_to]
        normalized = {
            label: normalize_series(curve, reference)
            for label, curve in series.items()
            if label != shape.normalize_to
        }
    return ExperimentResult(
        figure_id=shape.figure_id,
        scenario=scenario,
        series=series,
        normalized=normalized,
        seed=shape.seed,
        elapsed_seconds=0.0,
        milp_failures=milp_failures,
    )


class AggregateStage(Stage):
    """Fold one run's solve outputs into its curve series and CSV export.

    Consumes the run's solve stages in canonical (curve-major, sweep
    ascending) order and produces exactly what the legacy
    ``ResultStore.load_result(...).to_csv()`` path renders — the same
    :class:`~repro.analysis.stats.Series` fold, the same per-instance
    normalisation — so a DAG export is bit-for-bit a legacy export.
    """

    kind = "aggregate"

    def __init__(self, shape: RunShape, generate: GenerateStage, solves: tuple[SolveStage, ...]):
        self.shape = shape
        self.generate = generate
        self.solves = solves
        super().__init__(
            name=f"aggregate:{shape.figure_id}/seed{shape.seed}",
            params={
                "figure_id": shape.figure_id,
                "seed": shape.seed,
                "curves": list(shape.curves),
                "normalize_to": shape.normalize_to,
            },
            inputs=tuple(solves),
        )

    def _series(self, inputs: list[dict]) -> tuple[dict[str, Series], int]:
        scenario = self.generate.scenario
        repetitions = int(scenario.repetitions)
        by_unit = {
            (stage.curve, stage.sweep_value): output
            for stage, output in zip(self.solves, inputs)
        }
        series: dict[str, Series] = {}
        milp_failures = 0
        for curve in self.shape.curves:
            out = Series(label=curve)
            for sweep_value in scenario.sweep_values:
                cell = by_unit[(curve, int(sweep_value))]
                values, failures = sliced_cell(cell, repetitions)
                out.extend(sweep_value, values)
                milp_failures += failures
            series[curve] = out
        return series, milp_failures

    def result(self, inputs: list[dict]) -> ExperimentResult:
        """The run as an :class:`ExperimentResult` (cross-seed pooling input)."""
        series, failures = self._series(inputs)
        return _result_from_series(self.shape, self.generate.scenario, series, failures)

    def run(self, inputs: list[dict]) -> dict:
        result = self.result(inputs)
        return {
            "csv": result.to_csv(),
            "milp_failures": int(result.milp_failures),
            "curves": list(self.shape.curves),
            # Raw samples in curve-major, sweep-ascending order so the
            # render stage can re-pool across seeds purely from artifact
            # payloads (dict keys survive JSON only as strings; lists
            # aligned with scenario.sweep_values avoid that entirely).
            "samples": {
                label: [curve.samples[x] for x in curve.x_values]
                for label, curve in result.series.items()
            },
        }


class RenderStage(Stage):
    """Render one figure's cross-seed export from its per-run aggregates.

    Pools every seed's series with the same
    :func:`~repro.experiments.reporting.aggregate_results` call the
    legacy ``export --aggregate seeds`` path uses.  Output carries the
    per-seed CSVs (pass-through from the aggregates) plus the pooled
    CSV, so one artifact record holds everything ``dag run`` exports for
    the figure.
    """

    kind = "render"

    def __init__(self, figure_id: str, aggregates: tuple[AggregateStage, ...], *, ci: str = "pooled"):
        if not aggregates:
            raise ExperimentError(f"render stage of {figure_id!r} needs at least one run")
        self.figure_id = figure_id
        self.aggregates = tuple(sorted(aggregates, key=lambda stage: stage.shape.seed))
        self.ci = ci
        super().__init__(
            name=f"render:{figure_id}",
            params={
                "figure_id": figure_id,
                "seeds": [stage.shape.seed for stage in self.aggregates],
                "ci": ci,
            },
            inputs=self.aggregates,
        )

    def run(self, inputs: list[dict]) -> dict:
        per_seed = {
            str(stage.shape.seed): output["csv"]
            for stage, output in zip(self.aggregates, inputs)
        }
        aggregate_csv = None
        if len(self.aggregates) > 1:
            results = []
            for stage, output in zip(self.aggregates, inputs):
                scenario = stage.generate.scenario
                series: dict[str, Series] = {}
                for label in stage.shape.curves:
                    curve = Series(label=label)
                    for sweep_value, values in zip(
                        scenario.sweep_values, output["samples"][label]
                    ):
                        curve.extend(sweep_value, values)
                    series[label] = curve
                results.append(
                    _result_from_series(
                        stage.shape, scenario, series, int(output["milp_failures"])
                    )
                )
            pooled = aggregate_results(results, ci=self.ci)
            aggregate_csv = pooled.to_csv()
        return {"per_seed": per_seed, "aggregate": aggregate_csv}


def sliced_cell(output: dict, repetitions: int) -> tuple[list[float], int]:
    """``(values, failures)`` of a solve output, restricted to ``repetitions``.

    Mirrors :meth:`~repro.experiments.store.CellRecord.sliced`: a cached
    output holding more repetitions than the run asks for serves the
    prefix, with failures recounted from the slice's NaNs (exact for the
    MIP curve — its NaNs are precisely its unproven repetitions).
    """
    stored = list(output["values"])
    failures = int(output["failures"])
    if repetitions > len(stored):
        raise ExperimentError(
            f"solve output holds {len(stored)} repetitions, {repetitions} requested"
        )
    values = stored[:repetitions]
    if repetitions == len(stored):
        return values, failures
    if not failures:
        return values, 0
    return values, sum(1 for v in values if math.isnan(v))


def values_consistent(output: dict, repetitions: int) -> bool:
    """Whether a cached solve output still serves ``repetitions`` rows."""
    values = output.get("values")
    return isinstance(values, list) and len(values) >= repetitions
