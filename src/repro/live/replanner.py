"""Incremental replanning of a mapping on a platform that fails and recovers.

The :class:`Replanner` holds the live state of one platform — which
machines are currently up, and the mapping currently deployed — and
answers every platform change with a new feasible mapping through a
deterministic tier cascade:

``infeasible``
    Fewer up machines than task types: no specialized mapping exists.
    The platform is *unavailable* until enough machines recover.
``cache``
    The exact up-set has been planned before; the stored mapping is
    reused as is.  This is what makes replan-after-recovery return the
    pre-failure mapping **bit for bit**: recovering to a previously seen
    platform state replays the plan that state already had.
``warm``
    The previous mapping only uses up machines (e.g. an *unassigned*
    machine failed, or a machine recovered).  Warm start: a
    best-single-move descent from the previous mapping through
    :class:`~repro.batch.MappingEvaluator`, with destinations restricted
    to up machines that keep the mapping specialized — the local-search
    move kernels, not a from-scratch solve.
``cold``
    The previous mapping is gone (an *assigned* machine died) or there
    is none: solve the surviving sub-platform from scratch with the
    session's heuristic and map the result back to full machine indices.

Every tier is a pure function of ``(instance, heuristic, up-set,
previous mapping, plan cache)``, so a whole timeline's mappings are a
deterministic function of the timeline alone.  ``warm=True`` (the
default) only changes *how fast* the warm tier runs — a persistent
evaluator is kept across events, skipping the O(n²) upstream-set rebuild
— never *what* it returns: the warm tier resyncs the evaluator's numeric
state from the bare assignment before probing
(:meth:`~repro.batch.MappingEvaluator.reassign`), which is exactly the
state a freshly constructed evaluator would hold.  ``Replanner(...,
warm=False)`` is therefore the *cold re-solve* reference: same tiers,
every event recomputed from scratch, and the two are required (and
tested) to agree bit for bit on every event.

The replanner also keeps the two SLA measurements of the live subsystem:
per-event replan latency, and **availability** — the fraction of the
timeline during which a feasible mapping was deployed, integrated from
the event timestamps (never the wall clock, so it is deterministic).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..batch.incremental import MappingEvaluator
from ..core.failure import FailureModel
from ..core.instance import ProblemInstance
from ..core.platform import Platform
from ..exceptions import ExperimentError
from ..heuristics import get_heuristic
from ..obs.trace import span
from ..heuristics.base import solve_one
from ..heuristics.local_search import specialized_move_mask

__all__ = ["ReplanRecord", "Replanner", "sub_instance"]

#: Bound on the up-set plan cache.  Eviction is insertion-ordered (FIFO),
#: i.e. a deterministic function of the event sequence — warm and cold
#: runs evict identically, preserving the bit-for-bit contract.
PLAN_CACHE_LIMIT = 1024


def sub_instance(
    instance: ProblemInstance, up: np.ndarray
) -> tuple[ProblemInstance, np.ndarray]:
    """The instance restricted to the up machines, plus the column map.

    Returns ``(sub, cols)`` where ``sub`` keeps the full application but
    only the up machines' ``w`` / ``f`` columns, and ``cols[j]`` is the
    full-platform index of sub-machine ``j`` (so a sub-assignment ``a``
    maps back as ``cols[a]``).
    """
    cols = np.flatnonzero(np.asarray(up, dtype=bool))
    if cols.size == 0:
        raise ExperimentError("cannot build a sub-instance with no up machines")
    platform = Platform(
        instance.processing_times[:, cols], types=instance.application.types
    )
    failures = FailureModel(instance.failure_rates[:, cols])
    return ProblemInstance(instance.application, platform, failures), cols


@dataclass(frozen=True, slots=True)
class ReplanRecord:
    """What one applied event did to the live state.

    ``via`` is the tier that produced the mapping (``cache`` / ``warm``
    / ``cold`` / ``infeasible``) for platform events, and ``serve`` /
    ``miss`` for request arrivals (served from the current mapping, or
    missed because the platform was unavailable).  ``latency_seconds``
    covers the replanning work only — availability integration and
    bookkeeping are excluded, requests are O(1) lookups.
    """

    seq: int
    time: float
    kind: str
    machine: int | None
    via: str
    feasible: bool
    mapping: tuple[int, ...] | None
    period: float | None
    up_count: int
    latency_seconds: float
    availability: float

    def to_dict(self) -> dict:
        """JSON-ready form (the session event response body)."""
        return {
            "seq": self.seq,
            "time": self.time,
            "kind": self.kind,
            "machine": self.machine,
            "via": self.via,
            "feasible": self.feasible,
            "mapping": None if self.mapping is None else list(self.mapping),
            "period": self.period,
            "up_count": self.up_count,
            "replan_ms": round(self.latency_seconds * 1000.0, 6),
            "availability": self.availability,
        }


@dataclass(slots=True)
class ReplanCounters:
    """Tier counts of one replanner (mirrored into ``/v1/stats``)."""

    cache: int = 0
    warm: int = 0
    cold: int = 0
    infeasible: int = 0
    served: int = 0
    missed: int = 0

    def as_dict(self) -> dict:
        return {
            "cache": self.cache,
            "warm": self.warm,
            "cold": self.cold,
            "infeasible": self.infeasible,
            "served": self.served,
            "missed": self.missed,
        }


@dataclass(slots=True)
class _Clock:
    """Availability integral over the event timestamps."""

    now: float = 0.0
    available: float = 0.0
    unavailable: float = 0.0

    def advance(self, to: float, *, feasible: bool) -> None:
        if to < self.now:
            raise ExperimentError(
                f"events must carry non-decreasing times: got {to} after {self.now}"
            )
        if feasible:
            self.available += to - self.now
        else:
            self.unavailable += to - self.now
        self.now = to

    @property
    def availability(self) -> float:
        total = self.available + self.unavailable
        return 1.0 if total == 0.0 else self.available / total


class Replanner:
    """Live mapping state of one platform under failures and recoveries.

    Parameters
    ----------
    instance:
        The full-platform instance (all machines up).
    heuristic:
        Registered heuristic name used for the initial solve and every
        cold tier.  Randomized heuristics (H1) are rejected — a live
        session must be replayable, and the cold tier must be a pure
        function of the up-set.
    warm:
        Keep a persistent :class:`~repro.batch.MappingEvaluator` across
        events (the fast path).  ``False`` rebuilds all evaluator state
        from scratch on every event — the *cold re-solve* reference the
        warm path must match bit for bit.

    Construction performs the initial full-platform solve (``seq`` 0,
    ``via="cold"``, time 0).
    """

    def __init__(
        self,
        instance: ProblemInstance,
        heuristic: str = "H4ls",
        *,
        warm: bool = True,
    ):
        resolved = get_heuristic(heuristic)
        if resolved.randomized:
            raise ExperimentError(
                f"live replanning requires a deterministic heuristic; "
                f"{resolved.name} is randomized"
            )
        self.instance = instance
        self.heuristic = resolved.name
        self.warm = bool(warm)
        self.counters = ReplanCounters()
        self._clock = _Clock()
        self._up = np.ones(instance.num_machines, dtype=bool)
        self._mapping: np.ndarray | None = None
        self._period: float | None = None
        self._plans: dict[bytes, np.ndarray] = {}
        self._evaluator: MappingEvaluator | None = None
        self._seq = 0
        self.records: list[ReplanRecord] = []
        self.initial = self._apply_platform_change(0.0, "initial", None)

    # -- state -------------------------------------------------------------------
    @property
    def up(self) -> np.ndarray:
        """Copy of the up-machine mask."""
        return self._up.copy()

    @property
    def up_count(self) -> int:
        """Number of machines currently up."""
        return int(self._up.sum())

    @property
    def feasible(self) -> bool:
        """Whether a mapping is currently deployed."""
        return self._mapping is not None

    @property
    def mapping(self) -> np.ndarray | None:
        """Copy of the deployed assignment, or ``None`` while unavailable."""
        return None if self._mapping is None else self._mapping.copy()

    @property
    def period(self) -> float | None:
        """Period of the deployed mapping, or ``None`` while unavailable."""
        return self._period

    @property
    def availability(self) -> float:
        """Fraction of the elapsed timeline with a feasible mapping."""
        return self._clock.availability

    @property
    def clock(self) -> float:
        """Timestamp of the last applied event."""
        return self._clock.now

    @property
    def available_seconds(self) -> float:
        """Timeline mass spent with a feasible mapping deployed."""
        return self._clock.available

    @property
    def unavailable_seconds(self) -> float:
        """Timeline mass spent without a feasible mapping."""
        return self._clock.unavailable

    # -- event application -------------------------------------------------------
    def apply(self, event_time: float, kind: str, machine: int | None = None) -> ReplanRecord:
        """Apply one timeline event and return what happened.

        ``fail`` / ``recover`` flip one machine and replan through the
        tier cascade; ``request`` observes the current state (serving it
        or missing).  Events must arrive in non-decreasing time order;
        redundant transitions (failing a down machine, recovering an up
        one) are rejected — they indicate a desynchronized caller.
        """
        self._clock.advance(float(event_time), feasible=self.feasible)
        if kind == "request":
            if machine is not None:
                raise ExperimentError("'request' events take no machine index")
            return self._observe(float(event_time))
        if kind not in ("fail", "recover"):
            raise ExperimentError(
                f"unknown event kind {kind!r}; expected 'fail', 'recover' or 'request'"
            )
        if machine is None or not 0 <= int(machine) < self.instance.num_machines:
            raise ExperimentError(
                f"event machine must be in 0..{self.instance.num_machines - 1}, "
                f"got {machine!r}"
            )
        machine = int(machine)
        going_down = kind == "fail"
        if self._up[machine] != going_down:
            raise ExperimentError(
                f"machine {machine} is already {'down' if going_down else 'up'}"
            )
        self._up[machine] = not going_down
        return self._apply_platform_change(float(event_time), kind, machine)

    def finish(self, horizon: float) -> float:
        """Close the availability integral at ``horizon``; returns it."""
        self._clock.advance(float(horizon), feasible=self.feasible)
        return self.availability

    # -- tiers -------------------------------------------------------------------
    def _apply_platform_change(
        self, event_time: float, kind: str, machine: int | None
    ) -> ReplanRecord:
        start = time.perf_counter()
        with span(
            "replan", kind=kind, machine=machine, heuristic=self.heuristic
        ) as replan_span:
            via = self._replan()
            replan_span.set(via=via)
        latency = time.perf_counter() - start
        setattr(self.counters, via, getattr(self.counters, via) + 1)
        return self._record(event_time, kind, machine, via, self._period, latency)

    def _replan(self) -> str:
        key = self._up.tobytes()
        if self.up_count < self.instance.num_types:
            self._mapping = None
            self._period = None
            return "infeasible"
        cached = self._plans.get(key)
        if cached is not None:
            self._mapping = cached.copy()
            self._period = self._evaluator_for(self._mapping).period
            return "cache"
        if self._mapping is not None and bool(self._up[self._mapping].all()):
            evaluator = self._evaluator_for(self._mapping)
            self._period = self._descend(evaluator)
            self._mapping = evaluator.assignment
            via = "warm"
        else:
            self._mapping, self._period = self._cold_solve()
            via = "cold"
        if len(self._plans) >= PLAN_CACHE_LIMIT:
            self._plans.pop(next(iter(self._plans)))
        self._plans[key] = self._mapping.copy()
        return via

    def _evaluator_for(self, mapping: np.ndarray) -> MappingEvaluator:
        """An evaluator in exactly the numeric state of a fresh one.

        The persistent evaluator resyncs through
        :meth:`~repro.batch.MappingEvaluator.reassign` (assignment swap +
        full refresh), so its ``x`` / contributions / periods are bit for
        bit what ``MappingEvaluator(instance, mapping)`` would compute —
        the warm path only skips the upstream-set rebuild, never drifts.
        """
        if not self.warm:
            return MappingEvaluator(self.instance, mapping)
        if self._evaluator is None:
            self._evaluator = MappingEvaluator(self.instance, mapping)
        else:
            self._evaluator.reassign(mapping)
        return self._evaluator

    def _descend(self, evaluator: MappingEvaluator) -> float:
        """Best-single-move descent restricted to up, specialized moves."""
        cap = 100 * self.instance.num_tasks
        moves = 0
        while moves < cap:
            allowed = (
                specialized_move_mask(self.instance, evaluator.assignment)
                & self._up[np.newaxis, :]
            )
            best = evaluator.best_move(allowed=allowed)
            if best is None:
                break
            task, machine, _ = best
            evaluator.move(task, machine)
            moves += 1
        return evaluator.period

    def _cold_solve(self) -> tuple[np.ndarray, float]:
        """From-scratch heuristic solve of the surviving sub-platform."""
        sub, cols = sub_instance(self.instance, self._up)
        assignment = cols[solve_one(get_heuristic(self.heuristic), sub)]
        evaluator = self._evaluator_for(assignment)
        return assignment, evaluator.period

    # -- observation -------------------------------------------------------------
    def _observe(self, event_time: float) -> ReplanRecord:
        if self.feasible:
            self.counters.served += 1
            via = "serve"
        else:
            self.counters.missed += 1
            via = "miss"
        return self._record(event_time, "request", None, via, self._period, 0.0)

    def _record(
        self,
        event_time: float,
        kind: str,
        machine: int | None,
        via: str,
        period: float | None,
        latency: float,
    ) -> ReplanRecord:
        record = ReplanRecord(
            seq=self._seq,
            time=event_time,
            kind=kind,
            machine=machine,
            via=via,
            feasible=self.feasible,
            mapping=None if self._mapping is None else tuple(int(u) for u in self._mapping),
            period=None if period is None else float(period),
            up_count=self.up_count,
            latency_seconds=latency,
            availability=self.availability,
        )
        self._seq += 1
        self.records.append(record)
        return record
