"""Deterministic discrete-event timelines for the live-replanning workload.

A *timeline* is the input of the live subsystem: a time-ordered sequence
of :class:`LiveEvent` describing what happens to a running platform —
machines **fail**, machines **recover**, and solve **requests** arrive
asking "what mapping should I run right now?".  The replanner
(:mod:`repro.live.replanner`) consumes the events one by one and keeps a
feasible mapping current.

Timelines are *seeded*: :func:`generate_timeline` draws every machine's
alternating up/down phases (exponential time-to-failure / time-to-repair)
and the request arrival process (Poisson) from named
:class:`~repro.simulation.rng.RandomStreamFactory` streams, so the same
:class:`LiveConfig` always produces the same event sequence — in this
process, in a worker, or on the other side of the service's session API.
That determinism is what lets CI assert availability numbers and
bit-for-bit warm/cold equality end to end.

The event-queue merge follows the spirit of the SimPy job-shop exemplar
(SNIPPETS.md Snippet 1) but stays dependency-free: independent per-source
event lists merged through one :func:`heapq.merge` by ``(time, priority,
machine)``.
"""

from __future__ import annotations

import heapq
from dataclasses import asdict, dataclass

from ..exceptions import ExperimentError
from ..simulation.rng import RandomStreamFactory

__all__ = ["EVENT_KINDS", "LiveConfig", "LiveEvent", "generate_timeline"]

#: Recognized event kinds, in tie-break priority order: when several
#: events share a timestamp, failures apply before recoveries before
#: requests — a request arriving "at the same instant" as a failure sees
#: the degraded platform.
EVENT_KINDS = ("fail", "recover", "request")

_PRIORITY = {kind: index for index, kind in enumerate(EVENT_KINDS)}


@dataclass(frozen=True, slots=True)
class LiveEvent:
    """One timeline event.

    ``machine`` is the affected machine index for ``fail`` / ``recover``
    and ``None`` for ``request`` events.
    """

    time: float
    kind: str
    machine: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ExperimentError(
                f"unknown event kind {self.kind!r}; expected one of {EVENT_KINDS}"
            )
        if self.time < 0.0:
            raise ExperimentError(f"event time must be >= 0, got {self.time}")
        if (self.machine is None) != (self.kind == "request"):
            raise ExperimentError(
                f"{self.kind!r} events {'take no' if self.kind == 'request' else 'need a'} "
                "machine index"
            )

    def sort_key(self) -> tuple[float, int, int]:
        """Total, deterministic ordering of simultaneous events."""
        return (self.time, _PRIORITY[self.kind], -1 if self.machine is None else self.machine)

    def to_payload(self) -> dict:
        """The JSON body of a ``POST /v1/session/{id}/event`` call."""
        payload = {"kind": self.kind, "time": self.time}
        if self.machine is not None:
            payload["machine"] = self.machine
        return payload


@dataclass(frozen=True, slots=True)
class LiveConfig:
    """Everything that defines one live scenario.

    The static part (``tasks`` / ``types`` / ``machines`` / ``heuristic``
    / ``seed`` / ``repetition``) names a content-addressed service solve
    request — the instance a live session replans is *exactly* the one
    ``POST /v1/solve`` would draw for the same fields.  The dynamic part
    parameterizes the failure process:

    ``duration``
        Timeline horizon (time units; the paper's ``w`` are milliseconds
        but the live clock is unitless).
    ``mtbf`` / ``mttr``
        Mean time between failures / mean time to repair of each machine
        (exponential phases, independent across machines).
    ``arrival_rate``
        Poisson rate of solve-request arrivals (0 disables them).
    """

    tasks: int = 12
    types: int = 3
    machines: int = 6
    heuristic: str = "H4ls"
    seed: int = 0
    repetition: int = 0
    duration: float = 100.0
    mtbf: float = 60.0
    mttr: float = 15.0
    arrival_rate: float = 0.1

    def __post_init__(self) -> None:
        if self.duration <= 0.0:
            raise ExperimentError(f"duration must be > 0, got {self.duration}")
        if self.mtbf <= 0.0 or self.mttr <= 0.0:
            raise ExperimentError("mtbf and mttr must both be > 0")
        if self.arrival_rate < 0.0:
            raise ExperimentError(f"arrival_rate must be >= 0, got {self.arrival_rate}")

    def session_payload(self) -> dict:
        """The ``POST /v1/session`` body creating this scenario's session."""
        return {
            "heuristic": self.heuristic,
            "application": {"tasks": self.tasks, "types": self.types},
            "platform": {"machines": self.machines},
            "options": {"seed": self.seed, "repetition": self.repetition},
        }

    def to_dict(self) -> dict:
        """Plain-dict representation (JSON friendly)."""
        return asdict(self)


def _machine_phases(config: LiveConfig, machine: int, streams: RandomStreamFactory):
    """One machine's alternating fail/recover events within the horizon."""
    rng = streams.stream("live/machine", machine)
    clock = 0.0
    up = True
    while True:
        clock += float(rng.exponential(config.mtbf if up else config.mttr))
        if clock >= config.duration:
            return
        yield LiveEvent(time=clock, kind="fail" if up else "recover", machine=machine)
        up = not up


def _arrivals(config: LiveConfig, streams: RandomStreamFactory):
    """The Poisson solve-request arrivals within the horizon."""
    if config.arrival_rate == 0.0:
        return
    rng = streams.stream("live/requests", 0)
    clock = 0.0
    while True:
        clock += float(rng.exponential(1.0 / config.arrival_rate))
        if clock >= config.duration:
            return
        yield LiveEvent(time=clock, kind="request")


def generate_timeline(config: LiveConfig) -> list[LiveEvent]:
    """The full, deterministic event sequence of one scenario.

    Each machine's phase process and the arrival process draw from their
    own named streams (derived from ``config.seed``), so adding machines
    or changing the arrival rate never perturbs the other sources — the
    same property the experiment layer relies on for repetition streams.

    The sequence always ends with a ``request`` probe at exactly
    ``t = duration``: it closes the availability integral (every run
    accounts for the full horizon) and gives remote runs a final
    serve/miss observation without a state-mutating call.
    """
    streams = RandomStreamFactory(config.seed)
    sources = [_machine_phases(config, u, streams) for u in range(config.machines)]
    sources.append(_arrivals(config, streams))
    events = list(
        heapq.merge(*(sorted(src, key=LiveEvent.sort_key) for src in sources),
                    key=LiveEvent.sort_key)
    )
    events.append(LiveEvent(time=config.duration, kind="request"))
    return events
