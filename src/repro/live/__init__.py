"""Live replanning: a platform that fails and recovers, not a frozen one.

Everything below :mod:`repro.service` solves *static* instances; this
package opens the paper's actual operating regime — a micro-factory
whose machines fail and recover while production runs — as a
deterministic discrete-event workload:

* :mod:`~repro.live.timeline` — seeded fail/recover/request event
  timelines (:func:`generate_timeline`, :class:`LiveConfig`);
* :mod:`~repro.live.replanner` — the incremental replanner: plan cache →
  warm-start descent from the previous mapping (via
  :class:`~repro.batch.MappingEvaluator` and the local-search move
  kernels) → cold sub-platform solve → infeasible, with availability and
  per-event latency accounting;
* :mod:`~repro.live.runner` — end-to-end timeline execution, in process
  or through the service's ``/v1/session`` API, plus the bit-for-bit
  run comparison used by tests and the CI live smoke.

The contract mirrors the service's: *how* a mapping was obtained (warm
start, plan cache, remote session) never changes *what* it is — a warm
run, a ``warm=False`` cold re-solve run and a remote session replay of
the same timeline are required to agree bit for bit on every event.
"""

from .replanner import ReplanRecord, Replanner, sub_instance
from .runner import (
    LiveReport,
    build_replanner,
    compare_reports,
    run_timeline,
    run_timeline_remote,
)
from .timeline import EVENT_KINDS, LiveConfig, LiveEvent, generate_timeline

__all__ = [
    "EVENT_KINDS",
    "LiveConfig",
    "LiveEvent",
    "LiveReport",
    "ReplanRecord",
    "Replanner",
    "build_replanner",
    "compare_reports",
    "generate_timeline",
    "run_timeline",
    "run_timeline_remote",
    "sub_instance",
]
