"""End-to-end execution of a live timeline, locally or against a service.

:func:`run_timeline` drives a :class:`~repro.live.replanner.Replanner`
through every event of a scenario's generated timeline in process;
:func:`run_timeline_remote` replays the *same* timeline through a
running solve service's session API (one ``POST /v1/session``, one
``POST .../event`` per event, one ``DELETE``).  Both return a
:class:`LiveReport` whose per-event records carry identical fields, so
:func:`compare_reports` can require a warm run, a cold re-solve run and
a remote session to agree **bit for bit** — the live subsystem's
equivalent of the service's batched-equals-direct contract.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..exceptions import ExperimentError
from ..service.requests import normalize_session_request
from .replanner import Replanner
from .timeline import LiveConfig, generate_timeline

__all__ = ["LiveReport", "compare_reports", "run_timeline", "run_timeline_remote"]

#: Record fields that must agree bit for bit across warm / cold / remote
#: runs of the same scenario (``replan_ms`` is a measurement, not state).
_STATE_FIELDS = (
    "seq",
    "time",
    "kind",
    "machine",
    "via",
    "feasible",
    "mapping",
    "period",
    "up_count",
    "availability",
)


def _percentile(ordered: list[float], q: float) -> float:
    if not ordered:
        return 0.0
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True, slots=True)
class LiveReport:
    """Outcome of one timeline run.

    ``records`` holds one dict per event (the initial solve is record 0)
    in the JSON shape of the session event responses; ``counters`` the
    tier counts; ``latency_ms`` per-tier replan latency summaries.
    """

    config: LiveConfig
    mode: str
    records: list[dict]
    availability: float
    counters: dict
    latency_ms: dict

    def to_dict(self) -> dict:
        """JSON-ready form (the ``microrepro live --json`` output)."""
        return {
            "config": self.config.to_dict(),
            "mode": self.mode,
            "events": len(self.records),
            "availability": self.availability,
            "replans": self.counters,
            "latency_ms": self.latency_ms,
            "records": self.records,
        }

    def summary_lines(self) -> list[str]:
        """Human-readable run summary (the default CLI output)."""
        lines = [
            f"live timeline: {self.config.heuristic} on n={self.config.tasks} "
            f"p={self.config.types} m={self.config.machines}, "
            f"duration {self.config.duration:g} (seed {self.config.seed}, {self.mode})",
            f"  events: {len(self.records)}  availability: {self.availability:.4f}",
            "  replans: "
            + "  ".join(f"{k}={v}" for k, v in self.counters.items()),
        ]
        for tier in ("warm", "cold"):
            stats = self.latency_ms.get(tier)
            if stats and stats["count"]:
                lines.append(
                    f"  {tier} replan latency: p50 {stats['p50']:.3f} ms  "
                    f"p95 {stats['p95']:.3f} ms  max {stats['max']:.3f} ms  "
                    f"({stats['count']} event(s))"
                )
        return lines


def _latency_summary(records: list[dict]) -> dict:
    summary: dict[str, dict] = {}
    for tier in ("warm", "cold", "cache"):
        samples = sorted(
            rec["replan_ms"] for rec in records if rec["via"] == tier
        )
        summary[tier] = {
            "count": len(samples),
            "p50": _percentile(samples, 0.50),
            "p95": _percentile(samples, 0.95),
            "max": samples[-1] if samples else 0.0,
        }
    return summary


def _counters(records: list[dict]) -> dict:
    counts = {k: 0 for k in ("cache", "warm", "cold", "infeasible", "served", "missed")}
    via_to_key = {
        "cache": "cache",
        "warm": "warm",
        "cold": "cold",
        "infeasible": "infeasible",
        "serve": "served",
        "miss": "missed",
    }
    for rec in records:
        counts[via_to_key[rec["via"]]] += 1
    return counts


def build_replanner(config: LiveConfig, *, warm: bool = True) -> Replanner:
    """The scenario's replanner over its content-addressed instance.

    The instance is drawn through the *service request* normalisation,
    so a local run and a session created from
    :meth:`LiveConfig.session_payload` replan the exact same draw.
    """
    spec = normalize_session_request(config.session_payload())
    return Replanner(spec.request.sample(), config.heuristic, warm=warm)


def run_timeline(config: LiveConfig, *, warm: bool = True) -> LiveReport:
    """Run the scenario's whole timeline in process."""
    replanner = build_replanner(config, warm=warm)
    records = [replanner.initial.to_dict()]
    for event in generate_timeline(config):
        records.append(replanner.apply(event.time, event.kind, event.machine).to_dict())
    availability = replanner.finish(config.duration)
    return LiveReport(
        config=config,
        mode="warm" if warm else "cold",
        records=records,
        availability=availability,
        counters=replanner.counters.as_dict(),
        latency_ms=_latency_summary(records),
    )


def run_timeline_remote(config: LiveConfig, client) -> LiveReport:
    """Replay the scenario's timeline through a service session.

    ``client`` is a :class:`~repro.service.client.ServiceClient` (or
    anything with a compatible ``session`` method).  The per-event
    records come back from the server, so comparing this report against
    a local one checks the whole session path — normalisation, executor
    hand-off, serialization — not just the replanner.
    """
    records: list[dict] = []
    with client.session(config.session_payload()) as session:
        records.append({k: session.created[k] for k in session.created if k != "session"})
        for event in generate_timeline(config):
            response = session.event(**event.to_payload())
            records.append({k: response[k] for k in response if k != "session"})
        closed = session.close()
    availability = closed["availability"]
    return LiveReport(
        config=config,
        mode="remote",
        records=records,
        availability=availability,
        counters=_counters(records),
        latency_ms=_latency_summary(records),
    )


def compare_reports(reference: LiveReport, candidate: LiveReport) -> None:
    """Require two runs of one scenario to agree bit for bit.

    Compares every state field of every record plus the final
    availability; replan latencies are measurements and excluded.
    Raises :class:`~repro.exceptions.ExperimentError` on the first
    divergence — warm-start replanning diverging from the cold re-solve
    (or a remote session diverging from a local run) is a correctness
    bug, not noise.
    """
    if len(reference.records) != len(candidate.records):
        raise ExperimentError(
            f"{reference.mode} run produced {len(reference.records)} record(s) but "
            f"{candidate.mode} produced {len(candidate.records)}"
        )
    for ref, cand in zip(reference.records, candidate.records):
        for fld in _STATE_FIELDS:
            if ref.get(fld) != cand.get(fld):
                raise ExperimentError(
                    f"record {ref.get('seq')} differs between {reference.mode} and "
                    f"{candidate.mode} runs: {fld} = {ref.get(fld)!r} vs "
                    f"{cand.get(fld)!r}"
                )
    if reference.availability != candidate.availability:
        raise ExperimentError(
            f"availability differs: {reference.availability!r} ({reference.mode}) vs "
            f"{candidate.availability!r} ({candidate.mode})"
        )
