"""Shard-completeness reporting: which units of a plan are stored.

``microrepro shard status`` answers the fleet-operations question PR 4
left open: *how far along is every shard of a distributed campaign?*
Each shard's plan is checked unit by unit against a store — either the
shard's own store directory (one store per shard) or one merged store
covering the whole fleet — and classified:

``done``
    The cell is stored with at least the plan's repetition count.
``partial``
    A cell exists but with fewer repetitions than the plan requires
    (e.g. a store carried over from a smaller trial run); the worker
    will recompute it.
``missing``
    No cell under the unit's key: the work has not run (or its store
    was lost).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from ..exceptions import ExperimentError
from ..experiments.store import ResultStore
from .plan import CAMPAIGN_FILE, CampaignManifest, ShardPlan, load_plan, plan

__all__ = [
    "ShardStatus",
    "shard_status",
    "load_shard_plans",
    "status_rows",
    "status_payload",
]


@dataclass(frozen=True, slots=True)
class ShardStatus:
    """Completeness of one shard plan against one store."""

    shard: int
    shards: int
    store: str
    units: int
    done: int
    partial: int
    missing: int

    @property
    def complete(self) -> bool:
        """True when every unit is stored at full depth."""
        return self.done == self.units

    def as_row(self) -> dict:
        """One catalogue row for the CLI table."""
        return {
            "shard": f"{self.shard}/{self.shards}",
            "store": self.store,
            "units": self.units,
            "done": self.done,
            "partial": self.partial,
            "missing": self.missing,
            "complete": self.complete,
        }


def shard_status(shard: ShardPlan, store: ResultStore) -> ShardStatus:
    """Classify every unit of one shard plan against a store."""
    manifest = shard.manifest
    done = partial = missing = 0
    scenario_info: dict[str, tuple[str, int]] = {}
    for unit in shard.units:
        if unit.figure_id not in scenario_info:
            scenario = manifest.scenario_for(unit.figure_id)
            scenario_info[unit.figure_id] = (
                scenario.stable_hash(),
                scenario.repetitions,
            )
        scenario_hash, repetitions = scenario_info[unit.figure_id]
        record = store.get_cell(
            unit.figure_id, scenario_hash, unit.seed, unit.curve, unit.sweep_value
        )
        if record is None:
            missing += 1
        elif record.repetitions >= repetitions:
            done += 1
        else:
            partial += 1
    return ShardStatus(
        shard=shard.index,
        shards=shard.shards,
        store=str(store.path),
        units=len(shard.units),
        done=done,
        partial=partial,
        missing=missing,
    )


def load_shard_plans(path: str | os.PathLike) -> list[ShardPlan]:
    """Every shard plan of a planner output.

    ``path`` may be a planner directory (the ``--out`` of ``shard
    plan``: its ``campaign.json`` is re-planned into all shards), a
    campaign manifest file (same — also accepts the unsharded
    ``campaign.json`` a plain ``microrepro campaign`` writes next to its
    store), or a single ``shard_k.json`` (that one shard only).
    """
    target = Path(path)
    if target.is_dir():
        campaign = target / CAMPAIGN_FILE
        if not campaign.exists():
            raise ExperimentError(
                f"{target} holds no {CAMPAIGN_FILE}; pass a planner directory, "
                "the campaign manifest, or one shard_k.json"
            )
        target = campaign
    try:
        raw = json.loads(target.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ExperimentError(f"cannot read plan file {target}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ExperimentError(f"{target} is not a valid plan file: {exc}") from exc
    if "units" in raw:
        return [load_plan(target)]
    # A campaign manifest: expand and partition once — per-shard
    # load_plan calls would redo the full unit expansion per shard.
    shards = int(raw.pop("shards", None) or 1)
    by = str(raw.pop("by", None) or "seed")
    balance = str(raw.pop("balance", None) or "round_robin")
    manifest = CampaignManifest.from_dict(raw)
    return plan(manifest, shards=shards, by=by, balance=balance)


def status_payload(rows: list[ShardStatus]) -> dict:
    """Machine-readable status document (``shard status --json``).

    One format shared by ``shard status --json`` and ``dag status
    --json`` so CI tooling parses both: per-shard rows plus campaign-
    level totals and a single ``complete`` verdict.
    """
    return {
        "shards": [row.as_row() for row in rows],
        "units": sum(row.units for row in rows),
        "done": sum(row.done for row in rows),
        "partial": sum(row.partial for row in rows),
        "missing": sum(row.missing for row in rows),
        "complete": all(row.complete for row in rows),
    }


def status_rows(
    plans: list[ShardPlan], store_paths: list[str | os.PathLike]
) -> list[ShardStatus]:
    """Status of every shard against its store.

    One store path per shard pairs them in index order; a single store
    path checks every shard against it (the merged-store case).
    """
    if not plans:
        raise ExperimentError("no shard plans to check")
    if len(store_paths) == 1:
        store_paths = list(store_paths) * len(plans)
    if len(store_paths) != len(plans):
        raise ExperimentError(
            f"{len(plans)} shard plan(s) but {len(store_paths)} store(s); pass one "
            "store per shard (in shard order) or a single merged store"
        )
    rows = []
    stores: dict[str, ResultStore] = {}
    try:
        for shard, path in zip(plans, store_paths):
            key = str(path)
            if key not in stores:
                stores[key] = ResultStore(path)
            rows.append(shard_status(shard, stores[key]))
    finally:
        for store in stores.values():
            store.close()
    return rows
