"""Merge shard stores back into one campaign store.

Thin path-level convenience over
:meth:`repro.experiments.store.ResultStore.merge` (where the union /
conflict-detection semantics live): open the destination, open every
source read-only, merge, close.  Sources must exist — a typo'd path
must fail loudly, not union an implicitly created empty store.
"""

from __future__ import annotations

import os
from pathlib import Path

from ..exceptions import ExperimentError
from ..experiments.store import MergeReport, ResultStore

__all__ = ["merge_stores"]


def merge_stores(
    destination: str | os.PathLike, sources: "list[str | os.PathLike]"
) -> MergeReport:
    """Merge every source store into ``destination`` (created if missing).

    Returns the :class:`~repro.experiments.store.MergeReport`; raises
    :class:`~repro.exceptions.ExperimentError` on missing sources or
    conflicting records (in which case the destination is untouched).
    """
    if not sources:
        raise ExperimentError("store merge needs at least one source store")
    missing = [str(path) for path in sources if not Path(path).is_dir()]
    if missing:
        raise ExperimentError(f"source store(s) not found: {', '.join(missing)}")
    opened = [ResultStore(path) for path in sources]
    with ResultStore(destination) as dest:
        return dest.merge(*opened)
