"""Campaign manifests and the deterministic shard planner.

A :class:`CampaignManifest` describes one Monte-Carlo campaign: which
figures to reproduce, over which root seeds, at which scale.  The
planner expands it into the campaign's **work units** — one per
``(figure, seed, curve, sweep value)`` block, the exact granularity of
the result store's cell records — and partitions them into ``N``
disjoint :class:`ShardPlan` s:

>>> manifest = CampaignManifest(figures=("fig5",), seeds=(0, 1), repetitions=4)
>>> shards = plan(manifest, shards=2, by="seed")
>>> sum(len(s.units) for s in shards) == len(expand_units(manifest))
True

Planning is a pure function of ``(manifest, shards, by)``: re-planning
on any host reproduces the same partition, so a worker given only the
campaign manifest and its ``k/N`` coordinates computes exactly the same
units as one given a serialized per-shard manifest.

The ``by`` axis controls what stays together on one shard:

``"seed"``
    Whole seeds (every figure of seed ``s`` on one host) — the natural
    choice for multi-seed campaigns, no cross-host RunMeta sharing.
``"curve"``
    (figure, seed, curve) groups — spreads expensive curves (MIP, the
    binary-search family) across hosts.
``"block"``
    Individual blocks — finest partition, best balance for small
    campaigns.

Units are assigned round-robin over the grouping keys in first-
appearance order, so shard *counts* stay within one group of each
other.  Counts are not costs: a MIP block runs ~100x a heuristic block
(see :mod:`repro.dag.cost`), so ``balance="cost"`` instead assigns
groups longest-processing-time-first to the least-loaded shard, keeping
estimated shard *durations* level.  Both policies are pure functions of
their inputs — re-planning anywhere reproduces the same partition.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, fields
from pathlib import Path

from ..exceptions import ExperimentError
from ..experiments.figures import FIGURES, FigureSpec
from ..experiments.providers import resolve_curves
from ..generators.scenarios import ScenarioConfig

__all__ = [
    "CampaignManifest",
    "WorkUnit",
    "ShardPlan",
    "parse_seed_spec",
    "expand_units",
    "plan",
    "write_plans",
    "load_plan",
    "PLAN_AXES",
    "PLAN_BALANCES",
]

#: Valid shard-partition axes.
PLAN_AXES = ("seed", "curve", "block")

#: Valid shard-balancing policies.
PLAN_BALANCES = ("round_robin", "cost")

#: File name of the campaign-level manifest written next to shard plans.
CAMPAIGN_FILE = "campaign.json"


def parse_seed_spec(spec: str | int) -> tuple[int, ...]:
    """Expand a seed specification into an explicit tuple.

    Accepts a plain integer, an inclusive range ``"0..9"``, or a
    comma-separated mix of both (``"0..3,7,9"``).
    """
    if isinstance(spec, int):
        return (spec,)
    seeds: list[int] = []
    for part in str(spec).split(","):
        part = part.strip()
        if not part:
            continue
        if ".." in part:
            low_text, _, high_text = part.partition("..")
            try:
                low, high = int(low_text), int(high_text)
            except ValueError as exc:
                raise ExperimentError(f"bad seed range {part!r}; expected LO..HI") from exc
            if high < low:
                raise ExperimentError(f"bad seed range {part!r}: {high} < {low}")
            seeds.extend(range(low, high + 1))
        else:
            try:
                seeds.append(int(part))
            except ValueError as exc:
                raise ExperimentError(
                    f"bad seed {part!r}; expected an integer or LO..HI"
                ) from exc
    if not seeds:
        raise ExperimentError(f"seed spec {spec!r} expands to no seeds")
    if len(set(seeds)) != len(seeds):
        raise ExperimentError(f"seed spec {spec!r} repeats a seed")
    return tuple(seeds)


@dataclass(frozen=True, slots=True)
class CampaignManifest:
    """Everything that defines a campaign's results (plus worker knobs).

    The first block of fields determines *what* is computed — they are
    part of the plan's identity and must match between planner and
    workers.  ``workers`` and ``memoize_instances`` only affect how fast
    a host computes its shard and may differ per host.
    """

    figures: tuple[str, ...]
    seeds: tuple[int, ...] = (0,)
    repetitions: int | None = None
    max_points: int | None = None
    no_milp: bool = False
    milp_time_limit: float = 30.0
    optional_curves: bool = False
    workers: int | None = None
    memoize_instances: bool = False

    def __post_init__(self) -> None:
        if not self.figures:
            raise ExperimentError("a campaign needs at least one figure")
        for figure_id in self.figures:
            if figure_id not in FIGURES:
                raise ExperimentError(
                    f"unknown figure {figure_id!r}; known figures: {sorted(FIGURES)}"
                )
        if not self.seeds:
            raise ExperimentError("a campaign needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ExperimentError("campaign seeds must be distinct")

    def spec_for(self, figure_id: str) -> FigureSpec:
        """The figure's spec (validated at construction)."""
        return FIGURES[figure_id]

    def scenario_for(self, figure_id: str) -> ScenarioConfig:
        """The (possibly scaled-down) scenario a figure actually runs."""
        return self.spec_for(figure_id).scenario.scaled(
            repetitions=self.repetitions, max_points=self.max_points
        )

    def use_milp_for(self, figure_id: str) -> bool:
        """Whether the MIP curve runs for a figure under this manifest."""
        return False if self.no_milp else self.scenario_for(figure_id).include_milp

    def curves_for(self, figure_id: str) -> tuple[str, ...]:
        """The figure's curve labels, in the engine's series order."""
        spec = self.spec_for(figure_id)
        scenario = self.scenario_for(figure_id)
        providers = resolve_curves(
            scenario,
            use_milp=self.use_milp_for(figure_id),
            use_oto=scenario.include_one_to_one,
            milp_time_limit=self.milp_time_limit,
            extra_curves=spec.optional_curves if self.optional_curves else (),
        )
        return tuple(provider.label for provider in providers)

    # -- serialisation ----------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready plain-dict representation."""
        data = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            data[spec.name] = list(value) if isinstance(value, tuple) else value
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignManifest":
        """Rebuild a manifest from :meth:`to_dict` output.

        Accepts pre-distributed campaign manifests too: a scalar
        ``"seed"`` field is promoted to a one-element ``seeds`` axis.
        """
        kwargs = dict(data)
        if "seed" in kwargs and "seeds" not in kwargs:
            kwargs["seeds"] = [kwargs.pop("seed")]
        kwargs.pop("seed", None)
        known = {spec.name for spec in fields(cls)}
        unknown = set(kwargs) - known
        if unknown:
            raise ExperimentError(
                f"unknown campaign manifest fields {sorted(unknown)}; "
                f"expected {sorted(known)}"
            )
        for name in ("figures", "seeds"):
            if name in kwargs and kwargs[name] is not None:
                kwargs[name] = tuple(kwargs[name])
        return cls(**kwargs)


@dataclass(frozen=True, slots=True)
class WorkUnit:
    """One block of work: a (figure, seed, curve, sweep value) cell.

    The unit of distribution is the unit of storage — computing a unit
    produces exactly one :class:`~repro.experiments.store.CellRecord`,
    which is what makes shard stores mergeable without coordination.
    """

    figure_id: str
    seed: int
    curve: str
    sweep_value: int

    def as_list(self) -> list:
        """JSON-ready ``[figure, seed, curve, sweep value]`` quadruple."""
        return [self.figure_id, self.seed, self.curve, self.sweep_value]

    @classmethod
    def from_list(cls, data: list) -> "WorkUnit":
        figure_id, seed, curve, sweep_value = data
        return cls(str(figure_id), int(seed), str(curve), int(sweep_value))

    def group_key(self, by: str) -> tuple:
        """The shard-assignment key of this unit along one plan axis."""
        if by == "seed":
            return (self.seed,)
        if by == "curve":
            return (self.figure_id, self.seed, self.curve)
        if by == "block":
            return (self.figure_id, self.seed, self.curve, self.sweep_value)
        raise ExperimentError(f"unknown plan axis {by!r}; use one of {PLAN_AXES}")


def expand_units(manifest: CampaignManifest) -> list[WorkUnit]:
    """Every work unit of a campaign, in canonical order.

    Canonical order — figures (manifest order), then seeds, then curves
    (series order), then sweep values — is what makes planning
    deterministic and shard manifests reproducible from ``(manifest, N,
    by)`` alone.
    """
    units: list[WorkUnit] = []
    for figure_id in manifest.figures:
        scenario = manifest.scenario_for(figure_id)
        curves = manifest.curves_for(figure_id)
        for seed in manifest.seeds:
            for curve in curves:
                for sweep_value in scenario.sweep_values:
                    units.append(WorkUnit(figure_id, seed, curve, int(sweep_value)))
    return units


@dataclass(frozen=True, slots=True)
class ShardPlan:
    """One worker's slice of a campaign: the manifest plus its units."""

    manifest: CampaignManifest
    index: int
    shards: int
    by: str
    units: tuple[WorkUnit, ...] = field(default_factory=tuple)
    balance: str = "round_robin"

    @property
    def name(self) -> str:
        """Display name (``shard 2/4``)."""
        return f"shard {self.index}/{self.shards}"

    def to_dict(self) -> dict:
        return {
            "manifest": self.manifest.to_dict(),
            "shard": self.index,
            "shards": self.shards,
            "by": self.by,
            "balance": self.balance,
            "units": [unit.as_list() for unit in self.units],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardPlan":
        return cls(
            manifest=CampaignManifest.from_dict(data["manifest"]),
            index=int(data["shard"]),
            shards=int(data["shards"]),
            by=str(data["by"]),
            units=tuple(WorkUnit.from_list(unit) for unit in data["units"]),
            balance=str(data.get("balance", "round_robin")),
        )


def _assign_by_cost(
    manifest: CampaignManifest, units: list[WorkUnit], by: str, shards: int
) -> dict[tuple, int]:
    """LPT assignment of group keys to shards by estimated cost.

    Groups (in first-appearance order) are priced with the
    :mod:`repro.dag.cost` model, sorted longest first, and each assigned
    to the currently least-loaded shard.  Ties break on first-appearance
    order then shard index, so the partition is deterministic.
    """
    from ..dag.cost import unit_cost

    order: list[tuple] = []
    group_cost: dict[tuple, float] = {}
    for unit in units:
        key = unit.group_key(by)
        if key not in group_cost:
            group_cost[key] = 0.0
            order.append(key)
        group_cost[key] += unit_cost(manifest, unit)
    rank = {key: position for position, key in enumerate(order)}
    loads = [0.0] * shards
    assignment: dict[tuple, int] = {}
    for key in sorted(order, key=lambda key: (-group_cost[key], rank[key])):
        shard = min(range(shards), key=lambda index: (loads[index], index))
        assignment[key] = shard
        loads[shard] += group_cost[key]
    return assignment


def plan(
    manifest: CampaignManifest,
    *,
    shards: int,
    by: str = "seed",
    balance: str = "round_robin",
) -> list[ShardPlan]:
    """Partition a campaign into ``shards`` disjoint, covering shard plans.

    With ``balance="round_robin"``, group keys along the ``by`` axis are
    assigned round-robin in first-appearance order over the canonical
    unit expansion; with ``balance="cost"``, longest-processing-time-
    first by the calibrated cost model (see module docstring).  Either
    way two calls with the same arguments produce identical plans on any
    host, every unit lands on exactly one shard, and units keep their
    canonical order within each shard (some shards may be empty when
    there are fewer groups than shards).
    """
    if shards < 1:
        raise ExperimentError(f"shards must be >= 1, got {shards}")
    if by not in PLAN_AXES:
        raise ExperimentError(f"unknown plan axis {by!r}; use one of {PLAN_AXES}")
    if balance not in PLAN_BALANCES:
        raise ExperimentError(
            f"unknown balance policy {balance!r}; use one of {PLAN_BALANCES}"
        )
    units = expand_units(manifest)
    per_shard: list[list[WorkUnit]] = [[] for _ in range(shards)]
    if balance == "cost":
        assignment = _assign_by_cost(manifest, units, by, shards)
        for unit in units:
            per_shard[assignment[unit.group_key(by)]].append(unit)
    else:
        rr_assignment: dict[tuple, int] = {}
        for unit in units:
            key = unit.group_key(by)
            shard = rr_assignment.setdefault(key, len(rr_assignment) % shards)
            per_shard[shard].append(unit)
    return [
        ShardPlan(
            manifest=manifest,
            index=index,
            shards=shards,
            by=by,
            units=tuple(units),
            balance=balance,
        )
        for index, units in enumerate(per_shard)
    ]


def write_plans(
    manifest: CampaignManifest,
    out_dir: str | os.PathLike,
    *,
    shards: int,
    by: str = "seed",
    balance: str = "round_robin",
) -> list[tuple[Path, ShardPlan]]:
    """Write ``campaign.json`` plus one ``shard_<k>.json`` per shard.

    Returns ``(path, plan)`` pairs (ship each path to its worker host;
    the campaign manifest alone also suffices together with ``--shard
    k/N``).
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    shard_plans = plan(manifest, shards=shards, by=by, balance=balance)
    campaign_doc = dict(manifest.to_dict(), shards=shards, by=by, balance=balance)
    (out / CAMPAIGN_FILE).write_text(
        json.dumps(campaign_doc, indent=2) + "\n", encoding="utf-8"
    )
    written = []
    for shard_plan in shard_plans:
        path = out / f"shard_{shard_plan.index}.json"
        path.write_text(json.dumps(shard_plan.to_dict(), indent=2) + "\n", encoding="utf-8")
        written.append((path, shard_plan))
    return written


def load_plan(
    path: str | os.PathLike,
    *,
    shard: tuple[int, int] | None = None,
    by: str | None = None,
    balance: str | None = None,
) -> ShardPlan:
    """Load a shard plan from a planner file.

    ``path`` may be a per-shard manifest (``shard_k.json``, self-
    contained) or a campaign manifest — the latter needs ``shard=(k,
    N)`` and re-plans deterministically, which is how a worker can run
    from nothing but the campaign file and its coordinates.
    """
    try:
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise ExperimentError(f"cannot read plan file {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ExperimentError(f"{path} is not a valid plan file: {exc}") from exc
    if "units" in raw:
        if shard is not None and shard != (int(raw["shard"]), int(raw["shards"])):
            raise ExperimentError(
                f"{path} is shard {raw['shard']}/{raw['shards']}, not "
                f"{shard[0]}/{shard[1]}"
            )
        if by is not None and by != raw["by"]:
            raise ExperimentError(
                f"{path} was planned by {raw['by']!r}; it cannot be re-partitioned "
                f"by {by!r} (re-run 'shard plan', or pass the campaign manifest)"
            )
        if balance is not None and balance != raw.get("balance", "round_robin"):
            raise ExperimentError(
                f"{path} was balanced by {raw.get('balance', 'round_robin')!r}, not "
                f"{balance!r}; re-run 'shard plan' to change the balancing policy"
            )
        return ShardPlan.from_dict(raw)
    count = raw.pop("shards", None)
    recorded_by = raw.pop("by", None)
    recorded_balance = raw.pop("balance", None)
    if by is not None and recorded_by is not None and by != recorded_by:
        # Same hazard as a mismatched shard count: two hosts partitioning
        # the one campaign along different axes don't tile its units.
        raise ExperimentError(
            f"{path} was planned by {recorded_by!r}, not {by!r}; "
            "re-run 'shard plan' to change the partition axis"
        )
    if balance is not None and recorded_balance is not None and balance != recorded_balance:
        raise ExperimentError(
            f"{path} was balanced by {recorded_balance!r}, not {balance!r}; "
            "re-run 'shard plan' to change the balancing policy"
        )
    axis = by or recorded_by or "seed"
    policy = balance or recorded_balance or "round_robin"
    manifest = CampaignManifest.from_dict(raw)
    if shard is None:
        if count in (None, 1):
            shard = (0, 1)
        else:
            raise ExperimentError(
                f"{path} is a campaign manifest planned for {count} shards; "
                "pass --shard k/N to pick one"
            )
    elif count is not None and shard[1] != count:
        # A planner-written campaign file pins the shard count: accepting a
        # different N would silently re-partition the campaign and leave
        # group keys uncovered across the fleet.
        raise ExperimentError(
            f"{path} was planned for {count} shard(s), not {shard[1]}; "
            "re-run 'shard plan' to change the partition"
        )
    index, total = shard
    if not 0 <= index < total:
        raise ExperimentError(f"shard index {index} outside 0..{total - 1}")
    return plan(manifest, shards=total, by=axis, balance=policy)[index]
