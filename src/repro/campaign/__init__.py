"""Distributed campaign orchestration: plan, execute, merge.

The paper's figures are R-repetition Monte-Carlo sweeps; this package
scales them past one host by splitting a campaign into deterministic,
disjoint **shards** executed anywhere and merged back without
coordination:

1. :func:`~repro.campaign.plan.plan` expands a
   :class:`~repro.campaign.plan.CampaignManifest` (figures x seeds x
   curves x sweep points) into per-shard work-unit lists
   (``microrepro shard plan``);
2. :func:`~repro.campaign.worker.run_shard` executes exactly one
   shard's units through the block engine into a local
   :class:`~repro.experiments.store.ResultStore`
   (``microrepro shard run``);
3. :func:`~repro.campaign.merge.merge_stores` unions the shard stores —
   append-only, key-addressed cell records with conflict detection —
   into the store a single host would have produced, bit for bit
   (``microrepro store merge``).

Results are pure functions of ``(scenario, seed, curve, sweep value)``
through CRC-hashed random stream labels, which is what makes the merged
store independent of how the work was partitioned.
"""

from .merge import merge_stores
from .plan import (
    PLAN_AXES,
    PLAN_BALANCES,
    CampaignManifest,
    ShardPlan,
    WorkUnit,
    expand_units,
    load_plan,
    parse_seed_spec,
    plan,
    write_plans,
)
from .status import (
    ShardStatus,
    load_shard_plans,
    shard_status,
    status_payload,
    status_rows,
)
from .worker import ShardReport, run_shard

__all__ = [
    "PLAN_AXES",
    "PLAN_BALANCES",
    "CampaignManifest",
    "ShardPlan",
    "WorkUnit",
    "expand_units",
    "load_plan",
    "parse_seed_spec",
    "plan",
    "write_plans",
    "ShardReport",
    "run_shard",
    "ShardStatus",
    "load_shard_plans",
    "shard_status",
    "status_payload",
    "status_rows",
    "merge_stores",
]
