"""Shard worker: execute exactly one shard's work units into a store.

A worker host receives a :class:`~repro.campaign.plan.ShardPlan` (a
``shard_k.json`` file, or the campaign manifest plus ``k/N``) and a
local result-store directory, and computes *exactly* the plan's units
through the same block engine a single-host campaign uses — the same
providers, the same :class:`~repro.simulation.rng.RandomStreamFactory`
streams re-derived from each unit's root seed.  Because a unit's result
is a pure function of ``(scenario, seed, curve, sweep value)``, the
union of all shard stores carries bit-for-bit the cell records a single
host would have stored — only run-header wall-clocks and on-disk record
order can differ (see :meth:`repro.experiments.store.ResultStore.merge`).

Each completed block is appended to the shard store the moment it
finishes, so a killed worker resumes with ``run_shard(...,
resume=True)`` (the default) and recomputes at most the block in
flight.  Per ``(figure, seed)`` run the worker also records a
:class:`~repro.experiments.store.RunMeta` header carrying the *full*
curve list of the run — not just this shard's — so the merged store can
rebuild :class:`~repro.experiments.runner.ExperimentResult` objects as
soon as every shard landed.

Since the campaign DAG landed, this module is a thin wrapper: the
shard's units map to their :class:`~repro.dag.stage.SolveStage` s and
run through :func:`repro.dag.scheduler.execute_solves`, which adds
content-addressed artifact caching (``artifacts/`` inside the shard
store) and cost-aware work stealing on parallel runs while preserving
the store layout, resume semantics and progress lines above.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..experiments.store import ResultStore
from ..obs.trace import span
from .plan import ShardPlan, WorkUnit

__all__ = ["ShardReport", "run_shard"]


@dataclass(slots=True)
class ShardReport:
    """What one :func:`run_shard` call did.

    Attributes
    ----------
    shard, shards:
        The executed shard's coordinates.
    computed, skipped:
        Blocks computed this call / blocks already stored (resume).
    runs:
        The ``(figure_id, seed)`` runs the shard contributed to.
    elapsed_seconds:
        Wall-clock duration of the call.
    """

    shard: int
    shards: int
    computed: int = 0
    skipped: int = 0
    runs: list[tuple[str, int]] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    def summary(self) -> str:
        """One-line report for the CLI."""
        return (
            f"shard {self.shard}/{self.shards}: {self.computed} block(s) computed, "
            f"{self.skipped} already stored, {len(self.runs)} run(s), "
            f"{self.elapsed_seconds:.1f}s"
        )


def _group_units(units: tuple[WorkUnit, ...]) -> dict[tuple[str, int], list[WorkUnit]]:
    """Units grouped per (figure, seed) run, preserving canonical order."""
    groups: dict[tuple[str, int], list[WorkUnit]] = {}
    for unit in units:
        groups.setdefault((unit.figure_id, unit.seed), []).append(unit)
    return groups


def run_shard(
    shard: ShardPlan,
    store: ResultStore,
    *,
    workers: int | None = None,
    resume: bool = True,
    log=None,
) -> ShardReport:
    """Execute every unit of ``shard`` against ``store``.

    Parameters
    ----------
    shard:
        The plan to execute (see :func:`repro.campaign.plan.load_plan`).
    store:
        Destination store — typically a per-shard directory that is later
        merged; running several shards into one *local* store is also
        fine (the records are key-addressed).
    workers:
        Process-pool size for this host's blocks (overrides the
        manifest's ``workers`` knob when given).
    resume:
        Skip units whose cells the store already holds with at least the
        required repetitions (a re-run after a kill recomputes only the
        remainder).
    log:
        Optional callable for per-run progress lines.
    """
    # Imported lazily: repro.dag.pipeline itself imports campaign.plan,
    # so a module-level import here would make `import repro.dag` (which
    # triggers this package's __init__) a circular-import error.
    from ..dag.artifacts import artifact_store_for
    from ..dag.pipeline import build_pipeline
    from ..dag.scheduler import execute_solves

    manifest = shard.manifest
    report = ShardReport(shard=shard.index, shards=shard.shards)
    start = time.perf_counter()
    with span(
        "campaign.shard",
        shard=shard.index,
        shards=shard.shards,
        units=len(shard.units),
    ) as shard_span:
        pipeline = build_pipeline(manifest)
        artifacts = artifact_store_for(store.path)
        pipeline_report = execute_solves(
            pipeline,
            pipeline.solves_for(shard.units),
            store,
            artifacts,
            workers=workers,
            resume=resume,
            log=log,
        )
        shard_span.set(
            computed=pipeline_report.computed["solve"],
            hits=pipeline_report.hits["solve"],
            stolen=pipeline_report.stolen,
        )
    report.computed = pipeline_report.computed["solve"]
    report.skipped = pipeline_report.hits["solve"]
    report.runs = list(_group_units(shard.units))
    artifacts.flush()
    store.flush()
    report.elapsed_seconds = time.perf_counter() - start
    return report
