"""Shard worker: execute exactly one shard's work units into a store.

A worker host receives a :class:`~repro.campaign.plan.ShardPlan` (a
``shard_k.json`` file, or the campaign manifest plus ``k/N``) and a
local result-store directory, and computes *exactly* the plan's units
through the same block engine a single-host campaign uses — the same
providers, the same :class:`~repro.simulation.rng.RandomStreamFactory`
streams re-derived from each unit's root seed.  Because a unit's result
is a pure function of ``(scenario, seed, curve, sweep value)``, the
union of all shard stores carries bit-for-bit the cell records a single
host would have stored — only run-header wall-clocks and on-disk record
order can differ (see :meth:`repro.experiments.store.ResultStore.merge`).

Each completed block is appended to the shard store the moment it
finishes, so a killed worker resumes with ``run_shard(...,
resume=True)`` (the default) and recomputes at most the block in
flight.  Per ``(figure, seed)`` run the worker also records a
:class:`~repro.experiments.store.RunMeta` header carrying the *full*
curve list of the run — not just this shard's — so the merged store can
rebuild :class:`~repro.experiments.runner.ExperimentResult` objects as
soon as every shard landed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..backend import get_backend
from ..experiments.providers import resolve_provider
from ..experiments.runner import execute_blocks
from ..experiments.store import CellRecord, ResultStore, RunMeta
from ..simulation.rng import RandomStreamFactory
from .plan import ShardPlan, WorkUnit

__all__ = ["ShardReport", "run_shard"]


@dataclass(slots=True)
class ShardReport:
    """What one :func:`run_shard` call did.

    Attributes
    ----------
    shard, shards:
        The executed shard's coordinates.
    computed, skipped:
        Blocks computed this call / blocks already stored (resume).
    runs:
        The ``(figure_id, seed)`` runs the shard contributed to.
    elapsed_seconds:
        Wall-clock duration of the call.
    """

    shard: int
    shards: int
    computed: int = 0
    skipped: int = 0
    runs: list[tuple[str, int]] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    def summary(self) -> str:
        """One-line report for the CLI."""
        return (
            f"shard {self.shard}/{self.shards}: {self.computed} block(s) computed, "
            f"{self.skipped} already stored, {len(self.runs)} run(s), "
            f"{self.elapsed_seconds:.1f}s"
        )


def _group_units(units: tuple[WorkUnit, ...]) -> dict[tuple[str, int], list[WorkUnit]]:
    """Units grouped per (figure, seed) run, preserving canonical order."""
    groups: dict[tuple[str, int], list[WorkUnit]] = {}
    for unit in units:
        groups.setdefault((unit.figure_id, unit.seed), []).append(unit)
    return groups


def run_shard(
    shard: ShardPlan,
    store: ResultStore,
    *,
    workers: int | None = None,
    resume: bool = True,
    log=None,
) -> ShardReport:
    """Execute every unit of ``shard`` against ``store``.

    Parameters
    ----------
    shard:
        The plan to execute (see :func:`repro.campaign.plan.load_plan`).
    store:
        Destination store — typically a per-shard directory that is later
        merged; running several shards into one *local* store is also
        fine (the records are key-addressed).
    workers:
        Process-pool size for this host's blocks (overrides the
        manifest's ``workers`` knob when given).
    resume:
        Skip units whose cells the store already holds with at least the
        required repetitions (a re-run after a kill recomputes only the
        remainder).
    log:
        Optional callable for per-run progress lines.
    """
    manifest = shard.manifest
    pool = workers if workers is not None else manifest.workers
    report = ShardReport(shard=shard.index, shards=shard.shards)
    start = time.perf_counter()
    for (figure_id, seed), units in _group_units(shard.units).items():
        spec = manifest.spec_for(figure_id)
        scenario = manifest.scenario_for(figure_id)
        scenario_hash = scenario.stable_hash()
        repetitions = scenario.repetitions
        entropy = RandomStreamFactory(seed).entropy
        providers = {
            unit.curve: resolve_provider(
                unit.curve, milp_time_limit=manifest.milp_time_limit
            )
            for unit in units
        }

        pending: list[tuple[int, str]] = []
        for unit in units:
            record = (
                store.get_cell(figure_id, scenario_hash, seed, unit.curve, unit.sweep_value)
                if resume
                else None
            )
            if record is not None and record.repetitions >= repetitions:
                report.skipped += 1
            else:
                pending.append((unit.sweep_value, unit.curve))

        run_start = time.perf_counter()

        def record_block(sweep_value: int, label: str, values, failures: int) -> None:
            store.put_cell(
                CellRecord(
                    figure_id=figure_id,
                    scenario_hash=scenario_hash,
                    seed=seed,
                    curve=label,
                    sweep_value=int(sweep_value),
                    repetitions=repetitions,
                    values=values,
                    failures=failures,
                )
            )
            report.computed += 1

        execute_blocks(
            scenario,
            entropy,
            pending,
            providers,
            record_block,
            milp_time_limit=manifest.milp_time_limit,
            workers=pool,
            memoize=manifest.memoize_instances,
        )
        store.put_meta(
            RunMeta(
                figure_id=figure_id,
                scenario_hash=scenario_hash,
                seed=seed,
                scenario=scenario.to_dict(),
                # The run's *full* curve order (this shard may hold only a
                # slice): after the merge the header must describe the
                # whole run so load_result/export work on the union.
                curves=list(manifest.curves_for(figure_id)),
                normalize_to=spec.normalize_to,
                elapsed_seconds=time.perf_counter() - run_start,
                backend=get_backend().name,
            )
        )
        report.runs.append((figure_id, seed))
        if log is not None:
            log(
                f"{figure_id} seed={seed}: {len(pending)} block(s) computed, "
                f"{len(units) - len(pending)} stored"
            )
    store.flush()
    report.elapsed_seconds = time.perf_counter() - start
    return report
