"""Mappings (allocation functions) and mapping rules.

A *mapping* is the allocation function ``a : {0..n-1} -> {0..m-1}`` that
assigns every task to exactly one machine.  Section 4.2 of the paper
defines three rules constraining valid mappings:

* **one-to-one** — a machine processes at most one task
  (``i != i' => a(i) != a(i')``);
* **specialized** — a machine processes tasks of at most one type
  (``t(i) != t(i') => a(i) != a(i')``);
* **general** — no constraint.

This module provides the :class:`Mapping` value object, the
:class:`MappingRule` enumeration, and validation helpers.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from collections.abc import Mapping as MappingABC, Sequence

import numpy as np

from ..exceptions import InvalidMappingError, MappingRuleViolation
from .instance import ProblemInstance

__all__ = ["MappingRule", "Mapping"]


class MappingRule(enum.Enum):
    """The three mapping rules of Section 4.2."""

    ONE_TO_ONE = "one-to-one"
    SPECIALIZED = "specialized"
    GENERAL = "general"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @classmethod
    def coerce(cls, value: "MappingRule | str") -> "MappingRule":
        """Accept either a :class:`MappingRule` or its string value."""
        if isinstance(value, MappingRule):
            return value
        try:
            return cls(value)
        except ValueError as exc:
            valid = ", ".join(rule.value for rule in cls)
            raise InvalidMappingError(
                f"unknown mapping rule {value!r}; expected one of: {valid}"
            ) from exc


class Mapping:
    """An allocation of tasks to machines.

    Parameters
    ----------
    assignment:
        Sequence of length ``n`` whose ``i``-th entry is the machine index
        the task ``i`` is assigned to.
    num_machines:
        Number of machines ``m`` of the platform (must exceed every used
        machine index).

    Notes
    -----
    A mapping is immutable.  Use :meth:`replace` to derive a modified copy.
    """

    __slots__ = ("_assignment", "_num_machines")

    def __init__(self, assignment: Sequence[int] | np.ndarray, num_machines: int):
        arr = np.asarray(list(assignment), dtype=np.int64)
        if arr.ndim != 1 or arr.size == 0:
            raise InvalidMappingError("assignment must be a non-empty 1-D sequence")
        if num_machines <= 0:
            raise InvalidMappingError("num_machines must be positive")
        if np.any(arr < 0) or np.any(arr >= num_machines):
            raise InvalidMappingError(
                f"assignment uses machine indices outside 0..{num_machines - 1}"
            )
        self._assignment = arr
        self._assignment.setflags(write=False)
        self._num_machines = int(num_machines)

    # -- container protocol --------------------------------------------------------
    def __len__(self) -> int:
        return int(self._assignment.size)

    def __getitem__(self, task_index: int) -> int:
        return int(self._assignment[task_index])

    def __iter__(self):
        return iter(int(v) for v in self._assignment)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mapping):
            return NotImplemented
        return self._num_machines == other._num_machines and np.array_equal(
            self._assignment, other._assignment
        )

    def __hash__(self) -> int:
        return hash((self._num_machines, self._assignment.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Mapping({self._assignment.tolist()!r}, num_machines={self._num_machines})"

    # -- properties ---------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        """Number of mapped tasks ``n``."""
        return len(self)

    @property
    def num_machines(self) -> int:
        """Number of machines ``m`` in the platform."""
        return self._num_machines

    @property
    def as_array(self) -> np.ndarray:
        """Read-only numpy view of the allocation vector ``a``."""
        return self._assignment

    # -- derived structure -----------------------------------------------------------
    def machine_of(self, task_index: int) -> int:
        """Machine ``a(i)`` the task is assigned to."""
        return int(self._assignment[task_index])

    def tasks_on(self, machine_index: int) -> list[int]:
        """Sorted task indices assigned to a machine."""
        return [int(i) for i in np.flatnonzero(self._assignment == machine_index)]

    def machine_loads(self) -> dict[int, list[int]]:
        """Mapping from used machine index to its sorted list of tasks."""
        loads: dict[int, list[int]] = defaultdict(list)
        for task, machine in enumerate(self._assignment):
            loads[int(machine)].append(task)
        return dict(loads)

    def used_machines(self) -> list[int]:
        """Sorted indices of machines that run at least one task."""
        return sorted(set(int(v) for v in self._assignment))

    def replace(self, task_index: int, machine_index: int) -> "Mapping":
        """Copy of the mapping with a single task reassigned."""
        new = self._assignment.copy()
        new[task_index] = machine_index
        return Mapping(new, self._num_machines)

    # -- rule checks ------------------------------------------------------------------
    def satisfies_one_to_one(self) -> bool:
        """True if no machine runs more than one task."""
        _, counts = np.unique(self._assignment, return_counts=True)
        return bool(np.all(counts <= 1))

    def satisfies_specialized(self, types: Sequence[int] | np.ndarray) -> bool:
        """True if no machine runs tasks of two different types."""
        types_arr = np.asarray(list(types), dtype=np.int64)
        if types_arr.size != self.num_tasks:
            raise InvalidMappingError(
                f"types covers {types_arr.size} tasks, expected {self.num_tasks}"
            )
        machine_type: dict[int, int] = {}
        for task, machine in enumerate(self._assignment):
            machine = int(machine)
            task_type = int(types_arr[task])
            seen = machine_type.setdefault(machine, task_type)
            if seen != task_type:
                return False
        return True

    def machine_specializations(
        self, types: Sequence[int] | np.ndarray
    ) -> dict[int, set[int]]:
        """For each used machine, the set of task types it runs."""
        types_arr = np.asarray(list(types), dtype=np.int64)
        result: dict[int, set[int]] = defaultdict(set)
        for task, machine in enumerate(self._assignment):
            result[int(machine)].add(int(types_arr[task]))
        return dict(result)

    def rule(self, types: Sequence[int] | np.ndarray) -> MappingRule:
        """The most restrictive rule this mapping satisfies."""
        if self.satisfies_one_to_one():
            return MappingRule.ONE_TO_ONE
        if self.satisfies_specialized(types):
            return MappingRule.SPECIALIZED
        return MappingRule.GENERAL

    def validate(
        self,
        instance: ProblemInstance,
        rule: MappingRule | str = MappingRule.GENERAL,
    ) -> None:
        """Validate the mapping against an instance and a mapping rule.

        Raises
        ------
        InvalidMappingError
            If the mapping does not cover the instance's tasks or exceeds
            its machine count.
        MappingRuleViolation
            If the mapping violates the requested rule.
        """
        rule = MappingRule.coerce(rule)
        if self.num_tasks != instance.num_tasks:
            raise InvalidMappingError(
                f"mapping covers {self.num_tasks} tasks but the instance has "
                f"{instance.num_tasks}"
            )
        if self.num_machines != instance.num_machines:
            raise InvalidMappingError(
                f"mapping assumes {self.num_machines} machines but the instance has "
                f"{instance.num_machines}"
            )
        if rule is MappingRule.ONE_TO_ONE and not self.satisfies_one_to_one():
            raise MappingRuleViolation("mapping assigns two tasks to the same machine")
        if rule is MappingRule.SPECIALIZED and not self.satisfies_specialized(
            list(instance.application.types)
        ):
            raise MappingRuleViolation(
                "mapping assigns tasks of two different types to the same machine"
            )

    # -- serialization ----------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict representation (JSON friendly)."""
        return {
            "assignment": self._assignment.tolist(),
            "num_machines": self._num_machines,
        }

    @classmethod
    def from_dict(cls, data: MappingABC) -> "Mapping":
        """Inverse of :meth:`to_dict`."""
        return cls(data["assignment"], data["num_machines"])

    @classmethod
    def identity(cls, num_tasks: int, num_machines: int | None = None) -> "Mapping":
        """The mapping assigning task ``i`` to machine ``i`` (requires ``m >= n``)."""
        if num_machines is None:
            num_machines = num_tasks
        if num_machines < num_tasks:
            raise InvalidMappingError(
                "identity mapping requires at least as many machines as tasks"
            )
        return cls(np.arange(num_tasks), num_machines)
