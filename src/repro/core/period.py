"""Period / throughput evaluation of a mapping (Section 4.1 of the paper).

Given an instance and a mapping ``a``, the key quantities are:

* ``x_i`` — the average number of products task ``Ti`` must process so that
  one finished product leaves the system.  For a sink task ``x = 1``; for a
  task with successor ``Tj``, ``x_i = x_j / (1 - f[i, a(i)])``.  For a join
  node each predecessor branch must supply one (expected) input product, so
  the recursion propagates unchanged up every branch.
* ``period(Mu) = sum_{i | a(i) = u} x_i * w[i, a(i)]`` — the time machine
  ``Mu`` spends per finished product.
* ``period = max_u period(Mu)`` — the application period; the machines
  attaining the maximum are the *critical machines*.  The throughput is
  ``1 / period``.

The module also computes the expected number of raw products to feed at
each source so that a target number of finished products is produced
(Section 2: "we can compute the number of products needed as input of the
system and guarantee the output for the desired number of products").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidMappingError
from .instance import ProblemInstance
from .mapping import Mapping

__all__ = [
    "expected_products",
    "machine_periods",
    "period",
    "throughput",
    "critical_machines",
    "evaluate",
    "MappingEvaluation",
    "required_inputs",
]


def _check_dimensions(instance: ProblemInstance, mapping: Mapping) -> None:
    if mapping.num_tasks != instance.num_tasks:
        raise InvalidMappingError(
            f"mapping covers {mapping.num_tasks} tasks but the instance has "
            f"{instance.num_tasks}"
        )
    if mapping.num_machines != instance.num_machines:
        raise InvalidMappingError(
            f"mapping assumes {mapping.num_machines} machines but the instance has "
            f"{instance.num_machines}"
        )


def expected_products(instance: ProblemInstance, mapping: Mapping) -> np.ndarray:
    """The vector ``x`` of expected products per task for a given mapping.

    ``x[i]`` is the average number of products task ``Ti`` must process to
    output one final product out of the system, computed by the backward
    recursion of Section 4.1 over the in-tree application graph.
    """
    _check_dimensions(instance, mapping)
    app = instance.application
    f = instance.failure_rates
    x = np.ones(instance.num_tasks, dtype=np.float64)
    # Walk sinks-first so x[successor] is known when visiting a task.
    for task in app.reverse_topological_order():
        succ = app.successor(task)
        x_down = 1.0 if succ is None else x[succ]
        machine = mapping.machine_of(task)
        x[task] = x_down / (1.0 - f[task, machine])
    return x


def machine_periods(instance: ProblemInstance, mapping: Mapping) -> np.ndarray:
    """Per-machine periods ``period(Mu)`` in the same time unit as ``w``.

    Machines with no task mapped to them have a period of ``0``.
    """
    _check_dimensions(instance, mapping)
    x = expected_products(instance, mapping)
    w = instance.processing_times
    periods = np.zeros(instance.num_machines, dtype=np.float64)
    assignment = mapping.as_array
    np.add.at(periods, assignment, x * w[np.arange(instance.num_tasks), assignment])
    return periods


def period(instance: ProblemInstance, mapping: Mapping) -> float:
    """The application period: ``max_u period(Mu)`` (lower is better)."""
    return float(machine_periods(instance, mapping).max())


def throughput(instance: ProblemInstance, mapping: Mapping) -> float:
    """Number of finished products per time unit: ``1 / period``."""
    p = period(instance, mapping)
    return math.inf if p == 0.0 else 1.0 / p


def critical_machines(
    instance: ProblemInstance, mapping: Mapping, *, rel_tol: float = 1e-9
) -> list[int]:
    """Indices of the machines whose period attains the maximum."""
    periods = machine_periods(instance, mapping)
    top = periods.max()
    if top == 0.0:
        return []
    return [int(u) for u in np.flatnonzero(periods >= top * (1.0 - rel_tol))]


def required_inputs(
    instance: ProblemInstance, mapping: Mapping, products_out: float = 1.0
) -> dict[int, float]:
    """Expected number of raw products to feed at each source task.

    Parameters
    ----------
    products_out:
        Desired number ``x_out`` of finished products.

    Returns
    -------
    dict
        ``{source task index: expected number of raw products}``; the value
        is ``x[source] * products_out``.
    """
    if products_out < 0:
        raise InvalidMappingError("products_out must be non-negative")
    x = expected_products(instance, mapping)
    return {src: float(x[src] * products_out) for src in instance.application.sources()}


@dataclass(frozen=True, slots=True)
class MappingEvaluation:
    """Full evaluation of a mapping on an instance.

    Attributes
    ----------
    mapping:
        The evaluated allocation.
    period:
        Application period (max machine period).
    throughput:
        ``1 / period``.
    machine_periods:
        Per-machine period vector (length ``m``).
    expected_products:
        The ``x`` vector (length ``n``).
    critical_machines:
        Machines whose period equals the application period.
    """

    mapping: Mapping
    period: float
    throughput: float
    machine_periods: tuple[float, ...]
    expected_products: tuple[float, ...]
    critical_machines: tuple[int, ...]

    def as_dict(self) -> dict:
        """Plain-dict representation, convenient for reports."""
        return {
            "assignment": list(self.mapping),
            "period": self.period,
            "throughput": self.throughput,
            "machine_periods": list(self.machine_periods),
            "expected_products": list(self.expected_products),
            "critical_machines": list(self.critical_machines),
        }


def evaluate(instance: ProblemInstance, mapping: Mapping) -> MappingEvaluation:
    """Evaluate a mapping and return every derived quantity at once."""
    _check_dimensions(instance, mapping)
    x = expected_products(instance, mapping)
    w = instance.processing_times
    periods = np.zeros(instance.num_machines, dtype=np.float64)
    assignment = mapping.as_array
    np.add.at(periods, assignment, x * w[np.arange(instance.num_tasks), assignment])
    top = float(periods.max())
    crit = (
        tuple(int(u) for u in np.flatnonzero(periods >= top * (1.0 - 1e-9)))
        if top > 0.0
        else ()
    )
    return MappingEvaluation(
        mapping=mapping,
        period=top,
        throughput=math.inf if top == 0.0 else 1.0 / top,
        machine_periods=tuple(float(v) for v in periods),
        expected_products=tuple(float(v) for v in x),
        critical_machines=crit,
    )
