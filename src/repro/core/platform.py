"""Target platform model: machines and processing times.

The platform (Section 3.2) is a set of ``m`` machines, fully interconnected
(communication times are neglected or modelled as dedicated transfer
tasks).  Machine ``Mu`` performs task ``Ti`` on one product in time
``w[i, u]``; tasks of the same type take the same time on a given machine.

The canonical representation is the ``n x m`` matrix ``w`` of processing
times in milliseconds, plus the task-type assignment needed to enforce the
type-consistency constraint.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidPlatformError
from .types import TypeAssignment

__all__ = ["Machine", "Platform"]


@dataclass(frozen=True, slots=True)
class Machine:
    """A single machine (robotic cell) of the micro-factory.

    Attributes
    ----------
    index:
        Zero-based machine index (machine ``M{index+1}`` in the paper).
    name:
        Optional human readable label.
    """

    index: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.index < 0:
            raise InvalidPlatformError(f"machine index must be >= 0, got {self.index}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name or f"M{self.index + 1}"


class Platform:
    """A set of machines together with the processing-time matrix ``w``.

    Parameters
    ----------
    processing_times:
        Array-like of shape ``(n, m)``: ``processing_times[i, u]`` is the
        time (ms) for machine ``u`` to perform task ``i`` on one product.
        All entries must be strictly positive and finite.
    types:
        Optional type assignment used to validate (or enforce) the paper's
        consistency rule ``t(i) = t(i') => w[i, :] == w[i', :]``.
    names:
        Optional machine names (length ``m``).
    enforce_type_consistency:
        When ``types`` is given and this flag is true (default), a
        violation of the consistency rule raises
        :class:`~repro.exceptions.InvalidPlatformError`.
    """

    __slots__ = ("_w", "_machines", "_types")

    def __init__(
        self,
        processing_times: Sequence[Sequence[float]] | np.ndarray,
        *,
        types: TypeAssignment | None = None,
        names: Sequence[str] | None = None,
        enforce_type_consistency: bool = True,
    ) -> None:
        w = np.asarray(processing_times, dtype=np.float64)
        if w.ndim != 2 or w.size == 0:
            raise InvalidPlatformError(
                f"processing_times must be a non-empty 2-D array, got shape {w.shape}"
            )
        if not np.all(np.isfinite(w)):
            raise InvalidPlatformError("processing times must all be finite")
        if np.any(w <= 0.0):
            raise InvalidPlatformError("processing times must all be strictly positive")
        self._w = w.copy()
        self._w.setflags(write=False)

        n, m = w.shape
        if names is not None and len(names) != m:
            raise InvalidPlatformError(f"names has {len(names)} entries for {m} machines")
        self._machines = tuple(
            Machine(index=u, name=names[u] if names else "") for u in range(m)
        )

        if types is not None:
            types.validate_against(n)
            if enforce_type_consistency:
                self._check_type_consistency(types)
        self._types = types

    def _check_type_consistency(self, types: TypeAssignment) -> None:
        """Verify ``t(i) = t(i') => w[i, :] == w[i', :]``."""
        for type_index in types.used_types():
            rows = types.tasks_of_type(type_index)
            if rows.size <= 1:
                continue
            block = self._w[rows]
            if not np.allclose(block, block[0][None, :]):
                raise InvalidPlatformError(
                    f"tasks of type {type_index} have differing processing times; "
                    "the paper requires w[i,u] to depend only on the type of Ti"
                )

    # -- constructors -------------------------------------------------------------
    @classmethod
    def homogeneous(cls, num_tasks: int, num_machines: int, time: float) -> "Platform":
        """Platform where every task takes ``time`` on every machine."""
        if num_tasks <= 0 or num_machines <= 0:
            raise InvalidPlatformError("num_tasks and num_machines must be positive")
        if time <= 0:
            raise InvalidPlatformError("time must be positive")
        return cls(np.full((num_tasks, num_machines), float(time)))

    @classmethod
    def from_type_times(
        cls,
        types: TypeAssignment,
        type_times: Sequence[Sequence[float]] | np.ndarray,
        *,
        names: Sequence[str] | None = None,
    ) -> "Platform":
        """Build a platform from a ``p x m`` per-type time matrix.

        This constructor guarantees the type-consistency rule by expanding
        the per-type matrix to the ``n x m`` per-task matrix.
        """
        tt = np.asarray(type_times, dtype=np.float64)
        if tt.ndim != 2:
            raise InvalidPlatformError("type_times must be 2-D (num_types x num_machines)")
        if tt.shape[0] < types.num_types:
            raise InvalidPlatformError(
                f"type_times has {tt.shape[0]} rows but there are {types.num_types} types"
            )
        w = tt[types.as_array, :]
        return cls(w, types=types, names=names)

    # -- container protocol --------------------------------------------------------
    def __len__(self) -> int:
        return self.num_machines

    def __iter__(self):
        return iter(self._machines)

    def __getitem__(self, index: int) -> Machine:
        return self._machines[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Platform(n={self.num_tasks}, m={self.num_machines})"

    # -- properties ---------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        """Number of tasks ``n`` covered by the ``w`` matrix."""
        return int(self._w.shape[0])

    @property
    def num_machines(self) -> int:
        """Number of machines ``m``."""
        return int(self._w.shape[1])

    @property
    def machines(self) -> tuple[Machine, ...]:
        """All machines, indexed by machine index."""
        return self._machines

    @property
    def processing_times(self) -> np.ndarray:
        """Read-only view of the ``n x m`` matrix ``w``."""
        return self._w

    @property
    def types(self) -> TypeAssignment | None:
        """Type assignment attached at construction time (may be ``None``)."""
        return self._types

    # -- queries ------------------------------------------------------------------
    def time(self, task_index: int, machine_index: int) -> float:
        """Processing time ``w[i, u]`` of one product of task ``i`` on machine ``u``."""
        return float(self._w[task_index, machine_index])

    def is_homogeneous(self) -> bool:
        """True if every (task, machine) couple has the same processing time."""
        return bool(np.allclose(self._w, self._w.flat[0]))

    def machine_heterogeneity(self) -> np.ndarray:
        """Per-machine heterogeneity level used by heuristic H3.

        The heterogeneity level of machine ``Mu`` is the standard deviation
        of its column ``w[:, u]`` (Section 6.2, H3).
        """
        return self._w.std(axis=0)

    def slowest_sequential_period(self, products_per_task: np.ndarray | None = None) -> float:
        """Worst-case period: all tasks executed sequentially on the slowest machine.

        Used as the initial upper bound of the binary search in H2/H3.  When
        ``products_per_task`` (the ``x_i`` values) is given, each task's time
        is weighted by the number of products it must process.
        """
        if products_per_task is None:
            per_machine = self._w.sum(axis=0)
        else:
            x = np.asarray(products_per_task, dtype=np.float64)
            if x.shape != (self.num_tasks,):
                raise InvalidPlatformError(
                    f"products_per_task must have shape ({self.num_tasks},), got {x.shape}"
                )
            per_machine = (self._w * x[:, None]).sum(axis=0)
        return float(per_machine.max())

    def restrict_tasks(self, task_indices: Sequence[int]) -> "Platform":
        """Platform restricted to a subset of tasks (rows of ``w``)."""
        idx = np.asarray(list(task_indices), dtype=np.int64)
        if idx.size == 0:
            raise InvalidPlatformError("task_indices must be non-empty")
        return Platform(self._w[idx, :])

    # -- serialization ----------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict representation (JSON friendly)."""
        return {
            "processing_times": self._w.tolist(),
            "names": [mach.name for mach in self._machines],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Platform":
        """Inverse of :meth:`to_dict`."""
        names = data.get("names")
        if names is not None and not any(names):
            names = None
        return cls(data["processing_times"], names=names)
