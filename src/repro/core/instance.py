"""Problem instance: application + platform + failure model.

A :class:`ProblemInstance` bundles the three ingredients of the
optimization problem and validates their mutual consistency (dimensions,
types).  All solvers, heuristics, simulators and experiments operate on
instances.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from ..exceptions import InvalidInstanceError
from .application import Application
from .failure import FailureModel
from .platform import Platform

__all__ = ["ProblemInstance", "shared_successor_table"]


def shared_successor_table(
    instances: Sequence["ProblemInstance"],
) -> tuple[int | None, ...]:
    """The successor table all ``instances`` share, validating they do.

    The successor table fully determines an in-tree's edge set, so
    comparing it is an exact shared-precedence-graph check without the
    graph-copying ``Application.graph`` property.  The batch layers
    (lock-step solvers, stacked evaluators) call this to guarantee one
    traversal order fits every repetition.

    Raises
    ------
    InvalidInstanceError
        If any instance differs in task count, machine count or edges.
    """
    first = instances[0]
    n, m = first.num_tasks, first.num_machines
    successors = tuple(first.application.successor(task) for task in range(n))
    for inst in instances[1:]:
        if (
            inst.num_tasks != n
            or inst.num_machines != m
            or (
                inst.application is not first.application
                and tuple(inst.application.successor(task) for task in range(n))
                != successors
            )
        ):
            raise InvalidInstanceError(
                "instances must share the precedence graph and platform size"
            )
    return successors


class ProblemInstance:
    """An instance of the throughput-optimization problem.

    Parameters
    ----------
    application:
        The typed task graph.
    platform:
        The machines and the ``w`` matrix (shape ``(n, m)``).
    failures:
        The failure-rate matrix ``f`` (shape ``(n, m)``).
    name:
        Optional label used in experiment reports.
    """

    __slots__ = ("_app", "_platform", "_failures", "name")

    def __init__(
        self,
        application: Application,
        platform: Platform,
        failures: FailureModel,
        *,
        name: str = "",
    ) -> None:
        n = application.num_tasks
        if platform.num_tasks != n:
            raise InvalidInstanceError(
                f"platform covers {platform.num_tasks} tasks but the application has {n}"
            )
        if failures.num_tasks != n:
            raise InvalidInstanceError(
                f"failure model covers {failures.num_tasks} tasks but the application has {n}"
            )
        if failures.num_machines != platform.num_machines:
            raise InvalidInstanceError(
                f"failure model covers {failures.num_machines} machines but the platform "
                f"has {platform.num_machines}"
            )
        self._app = application
        self._platform = platform
        self._failures = failures
        self.name = name

    # -- properties ---------------------------------------------------------------
    @property
    def application(self) -> Application:
        """The task graph."""
        return self._app

    @property
    def platform(self) -> Platform:
        """The machine platform."""
        return self._platform

    @property
    def failures(self) -> FailureModel:
        """The failure model."""
        return self._failures

    @property
    def num_tasks(self) -> int:
        """Number of tasks ``n``."""
        return self._app.num_tasks

    @property
    def num_types(self) -> int:
        """Number of task types ``p``."""
        return self._app.num_types

    @property
    def num_machines(self) -> int:
        """Number of machines ``m``."""
        return self._platform.num_machines

    @property
    def processing_times(self) -> np.ndarray:
        """The ``n x m`` matrix ``w``."""
        return self._platform.processing_times

    @property
    def failure_rates(self) -> np.ndarray:
        """The ``n x m`` matrix ``f``."""
        return self._failures.rates

    # -- convenience queries --------------------------------------------------------
    def w(self, task_index: int, machine_index: int) -> float:
        """Processing time ``w[i, u]``."""
        return self._platform.time(task_index, machine_index)

    def f(self, task_index: int, machine_index: int) -> float:
        """Failure rate ``f[i, u]``."""
        return self._failures.rate(task_index, machine_index)

    def attempts_factor(self, task_index: int, machine_index: int) -> float:
        """``F[i, u] = 1 / (1 - f[i, u])``."""
        return self._failures.attempts_factor(task_index, machine_index)

    def type_of(self, task_index: int) -> int:
        """Type ``t(i)`` of a task."""
        return self._app.type_of(task_index)

    def supports_one_to_one(self) -> bool:
        """True if a one-to-one mapping can exist (``m >= n``)."""
        return self.num_machines >= self.num_tasks

    def supports_specialized(self) -> bool:
        """True if a specialized mapping can exist (``m >= p``)."""
        return self.num_machines >= self.num_types

    def effective_cost(self, task_index: int, machine_index: int) -> float:
        """Expected time per finished product for one task on one machine.

        ``w[i, u] * F[i, u]`` — the time to process one product multiplied
        by the expected number of attempts per success.  This is the local
        quantity minimized by heuristic H4.
        """
        return self.w(task_index, machine_index) * self.attempts_factor(
            task_index, machine_index
        )

    # -- serialization ----------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict representation (JSON friendly)."""
        return {
            "name": self.name,
            "application": self._app.to_dict(),
            "platform": self._platform.to_dict(),
            "failures": self._failures.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ProblemInstance":
        """Inverse of :meth:`to_dict`."""
        return cls(
            Application.from_dict(data["application"]),
            Platform.from_dict(data["platform"]),
            FailureModel.from_dict(data["failures"]),
            name=data.get("name", ""),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"ProblemInstance({label} n={self.num_tasks}, p={self.num_types}, "
            f"m={self.num_machines})"
        )
