"""Application model: typed tasks organised as an in-tree DAG.

The applicative framework of the paper (Section 3.1):

* ``n`` tasks ``T1 .. Tn``, each with a type ``t(i)``;
* dependencies form a directed acyclic graph whose edges represent the
  order in which operations are applied to products;
* *joins* are allowed (several sub-products are merged into one), *forks*
  are not: the output of a task is a physical component that cannot be
  split, so every task has **at most one successor**.  The graph is
  therefore an in-tree (or a forest of in-trees, each producing its own
  final product);
* the evaluation of the paper concentrates on **linear chains**, which we
  provide as a convenience constructor.

Tasks are identified by their zero-based index ``0 .. n-1`` (the paper uses
1-based ``T1 .. Tn``; the documentation of each function states which
convention it uses — the code is consistently zero-based).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

import networkx as nx

from ..exceptions import InvalidApplicationError
from .types import TypeAssignment, cyclic_type_assignment

__all__ = ["Task", "Application", "linear_chain", "in_tree", "from_edges"]


@dataclass(frozen=True, slots=True)
class Task:
    """A single task of the application.

    Attributes
    ----------
    index:
        Zero-based task index (task ``T{index+1}`` in the paper's notation).
    type_index:
        Index of the task's type ``t(i)``.
    name:
        Optional human readable label.
    """

    index: int
    type_index: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.index < 0:
            raise InvalidApplicationError(f"task index must be >= 0, got {self.index}")
        if self.type_index < 0:
            raise InvalidApplicationError(
                f"task type index must be >= 0, got {self.type_index}"
            )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name or f"T{self.index + 1}"


class Application:
    """A typed in-tree application graph.

    Parameters
    ----------
    types:
        The type assignment ``t`` (one entry per task).
    edges:
        Iterable of ``(i, j)`` pairs meaning task ``i`` must complete on a
        product before task ``j`` processes it (``i -> j``).  Indices are
        zero-based.
    names:
        Optional task names, same length as ``types``.

    Raises
    ------
    InvalidApplicationError
        If the graph has a cycle, a fork (out-degree > 1), a self loop,
        references an unknown task, or is empty.
    """

    __slots__ = ("_types", "_graph", "_tasks", "_successor", "_predecessors", "_topo")

    def __init__(
        self,
        types: TypeAssignment | Sequence[int],
        edges: Iterable[tuple[int, int]] = (),
        names: Sequence[str] | None = None,
    ) -> None:
        if not isinstance(types, TypeAssignment):
            types = TypeAssignment(types)
        self._types = types
        n = types.num_tasks
        if names is not None and len(names) != n:
            raise InvalidApplicationError(
                f"names has {len(names)} entries for {n} tasks"
            )

        graph = nx.DiGraph()
        graph.add_nodes_from(range(n))
        for i, j in edges:
            i, j = int(i), int(j)
            if not (0 <= i < n and 0 <= j < n):
                raise InvalidApplicationError(
                    f"edge ({i}, {j}) references a task outside 0..{n - 1}"
                )
            if i == j:
                raise InvalidApplicationError(f"self loop on task {i} is not allowed")
            graph.add_edge(i, j)

        if not nx.is_directed_acyclic_graph(graph):
            raise InvalidApplicationError("the application graph contains a cycle")

        # No forks: every task has at most one successor (its product cannot
        # be duplicated, Section 3.1).
        for node in graph.nodes:
            out_deg = graph.out_degree(node)
            if out_deg > 1:
                raise InvalidApplicationError(
                    f"task {node} has {out_deg} successors; forks are not allowed "
                    "because a physical product cannot be split"
                )

        self._graph = graph
        self._tasks = tuple(
            Task(index=i, type_index=types[i], name=names[i] if names else "")
            for i in range(n)
        )
        self._successor = {
            node: next(iter(graph.successors(node)), None) for node in graph.nodes
        }
        self._predecessors = {
            node: tuple(sorted(graph.predecessors(node))) for node in graph.nodes
        }
        self._topo = tuple(nx.topological_sort(graph))

    # -- constructors ------------------------------------------------------------
    @classmethod
    def chain(
        cls, types: TypeAssignment | Sequence[int], names: Sequence[str] | None = None
    ) -> "Application":
        """Build a linear chain ``T1 -> T2 -> ... -> Tn`` (paper's main case)."""
        if not isinstance(types, TypeAssignment):
            types = TypeAssignment(types)
        n = types.num_tasks
        edges = [(i, i + 1) for i in range(n - 1)]
        return cls(types, edges, names)

    # -- container protocol --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self):
        return iter(self._tasks)

    def __getitem__(self, index: int) -> Task:
        return self._tasks[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Application(n={self.num_tasks}, p={self.num_types}, "
            f"edges={self.num_edges}, chain={self.is_chain()})"
        )

    # -- properties ---------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        """Number of tasks ``n``."""
        return len(self._tasks)

    @property
    def num_types(self) -> int:
        """Number of task types ``p``."""
        return self._types.num_types

    @property
    def num_edges(self) -> int:
        """Number of precedence edges."""
        return self._graph.number_of_edges()

    @property
    def types(self) -> TypeAssignment:
        """The task-type assignment ``t``."""
        return self._types

    @property
    def tasks(self) -> tuple[Task, ...]:
        """All tasks, indexed by task index."""
        return self._tasks

    @property
    def graph(self) -> nx.DiGraph:
        """A copy of the underlying precedence graph."""
        return self._graph.copy()

    # -- structure queries ----------------------------------------------------------
    def type_of(self, task_index: int) -> int:
        """Type index ``t(i)`` of task ``task_index``."""
        return self._types[task_index]

    def successor(self, task_index: int) -> int | None:
        """The unique successor of a task, or ``None`` for a sink."""
        if task_index not in self._successor:
            raise InvalidApplicationError(f"unknown task index {task_index}")
        return self._successor[task_index]

    def predecessors(self, task_index: int) -> tuple[int, ...]:
        """Sorted tuple of direct predecessors of a task."""
        if task_index not in self._predecessors:
            raise InvalidApplicationError(f"unknown task index {task_index}")
        return self._predecessors[task_index]

    def sinks(self) -> list[int]:
        """Tasks with no successor (each outputs a finished product)."""
        return [i for i, succ in self._successor.items() if succ is None]

    def sources(self) -> list[int]:
        """Tasks with no predecessor (entry points of raw products)."""
        return [i for i in range(self.num_tasks) if not self._predecessors[i]]

    def topological_order(self) -> tuple[int, ...]:
        """A topological order of the tasks (sources first)."""
        return self._topo

    def reverse_topological_order(self) -> tuple[int, ...]:
        """Reverse topological order (sinks first) — the order used by the
        heuristics, which start from the last task and walk backward."""
        return tuple(reversed(self._topo))

    def is_chain(self) -> bool:
        """True if the application is a single linear chain."""
        if self.num_tasks == 1:
            return True
        if self.num_edges != self.num_tasks - 1:
            return False
        in_deg = [len(self._predecessors[i]) for i in range(self.num_tasks)]
        out_deg = [0 if self._successor[i] is None else 1 for i in range(self.num_tasks)]
        return (
            max(in_deg) <= 1
            and sum(1 for d in in_deg if d == 0) == 1
            and sum(1 for d in out_deg if d == 0) == 1
            and nx.is_weakly_connected(self._graph)
        )

    def is_in_tree(self) -> bool:
        """True if every connected component converges to a single sink."""
        # By construction out-degree <= 1 and the graph is acyclic, so each
        # weakly connected component has exactly one sink.
        return True

    def chain_order(self) -> tuple[int, ...]:
        """Task indices from the first to the last task of a linear chain.

        Raises
        ------
        InvalidApplicationError
            If the application is not a linear chain.
        """
        if not self.is_chain():
            raise InvalidApplicationError("application is not a linear chain")
        return self._topo

    def depth_from_sink(self) -> dict[int, int]:
        """Distance (number of edges) from each task to its component sink."""
        depth: dict[int, int] = {}
        for node in reversed(self._topo):
            succ = self._successor[node]
            depth[node] = 0 if succ is None else depth[succ] + 1
        return depth

    def tasks_of_type(self, type_index: int) -> list[int]:
        """All task indices whose type is ``type_index``."""
        return [int(i) for i in self._types.tasks_of_type(type_index)]

    # -- serialization ----------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict representation (JSON friendly)."""
        return {
            "types": list(self._types),
            "num_types": self.num_types,
            "edges": sorted((int(u), int(v)) for u, v in self._graph.edges),
            "names": [t.name for t in self._tasks],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Application":
        """Inverse of :meth:`to_dict`."""
        types = TypeAssignment(data["types"], num_types=data.get("num_types"))
        names = data.get("names")
        if names is not None and not any(names):
            names = None
        return cls(types, data.get("edges", ()), names)


def linear_chain(
    num_tasks: int,
    num_types: int | None = None,
    types: Sequence[int] | TypeAssignment | None = None,
) -> Application:
    """Convenience constructor for a linear-chain application.

    Exactly one of ``num_types`` / ``types`` may be given.  With
    ``num_types``, types are assigned cyclically (``0, 1, .., p-1, 0, ..``);
    with ``types`` the explicit per-task types are used; with neither, every
    task gets its own type (``p = n``).
    """
    if types is not None and num_types is not None:
        raise InvalidApplicationError("give either num_types or types, not both")
    if types is None:
        if num_types is None:
            num_types = num_tasks
        types = cyclic_type_assignment(num_tasks, num_types)
    elif not isinstance(types, TypeAssignment):
        types = TypeAssignment(types)
    if types.num_tasks != num_tasks:
        raise InvalidApplicationError(
            f"types covers {types.num_tasks} tasks, expected {num_tasks}"
        )
    return Application.chain(types)


def from_edges(
    types: Sequence[int] | TypeAssignment, edges: Iterable[tuple[int, int]]
) -> Application:
    """Build an application from an explicit edge list."""
    return Application(types, edges)


def in_tree(
    branch_lengths: Sequence[int],
    num_types: int,
    *,
    shared_tail_length: int = 1,
) -> Application:
    """Build an in-tree made of parallel branches joining into a shared tail.

    This is the shape used in the NP-hardness proof of Theorem 2 (several
    linear chains sharing a final task) and models the assembly of
    sub-products into a final product.

    Parameters
    ----------
    branch_lengths:
        Number of tasks in each independent branch (each must be >= 1).
    num_types:
        Number of task types; types are assigned cyclically over the whole
        task set.
    shared_tail_length:
        Number of tasks in the common tail after the join (>= 1).
    """
    if not branch_lengths:
        raise InvalidApplicationError("at least one branch is required")
    if any(b < 1 for b in branch_lengths):
        raise InvalidApplicationError("branch lengths must all be >= 1")
    if shared_tail_length < 1:
        raise InvalidApplicationError("shared_tail_length must be >= 1")

    num_tasks = int(sum(branch_lengths)) + shared_tail_length
    types = cyclic_type_assignment(num_tasks, num_types)

    edges: list[tuple[int, int]] = []
    next_index = 0
    branch_ends: list[int] = []
    for length in branch_lengths:
        start = next_index
        for offset in range(length - 1):
            edges.append((start + offset, start + offset + 1))
        branch_ends.append(start + length - 1)
        next_index = start + length

    tail_start = next_index
    for end in branch_ends:
        edges.append((end, tail_start))
    for offset in range(shared_tail_length - 1):
        edges.append((tail_start + offset, tail_start + offset + 1))

    return Application(types, edges)
