"""Task-type system.

The paper associates a *type* with every task: the same physical operation
(e.g. "grip", "glue", "insert") may have to be applied several times along
the assembly of one product.  Types matter for two reasons:

* execution times only depend on the type of a task for a given machine
  (``t(i) = t(i') -> w[i, u] = w[i', u]`` for every machine ``Mu``), and
* the *specialized* mapping rule dedicates every machine to a single type.

This module provides a small value type for task types plus helpers to
build, validate and reason about type assignments.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidApplicationError

__all__ = [
    "TaskType",
    "TypeAssignment",
    "cyclic_type_assignment",
    "blocked_type_assignment",
    "random_type_assignment",
]


@dataclass(frozen=True, slots=True)
class TaskType:
    """A task type, identified by a small non-negative integer.

    Parameters
    ----------
    index:
        Zero-based index of the type.  Types are dense: an application with
        ``p`` types uses indices ``0 .. p-1``.
    name:
        Optional human-readable label ("gripping", "assembly", ...).  Two
        types are equal iff their indices are equal; the name is cosmetic.
    """

    index: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.index < 0:
            raise InvalidApplicationError(
                f"task type index must be non-negative, got {self.index}"
            )

    def __int__(self) -> int:
        return self.index

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name or f"type{self.index}"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TaskType):
            return self.index == other.index
        if isinstance(other, (int, np.integer)):
            return self.index == int(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.index)


class TypeAssignment:
    """The function ``t : {0..n-1} -> {0..p-1}`` mapping tasks to types.

    The assignment is stored densely as a numpy integer vector.  The number
    of types ``p`` is the number of *distinct* types actually used unless a
    larger ``num_types`` is given explicitly (useful when generating
    instances whose later tasks may use types absent from a prefix).

    Parameters
    ----------
    types:
        Sequence of length ``n`` whose ``i``-th entry is the type index of
        task ``Ti`` (zero-based).
    num_types:
        Optional total number of types ``p``.  Must be at least
        ``max(types) + 1``.
    """

    __slots__ = ("_types", "_num_types")

    def __init__(self, types: Sequence[int] | np.ndarray, num_types: int | None = None):
        arr = np.asarray(list(types), dtype=np.int64)
        if arr.ndim != 1 or arr.size == 0:
            raise InvalidApplicationError("type assignment must be a non-empty 1-D sequence")
        if np.any(arr < 0):
            raise InvalidApplicationError("type indices must be non-negative")
        inferred = int(arr.max()) + 1
        if num_types is None:
            num_types = inferred
        elif num_types < inferred:
            raise InvalidApplicationError(
                f"num_types={num_types} is smaller than the largest used type index "
                f"({inferred - 1})"
            )
        self._types = arr
        self._types.setflags(write=False)
        self._num_types = int(num_types)

    # -- basic container protocol -------------------------------------------------
    def __len__(self) -> int:
        return int(self._types.size)

    def __getitem__(self, task_index: int) -> int:
        return int(self._types[task_index])

    def __iter__(self):
        return iter(int(v) for v in self._types)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TypeAssignment):
            return NotImplemented
        return self._num_types == other._num_types and np.array_equal(
            self._types, other._types
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TypeAssignment({self._types.tolist()!r}, num_types={self._num_types})"

    # -- properties ---------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        """Number of tasks ``n``."""
        return len(self)

    @property
    def num_types(self) -> int:
        """Number of task types ``p``."""
        return self._num_types

    @property
    def as_array(self) -> np.ndarray:
        """Read-only numpy view of the assignment vector."""
        return self._types

    # -- queries ------------------------------------------------------------------
    def tasks_of_type(self, type_index: int) -> np.ndarray:
        """Indices of the tasks whose type is ``type_index`` (sorted)."""
        return np.flatnonzero(self._types == type_index)

    def type_counts(self) -> Counter[int]:
        """Multiplicity of each type among tasks."""
        return Counter(int(v) for v in self._types)

    def used_types(self) -> list[int]:
        """Sorted list of the type indices that appear at least once."""
        return sorted(set(int(v) for v in self._types))

    def validate_against(self, num_tasks: int) -> None:
        """Check that the assignment covers exactly ``num_tasks`` tasks."""
        if len(self) != num_tasks:
            raise InvalidApplicationError(
                f"type assignment has {len(self)} entries but the application has "
                f"{num_tasks} tasks"
            )


def cyclic_type_assignment(num_tasks: int, num_types: int) -> TypeAssignment:
    """Assign types ``0, 1, ..., p-1, 0, 1, ...`` cyclically along the tasks.

    This mirrors a production line where the same few operations alternate
    along the process plan.  Guarantees that every type is used when
    ``num_tasks >= num_types``.
    """
    if num_tasks <= 0:
        raise InvalidApplicationError("num_tasks must be positive")
    if num_types <= 0 or num_types > num_tasks:
        raise InvalidApplicationError(
            f"num_types must be in [1, num_tasks]; got p={num_types}, n={num_tasks}"
        )
    types = [i % num_types for i in range(num_tasks)]
    return TypeAssignment(types, num_types=num_types)


def blocked_type_assignment(num_tasks: int, num_types: int) -> TypeAssignment:
    """Assign types in contiguous blocks of near-equal size.

    Tasks ``0..k-1`` get type 0, the next block type 1, and so on.  Models a
    process plan whose operations are grouped by phase.
    """
    if num_tasks <= 0:
        raise InvalidApplicationError("num_tasks must be positive")
    if num_types <= 0 or num_types > num_tasks:
        raise InvalidApplicationError(
            f"num_types must be in [1, num_tasks]; got p={num_types}, n={num_tasks}"
        )
    bounds = np.linspace(0, num_tasks, num_types + 1).astype(int)
    types = np.empty(num_tasks, dtype=np.int64)
    for j in range(num_types):
        types[bounds[j] : bounds[j + 1]] = j
    return TypeAssignment(types, num_types=num_types)


def random_type_assignment(
    num_tasks: int,
    num_types: int,
    rng: np.random.Generator,
    *,
    ensure_all_types: bool = True,
) -> TypeAssignment:
    """Draw a uniformly random type for every task.

    Parameters
    ----------
    num_tasks, num_types:
        Dimensions ``n`` and ``p``.
    rng:
        Numpy random generator (caller controls seeding).
    ensure_all_types:
        When true (default, and required by the paper's experiments where
        ``p`` is a parameter), the first ``p`` tasks are forced to cover
        every type once before the remaining tasks are drawn uniformly; the
        covering prefix is then shuffled into the sequence.
    """
    if num_tasks <= 0:
        raise InvalidApplicationError("num_tasks must be positive")
    if num_types <= 0 or num_types > num_tasks:
        raise InvalidApplicationError(
            f"num_types must be in [1, num_tasks]; got p={num_types}, n={num_tasks}"
        )
    types = rng.integers(0, num_types, size=num_tasks)
    if ensure_all_types:
        # Overwrite p distinct random positions with the p types so that each
        # type appears at least once.
        positions = rng.choice(num_tasks, size=num_types, replace=False)
        types[positions] = np.arange(num_types)
    return TypeAssignment(types.tolist(), num_types=num_types)
