"""Failure model: transient per-(task, machine) failure rates.

The originality of the paper is that failures are attached to the couple
(task type, machine): the same robot may fail more often on a delicate
manipulation than on a simple one.  Failures are *transient* — a failed
execution loses (or damages) the single product being manipulated, but the
machine keeps working for subsequent products.  Products are physical, so
replication is impossible; the only remedy is to feed more products.

The failure rate of task ``Ti`` on machine ``Mu`` is ``f[i, u] = l / b``
(``l`` products lost out of every ``b`` processed).  The derived quantity
``F[i, u] = 1 / (1 - f[i, u])`` is the expected number of attempts per
successful product.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from ..exceptions import InvalidFailureModelError
from .types import TypeAssignment

__all__ = ["FailureModel"]


class FailureModel:
    """Per-(task, machine) transient failure rates.

    Parameters
    ----------
    rates:
        Array-like of shape ``(n, m)`` with ``0 <= f[i, u] < 1``.
    types:
        Optional type assignment; when given with
        ``enforce_type_consistency=True``, tasks of the same type are
        required to share identical failure rows.  The paper attaches
        failures to the couple (task *type*, machine) in its motivation but
        the formal model and the MIP use per-task rates — consistency
        enforcement is therefore optional and off by default.
    enforce_type_consistency:
        See above.
    """

    __slots__ = ("_f", "_types")

    def __init__(
        self,
        rates: Sequence[Sequence[float]] | np.ndarray,
        *,
        types: TypeAssignment | None = None,
        enforce_type_consistency: bool = False,
    ) -> None:
        f = np.asarray(rates, dtype=np.float64)
        if f.ndim != 2 or f.size == 0:
            raise InvalidFailureModelError(
                f"failure rates must form a non-empty 2-D array, got shape {f.shape}"
            )
        if not np.all(np.isfinite(f)):
            raise InvalidFailureModelError("failure rates must all be finite")
        if np.any(f < 0.0) or np.any(f >= 1.0):
            raise InvalidFailureModelError("failure rates must satisfy 0 <= f < 1")
        self._f = f.copy()
        self._f.setflags(write=False)

        if types is not None:
            types.validate_against(f.shape[0])
            if enforce_type_consistency:
                self._check_type_consistency(types)
        self._types = types

    def _check_type_consistency(self, types: TypeAssignment) -> None:
        for type_index in types.used_types():
            rows = types.tasks_of_type(type_index)
            if rows.size <= 1:
                continue
            block = self._f[rows]
            if not np.allclose(block, block[0][None, :]):
                raise InvalidFailureModelError(
                    f"tasks of type {type_index} have differing failure rates while "
                    "type consistency was requested"
                )

    # -- constructors -------------------------------------------------------------
    @classmethod
    def failure_free(cls, num_tasks: int, num_machines: int) -> "FailureModel":
        """A model where nothing ever fails (``f = 0`` everywhere)."""
        if num_tasks <= 0 or num_machines <= 0:
            raise InvalidFailureModelError("dimensions must be positive")
        return cls(np.zeros((num_tasks, num_machines)))

    @classmethod
    def uniform(cls, num_tasks: int, num_machines: int, rate: float) -> "FailureModel":
        """Every (task, machine) couple shares the same failure rate."""
        if not 0.0 <= rate < 1.0:
            raise InvalidFailureModelError("rate must be in [0, 1)")
        return cls(np.full((num_tasks, num_machines), float(rate)))

    @classmethod
    def task_dependent(
        cls, per_task_rates: Sequence[float] | np.ndarray, num_machines: int
    ) -> "FailureModel":
        """Rates depending only on the task: ``f[i, u] = f[i]``.

        This is the setting of the earlier paper [1] and of Figure 9, where
        the optimal one-to-one mapping is computable in polynomial time.
        """
        per_task = np.asarray(per_task_rates, dtype=np.float64)
        if per_task.ndim != 1 or per_task.size == 0:
            raise InvalidFailureModelError("per_task_rates must be a non-empty vector")
        if num_machines <= 0:
            raise InvalidFailureModelError("num_machines must be positive")
        return cls(np.repeat(per_task[:, None], num_machines, axis=1))

    @classmethod
    def machine_dependent(
        cls, per_machine_rates: Sequence[float] | np.ndarray, num_tasks: int
    ) -> "FailureModel":
        """Rates depending only on the machine: ``f[i, u] = f[u]``.

        This is the classical distributed-computing assumption (and the
        setting of the NP-hardness proof of Theorem 2).
        """
        per_machine = np.asarray(per_machine_rates, dtype=np.float64)
        if per_machine.ndim != 1 or per_machine.size == 0:
            raise InvalidFailureModelError("per_machine_rates must be a non-empty vector")
        if num_tasks <= 0:
            raise InvalidFailureModelError("num_tasks must be positive")
        return cls(np.repeat(per_machine[None, :], num_tasks, axis=0))

    @classmethod
    def from_loss_counts(
        cls,
        losses: Sequence[Sequence[int]] | np.ndarray,
        batches: Sequence[Sequence[int]] | np.ndarray,
    ) -> "FailureModel":
        """Build rates from the ``l[i, u] / b[i, u]`` counts of the paper.

        ``losses[i, u]`` products are lost each time ``batches[i, u]``
        products are processed; requires ``0 <= l < b``.
        """
        l = np.asarray(losses, dtype=np.float64)
        b = np.asarray(batches, dtype=np.float64)
        if l.shape != b.shape:
            raise InvalidFailureModelError("losses and batches must have the same shape")
        if np.any(b <= 0):
            raise InvalidFailureModelError("batch sizes must be strictly positive")
        if np.any(l < 0) or np.any(l >= b):
            raise InvalidFailureModelError("losses must satisfy 0 <= l < b")
        return cls(l / b)

    # -- properties ---------------------------------------------------------------
    @property
    def rates(self) -> np.ndarray:
        """Read-only view of the ``n x m`` failure-rate matrix ``f``."""
        return self._f

    @property
    def num_tasks(self) -> int:
        """Number of tasks ``n``."""
        return int(self._f.shape[0])

    @property
    def num_machines(self) -> int:
        """Number of machines ``m``."""
        return int(self._f.shape[1])

    # -- queries ------------------------------------------------------------------
    def rate(self, task_index: int, machine_index: int) -> float:
        """Failure rate ``f[i, u]``."""
        return float(self._f[task_index, machine_index])

    def success_rate(self, task_index: int, machine_index: int) -> float:
        """Probability ``1 - f[i, u]`` that one execution succeeds."""
        return 1.0 - float(self._f[task_index, machine_index])

    def attempts_factor(self, task_index: int, machine_index: int) -> float:
        """``F[i, u] = 1 / (1 - f[i, u])``: expected attempts per success."""
        return 1.0 / (1.0 - float(self._f[task_index, machine_index]))

    @property
    def attempts_factors(self) -> np.ndarray:
        """Matrix of ``F[i, u] = 1 / (1 - f[i, u])`` values."""
        return 1.0 / (1.0 - self._f)

    def is_failure_free(self) -> bool:
        """True if no (task, machine) couple ever fails."""
        return bool(np.all(self._f == 0.0))

    def is_task_dependent(self) -> bool:
        """True if ``f[i, u]`` does not depend on ``u`` (``f[i, u] = f[i]``)."""
        return bool(np.allclose(self._f, self._f[:, [0]]))

    def is_machine_dependent(self) -> bool:
        """True if ``f[i, u]`` does not depend on ``i`` (``f[i, u] = f[u]``)."""
        return bool(np.allclose(self._f, self._f[[0], :]))

    def worst_case_attempts(self) -> np.ndarray:
        """Per-task worst attempts factor ``1 / (1 - max_u f[i, u])``.

        Used to compute the big-M bound ``MAXx_i`` of the MIP (Section 6.1).
        """
        return 1.0 / (1.0 - self._f.max(axis=1))

    # -- serialization ----------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict representation (JSON friendly)."""
        return {"rates": self._f.tolist()}

    @classmethod
    def from_dict(cls, data: Mapping) -> "FailureModel":
        """Inverse of :meth:`to_dict`."""
        return cls(data["rates"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FailureModel(n={self.num_tasks}, m={self.num_machines}, "
            f"mean={self._f.mean():.4f}, max={self._f.max():.4f})"
        )
