"""Core problem model: applications, platforms, failures, mappings, period.

This sub-package implements the formal framework of Sections 3 and 4 of the
paper: the typed in-tree application graph, the machine platform with its
processing-time matrix, the per-(task, machine) transient failure model,
the three mapping rules, and the period / throughput objective.
"""

from .application import Application, Task, from_edges, in_tree, linear_chain
from .failure import FailureModel
from .instance import ProblemInstance
from .mapping import Mapping, MappingRule
from .period import (
    MappingEvaluation,
    critical_machines,
    evaluate,
    expected_products,
    machine_periods,
    period,
    required_inputs,
    throughput,
)
from .platform import Machine, Platform
from .types import (
    TaskType,
    TypeAssignment,
    blocked_type_assignment,
    cyclic_type_assignment,
    random_type_assignment,
)

__all__ = [
    "Application",
    "Task",
    "from_edges",
    "in_tree",
    "linear_chain",
    "FailureModel",
    "ProblemInstance",
    "Mapping",
    "MappingRule",
    "MappingEvaluation",
    "critical_machines",
    "evaluate",
    "expected_products",
    "machine_periods",
    "period",
    "required_inputs",
    "throughput",
    "Machine",
    "Platform",
    "TaskType",
    "TypeAssignment",
    "blocked_type_assignment",
    "cyclic_type_assignment",
    "random_type_assignment",
]
