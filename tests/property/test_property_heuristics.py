"""Property-based tests on the heuristics and exact solvers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linear_sum_assignment

from repro.core import Application, FailureModel, Platform, ProblemInstance, TypeAssignment
from repro.exact.bruteforce import bruteforce_optimal
from repro.exact.hungarian import assignment_cost, bottleneck_assignment, min_cost_assignment
from repro.heuristics import PAPER_HEURISTICS, get_heuristic
from repro.heuristics.binary_search import worst_case_period_bound


pytestmark = pytest.mark.slow


@st.composite
def feasible_instances(draw, max_tasks: int = 7, max_machines: int = 5):
    """Chain instances guaranteed to admit a specialized mapping (m >= p)."""
    n = draw(st.integers(min_value=1, max_value=max_tasks))
    m = draw(st.integers(min_value=1, max_value=max_machines))
    p = draw(st.integers(min_value=1, max_value=min(n, m)))
    types = [draw(st.integers(min_value=0, max_value=p - 1)) for _ in range(n)]
    types[: min(p, n)] = list(range(min(p, n)))
    app = Application.chain(TypeAssignment(types, num_types=p))
    per_type_w = np.asarray(
        draw(
            st.lists(
                st.lists(
                    st.floats(min_value=10.0, max_value=1000.0, allow_nan=False),
                    min_size=m,
                    max_size=m,
                ),
                min_size=p,
                max_size=p,
            )
        )
    )
    w = per_type_w[np.asarray(types), :]
    f = np.asarray(
        draw(
            st.lists(
                st.lists(
                    st.floats(min_value=0.0, max_value=0.3, allow_nan=False),
                    min_size=m,
                    max_size=m,
                ),
                min_size=n,
                max_size=n,
            )
        )
    )
    return ProblemInstance(app, Platform(w), FailureModel(f))


class TestHeuristicProperties:
    @given(feasible_instances(), st.sampled_from(PAPER_HEURISTICS))
    @settings(max_examples=80, deadline=None)
    def test_every_heuristic_returns_a_valid_specialized_mapping(self, instance, name):
        result = get_heuristic(name).solve(instance, np.random.default_rng(0))
        result.mapping.validate(instance, "specialized")
        assert result.period > 0.0

    @given(feasible_instances(), st.sampled_from(PAPER_HEURISTICS))
    @settings(max_examples=60, deadline=None)
    def test_heuristics_never_exceed_worst_case_bound(self, instance, name):
        bound = worst_case_period_bound(instance)
        result = get_heuristic(name).solve(instance, np.random.default_rng(1))
        assert result.period <= bound + 1e-6

    @given(feasible_instances(max_tasks=5, max_machines=4))
    @settings(max_examples=25, deadline=None)
    def test_no_heuristic_beats_the_exhaustive_optimum(self, instance):
        optimum = bruteforce_optimal(instance, "specialized").period
        for name in ("H2", "H4", "H4w"):
            result = get_heuristic(name).solve(instance)
            assert result.period >= optimum - 1e-6

    @given(feasible_instances())
    @settings(max_examples=40, deadline=None)
    def test_deterministic_heuristics_are_deterministic(self, instance):
        for name in ("H2", "H3", "H4", "H4w", "H4f"):
            first = get_heuristic(name).solve(instance)
            second = get_heuristic(name).solve(instance)
            assert list(first.mapping) == list(second.mapping)

    @given(feasible_instances())
    @settings(max_examples=80, deadline=None)
    def test_h4ls_is_never_worse_than_h4w(self, instance):
        h4w = get_heuristic("H4w").solve(instance)
        h4ls = get_heuristic("H4ls").solve(instance)
        assert h4ls.period <= h4w.period
        h4ls.mapping.validate(instance, "specialized")


@st.composite
def cost_matrices(draw, max_rows: int = 6, max_cols: int = 7):
    n = draw(st.integers(min_value=1, max_value=max_rows))
    m = draw(st.integers(min_value=n, max_value=max_cols))
    rows = draw(
        st.lists(
            st.lists(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                min_size=m,
                max_size=m,
            ),
            min_size=n,
            max_size=n,
        )
    )
    return np.asarray(rows)


class TestAssignmentProperties:
    @given(cost_matrices())
    @settings(max_examples=80, deadline=None)
    def test_min_cost_matches_scipy(self, cost):
        ours = min_cost_assignment(cost)
        assert len(set(ours.tolist())) == cost.shape[0]
        rows, cols = linear_sum_assignment(cost)
        assert assignment_cost(cost, ours) == pytest.approx(
            float(cost[rows, cols].sum()), abs=1e-6
        )

    @given(cost_matrices(max_rows=5, max_cols=6))
    @settings(max_examples=60, deadline=None)
    def test_bottleneck_no_worse_than_min_sum_assignment_max(self, cost):
        bottleneck_cols = bottleneck_assignment(cost)
        sum_cols = min_cost_assignment(cost)
        n = cost.shape[0]
        bottleneck_max = cost[np.arange(n), bottleneck_cols].max()
        sum_max = cost[np.arange(n), sum_cols].max()
        assert bottleneck_max <= sum_max + 1e-9
        assert len(set(bottleneck_cols.tolist())) == n
