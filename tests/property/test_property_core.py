"""Property-based tests (hypothesis) on the core model invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Application,
    FailureModel,
    Mapping,
    Platform,
    ProblemInstance,
    TypeAssignment,
    evaluate,
    expected_products,
    machine_periods,
    period,
    required_inputs,
    throughput,
)

pytestmark = pytest.mark.slow


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


@st.composite
def chain_instances(draw, max_tasks: int = 8, max_machines: int = 6):
    """A random linear-chain ProblemInstance with small dimensions."""
    n = draw(st.integers(min_value=1, max_value=max_tasks))
    m = draw(st.integers(min_value=1, max_value=max_machines))
    p = draw(st.integers(min_value=1, max_value=n))
    types = [draw(st.integers(min_value=0, max_value=p - 1)) for _ in range(n)]
    # Guarantee type indices are dense enough to define p properly.
    types[: min(p, n)] = list(range(min(p, n)))
    app = Application.chain(TypeAssignment(types, num_types=p))
    per_type_w = draw(
        st.lists(
            st.lists(
                st.floats(min_value=1.0, max_value=1000.0, allow_nan=False),
                min_size=m,
                max_size=m,
            ),
            min_size=p,
            max_size=p,
        )
    )
    w = np.asarray(per_type_w)[np.asarray(types), :]
    f = np.asarray(
        draw(
            st.lists(
                st.lists(
                    st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
                    min_size=m,
                    max_size=m,
                ),
                min_size=n,
                max_size=n,
            )
        )
    )
    instance = ProblemInstance(app, Platform(w), FailureModel(f))
    return instance


@st.composite
def instance_and_mapping(draw):
    """A chain instance plus a uniformly random (general) mapping."""
    instance = draw(chain_instances())
    assignment = [
        draw(st.integers(min_value=0, max_value=instance.num_machines - 1))
        for _ in range(instance.num_tasks)
    ]
    return instance, Mapping(assignment, instance.num_machines)


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------


class TestPeriodProperties:
    @given(instance_and_mapping())
    @settings(max_examples=60, deadline=None)
    def test_expected_products_at_least_one(self, data):
        instance, mapping = data
        x = expected_products(instance, mapping)
        assert np.all(x >= 1.0 - 1e-12)

    @given(instance_and_mapping())
    @settings(max_examples=60, deadline=None)
    def test_x_non_decreasing_towards_the_source(self, data):
        # Along a chain, x_i = F * x_{i+1} with F >= 1.
        instance, mapping = data
        x = expected_products(instance, mapping)
        for i in range(instance.num_tasks - 1):
            assert x[i] >= x[i + 1] - 1e-9

    @given(instance_and_mapping())
    @settings(max_examples=60, deadline=None)
    def test_period_is_max_of_machine_periods(self, data):
        instance, mapping = data
        periods = machine_periods(instance, mapping)
        assert period(instance, mapping) == pytest.approx(periods.max())
        assert np.all(periods >= 0.0)

    @given(instance_and_mapping())
    @settings(max_examples=60, deadline=None)
    def test_period_positive_and_throughput_inverse(self, data):
        instance, mapping = data
        p = period(instance, mapping)
        assert p > 0.0
        assert throughput(instance, mapping) == pytest.approx(1.0 / p)

    @given(instance_and_mapping())
    @settings(max_examples=60, deadline=None)
    def test_evaluation_consistent_with_individual_functions(self, data):
        instance, mapping = data
        result = evaluate(instance, mapping)
        assert result.period == pytest.approx(period(instance, mapping))
        assert list(result.expected_products) == pytest.approx(
            list(expected_products(instance, mapping))
        )
        assert max(result.machine_periods) == pytest.approx(result.period)

    @given(instance_and_mapping())
    @settings(max_examples=40, deadline=None)
    def test_period_lower_bounded_by_any_single_assigned_task(self, data):
        # Each machine period is at least the contribution of any one of its
        # tasks, so the global period is at least max_i x_i * w[i, a(i)] / n.
        instance, mapping = data
        x = expected_products(instance, mapping)
        contributions = [
            x[i] * instance.w(i, mapping[i]) for i in range(instance.num_tasks)
        ]
        assert period(instance, mapping) >= max(contributions) - 1e-9

    @given(instance_and_mapping(), st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=40, deadline=None)
    def test_required_inputs_scale_linearly(self, data, target):
        instance, mapping = data
        one = required_inputs(instance, mapping, 1.0)
        scaled = required_inputs(instance, mapping, target)
        for source, value in scaled.items():
            assert value == pytest.approx(one[source] * target)

    @given(instance_and_mapping())
    @settings(max_examples=40, deadline=None)
    def test_removing_failures_never_increases_period(self, data):
        instance, mapping = data
        failure_free = ProblemInstance(
            instance.application,
            instance.platform,
            FailureModel.failure_free(instance.num_tasks, instance.num_machines),
        )
        assert period(failure_free, mapping) <= period(instance, mapping) + 1e-9


class TestMappingProperties:
    @given(instance_and_mapping())
    @settings(max_examples=60, deadline=None)
    def test_rule_classification_consistent(self, data):
        instance, mapping = data
        types = list(instance.application.types)
        rule = mapping.rule(types)
        if mapping.satisfies_one_to_one():
            assert rule.value == "one-to-one"
        if rule.value == "one-to-one":
            assert mapping.satisfies_specialized(types)

    @given(instance_and_mapping())
    @settings(max_examples=60, deadline=None)
    def test_machine_loads_partition_tasks(self, data):
        _, mapping = data
        loads = mapping.machine_loads()
        all_tasks = sorted(task for tasks in loads.values() for task in tasks)
        assert all_tasks == list(range(mapping.num_tasks))

    @given(instance_and_mapping())
    @settings(max_examples=60, deadline=None)
    def test_serialization_round_trip(self, data):
        instance, mapping = data
        assert Mapping.from_dict(mapping.to_dict()) == mapping
        clone = ProblemInstance.from_dict(instance.to_dict())
        assert clone.num_tasks == instance.num_tasks
        assert period(clone, mapping) == pytest.approx(period(instance, mapping))
