"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.core import (
    Application,
    FailureModel,
    Platform,
    ProblemInstance,
    TypeAssignment,
)
from tests.helpers import make_random_instance as _make_random_instance

# Hypothesis tiers: the "default" profile keeps tier-1 property tests
# quick; CI's non-blocking slow job (and local deep runs) select
# HYPOTHESIS_PROFILE=thorough.  Per-test @settings override these.
settings.register_profile("default", max_examples=25, deadline=None)
settings.register_profile("thorough", max_examples=300, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def chain4() -> Application:
    """A 4-task linear chain with 2 types: types [0, 1, 0, 1]."""
    return Application.chain(TypeAssignment([0, 1, 0, 1]))


@pytest.fixture
def small_instance(chain4: Application) -> ProblemInstance:
    """A tiny deterministic instance: 4 tasks, 2 types, 3 machines.

    Processing times depend only on the type (type 0 rows equal, type 1
    rows equal); failure rates are small and distinct per couple.
    """
    w = np.array(
        [
            [100.0, 200.0, 300.0],
            [400.0, 150.0, 250.0],
            [100.0, 200.0, 300.0],
            [400.0, 150.0, 250.0],
        ]
    )
    f = np.array(
        [
            [0.01, 0.02, 0.03],
            [0.02, 0.01, 0.04],
            [0.03, 0.02, 0.01],
            [0.01, 0.03, 0.02],
        ]
    )
    return ProblemInstance(chain4, Platform(w, types=chain4.types), FailureModel(f))


@pytest.fixture
def failure_free_instance(chain4: Application) -> ProblemInstance:
    """Same structure as ``small_instance`` but with no failures at all."""
    w = np.array(
        [
            [100.0, 200.0, 300.0],
            [400.0, 150.0, 250.0],
            [100.0, 200.0, 300.0],
            [400.0, 150.0, 250.0],
        ]
    )
    return ProblemInstance(
        chain4, Platform(w, types=chain4.types), FailureModel.failure_free(4, 3)
    )


@pytest.fixture
def random_instance_factory():
    """Factory fixture returning :func:`tests.helpers.make_random_instance`."""
    return _make_random_instance
