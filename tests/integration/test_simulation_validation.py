"""Integration tests: the stochastic simulator validates the analytic model.

Section 4.1 defines the period analytically; the discrete-event simulator
executes the mapped line with sampled transient failures.  For long enough
runs the two must agree:

* the saturating-feed empirical period converges to the analytic period;
* the batch-feed executions-per-output converge to the analytic ``x_i``;
* the observed per-couple loss ratios converge to ``f[i, u]``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import evaluate
from repro.heuristics import get_heuristic
from repro.simulation import MicroFactorySimulation, simulate_mapping
from tests.helpers import make_random_instance


@pytest.mark.parametrize("seed", range(3))
def test_saturated_simulation_matches_analytic_period(seed):
    inst = make_random_instance(10, 3, 5, seed=seed, f_low=0.01, f_high=0.05)
    mapping = get_heuristic("H4w").solve(inst).mapping
    analytic = evaluate(inst, mapping).period
    metrics = simulate_mapping(
        inst, mapping, 400, rng=np.random.default_rng(1000 + seed), max_events=2_000_000
    )
    assert metrics.finished_products == 400
    assert metrics.empirical_period == pytest.approx(analytic, rel=0.08)
    assert metrics.steady_state_output_interval == pytest.approx(analytic, rel=0.08)


def test_batch_simulation_matches_expected_products():
    inst = make_random_instance(6, 2, 3, seed=7, f_low=0.05, f_high=0.15)
    mapping = get_heuristic("H4").solve(inst).mapping
    x = np.asarray(evaluate(inst, mapping).expected_products)
    sim = MicroFactorySimulation(inst, mapping, np.random.default_rng(11))
    metrics = sim.run_batch(6000, max_events=3_000_000)
    assert metrics.finished_products > 0
    observed = metrics.empirical_products_per_output
    # Downstream tasks see plenty of samples; compare them all within 6%.
    assert np.allclose(observed, x, rtol=0.06)


def test_observed_failure_rates_match_the_model():
    inst = make_random_instance(5, 2, 3, seed=9, f_low=0.05, f_high=0.20)
    mapping = get_heuristic("H4w").solve(inst).mapping
    metrics = simulate_mapping(
        inst, mapping, 800, rng=np.random.default_rng(3), max_events=3_000_000
    )
    f = inst.failure_rates
    for task in range(inst.num_tasks):
        machine = mapping[task]
        if metrics.executions[task] >= 500:
            assert metrics.empirical_failure_rates[task] == pytest.approx(
                f[task, machine], abs=0.04
            )


def test_better_mapping_yields_better_simulated_throughput():
    inst = make_random_instance(12, 3, 6, seed=13, f_low=0.01, f_high=0.05)
    good = get_heuristic("H4w").solve(inst)
    bad = get_heuristic("H1").solve(inst, np.random.default_rng(5))
    # Only meaningful when the analytic gap is clear.
    if bad.period < good.period * 1.3:
        pytest.skip("random mapping happened to be competitive on this draw")
    good_sim = simulate_mapping(inst, good.mapping, 300, rng=np.random.default_rng(1))
    bad_sim = simulate_mapping(inst, bad.mapping, 300, rng=np.random.default_rng(1))
    assert good_sim.empirical_period < bad_sim.empirical_period


def test_failure_free_simulation_is_exactly_deterministic():
    inst = make_random_instance(8, 2, 4, seed=21, f_low=0.0, f_high=0.0)
    mapping = get_heuristic("H4w").solve(inst).mapping
    analytic = evaluate(inst, mapping).period
    metrics = simulate_mapping(inst, mapping, 200, rng=np.random.default_rng(0))
    assert metrics.losses.sum() == 0
    # Without failures the busy time per output of the critical machine equals
    # the analytic period exactly once the pipeline is full (2% tolerance for
    # the warm-up products).
    assert metrics.empirical_period == pytest.approx(analytic, rel=0.02)
